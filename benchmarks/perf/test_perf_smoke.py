"""Fast smoke test for the perf micro-harness (tiny instruction budget).

Guards that ``python -m repro bench-perf`` keeps working and emitting
schema-correct, machine-readable JSON; real trajectory points are
recorded with much larger budgets (see README.md).
"""

import json
import os

from repro.cli import main as cli_main
from repro.perf import COMPONENTS, run_perf_suite, write_bench_json
from repro.perf.harness import SCHEMA, bench_sweep


def test_suite_payload_schema(tmp_path):
    payload = run_perf_suite(benchmark="gamess", instructions=2_000,
                             label="smoke")
    assert payload["schema"] == SCHEMA
    assert payload["label"] == "smoke"
    assert set(payload["components"]) == set(COMPONENTS)
    for component in COMPONENTS:
        row = payload["components"][component]
        assert row["instructions"] == 2_000
        assert row["instr_per_sec"] > 0
    out = write_bench_json(payload, str(tmp_path / "BENCH_smoke.json"))
    with open(out) as handle:
        assert json.load(handle) == payload


def test_sweep_smoke_serial_parallel_identical():
    sweep = bench_sweep(("gamess", "libquantum"), ("none", "stride"),
                        instructions=2_000, jobs=2)
    assert sweep["runs"] == 4
    assert sweep["results_identical"] is True
    assert sweep["serial_seconds"] > 0 and sweep["parallel_seconds"] > 0
    # the parallel pass records its BatchReport (clean run: all misses)
    report = sweep["batch_report"]
    assert report["total"] == 4 and report["misses"] == 4
    assert report["failures"] == []


def test_cli_bench_perf_writes_json(tmp_path, capsys):
    out = str(tmp_path / "BENCH_cli.json")
    rc = cli_main([
        "bench-perf", "--benchmark", "gamess", "-n", "2000", "--out", out,
    ])
    assert rc == 0
    captured = capsys.readouterr().out
    assert "perf suite" in captured and "full_system" in captured
    assert os.path.exists(out)
    with open(out) as handle:
        payload = json.load(handle)
    assert payload["schema"] == SCHEMA


def test_bench_trace_replay_smoke():
    from repro.perf import bench_trace_replay

    block = bench_trace_replay(("gamess", "libquantum"),
                               ("none", "stride"), instructions=2_000)
    assert block["runs"] == 4
    assert block["results_identical"] is True
    assert block["lockstep_seconds"] > 0 and block["replay_seconds"] > 0
    assert block["record_seconds"] > 0
    assert block["replay_instr_per_sec"] > 0
    # the replay pass must never have fallen back to lockstep
    assert block["counters"]["replayed"] == 4
    assert block["counters"]["lockstep"] == 0
    assert block["counters"]["recorded"] == 0
    # everything-warm pass is served from the result cache
    assert block["warm_cache_seconds"] < block["lockstep_seconds"]


def test_bench_serve_smoke():
    from repro.perf import bench_serve

    serve = bench_serve(("gamess", "libquantum"), ("none",),
                        instructions=2_000, clients=2, max_concurrent=1)
    assert serve["jobs_per_phase"] == 2
    assert serve["runs_computed"] == 2 and serve["cache_hits"] == 2
    assert serve["uncached_seconds"] > 0 and serve["cached_seconds"] > 0
    # the cached phase never simulates, so it must be the faster one
    assert serve["cached_jobs_per_sec"] > serve["uncached_jobs_per_sec"]
    for series in ("computed", "cached"):
        block = serve["latency"][series]
        assert block["count"] == 2
        assert block["p50"] <= block["p95"]
