"""Figure 8: single-threaded speedups -- Stride vs SMS vs B-Fetch.

Paper: B-Fetch 23.2% geomean vs SMS 19.7% (50.0% vs 41.5% across the
prefetch-sensitive subset); B-Fetch wins everywhere except cactusADM,
lbm, milc and zeusmp, with milc the one large gap.

The 18-benchmark x 3-prefetcher grid (plus the shared no-prefetch
baseline) is evaluated through the parallel ``run_many`` batch engine
(``single_speedups`` -> ``ExperimentRunner.sweep``): cache hits are
served directly, misses fan out over ``REPRO_JOBS`` worker processes,
and the resulting table is byte-identical to a serial evaluation.
"""

from repro_common import append_geomeans, single_speedups
from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.workloads import BENCHMARKS

COLUMNS = ["stride", "sms", "bfetch"]


def test_fig08_single_threaded_speedups(runner, archive, benchmark):
    def experiment():
        rows = single_speedups(runner, COLUMNS, SINGLE_BUDGET)
        return append_geomeans(rows, COLUMNS)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "fig08_single",
        render_table("Fig. 8: single-threaded speedups", rows, COLUMNS),
    )
    table = dict(rows)
    geo = table["Geomean"]
    # headline ordering: B-Fetch > SMS > Stride, all above baseline
    assert geo["bfetch"] > geo["sms"] > 1.0
    assert geo["bfetch"] > geo["stride"]
    # prefetch-sensitive mean is higher than the overall mean
    assert table["Geomean pf. sens."]["bfetch"] > geo["bfetch"]
    # B-Fetch wins on a clear majority of the benchmarks
    bfetch_wins = sum(
        1 for bench in BENCHMARKS
        if table[bench]["bfetch"] >= table[bench]["sms"]
    )
    assert bfetch_wins >= 11
    # milc stays SMS's corner-case win (large spatial regions)
    assert table["milc"]["sms"] > table["milc"]["bfetch"]
