"""Preliminary 8-application mixes.

The paper states: "Preliminary results with mixes of 8 workloads
continue this trend" (Section V-B2).  This target runs a small set of
FOA-selected 8-app mixes and checks B-Fetch keeps its lead.
"""

from conftest import MIX_BUDGET, SINGLE_BUDGET

from repro.analysis import render_table
from repro.sim import geomean
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS, select_mixes

PREFETCHERS = ["sms", "bfetch"]
MIX_COUNT = 4  # preliminary, as in the paper


def test_mix8_preliminary_trend(runner, archive, benchmark):
    def experiment():
        foa = runner.foa_map(BENCHMARKS, instructions=scaled(SINGLE_BUDGET))
        mixes = select_mixes(foa, size=8, count=MIX_COUNT)
        instructions = scaled(MIX_BUDGET // 2)
        singles = scaled(SINGLE_BUDGET)
        rows = []
        for position, mix in enumerate(mixes, start=1):
            values = {
                prefetcher: runner.weighted_speedup_normalized(
                    mix, prefetcher,
                    instructions=instructions,
                    single_instructions=singles,
                )
                for prefetcher in PREFETCHERS
            }
            rows.append(("mix%d" % position, values))
        means = {
            prefetcher: geomean(values[prefetcher] for _, values in rows)
            for prefetcher in PREFETCHERS
        }
        rows.append(("Geomean", means))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "mix8_preliminary",
        render_table("Preliminary mix-8 normalized weighted speedup",
                     rows, PREFETCHERS),
    )
    means = dict(rows)["Geomean"]
    assert means["bfetch"] > 1.0
    assert means["bfetch"] > means["sms"] * 0.98  # trend continues
