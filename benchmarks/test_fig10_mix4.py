"""Figure 10: normalized weighted speedup for 29 mixes of 4 workloads.

Paper: B-Fetch 28.5% vs SMS 19.6% -- the accuracy advantage grows with
core count because inaccurate prefetches pollute the shared LLC.
"""

from conftest import MIX_BUDGET

from repro.analysis import render_table
from test_fig09_mix2 import PREFETCHERS, run_mix_figure


def test_fig10_mix4_weighted_speedup(runner, archive, benchmark):
    rows = benchmark.pedantic(
        lambda: run_mix_figure(runner, 4, MIX_BUDGET), rounds=1, iterations=1
    )
    archive(
        "fig10_mix4",
        render_table("Fig. 10: normalized weighted speedup (mix-4)",
                     rows, PREFETCHERS),
    )
    means = dict(rows)["Geomean"]
    assert means["bfetch"] > means["sms"] > 1.0
    assert means["bfetch"] > means["stride"]
