"""Shared-LLC replacement policy under prefetching (extension).

The paper cites PACMan (Wu et al.) for the damage inaccurate prefetches
do in shared caches.  This extension runs a contended 2-app mix under
LRU vs prefetch-aware (PACMan) LLC insertion for SMS and B-Fetch.  An
accurate prefetcher should be near-indifferent to the policy; a wasteful
one benefits from having its prefetches inserted at distant re-reference.
"""

from conftest import MIX_BUDGET, SINGLE_BUDGET

from repro.analysis import render_table
from repro.memory.hierarchy import HierarchyConfig
from repro.sim import SystemConfig
from repro.sim.runner import scaled

MIX = ("mcf", "libquantum")
POLICIES = ("lru", "pacman")
PREFETCHERS = ("sms", "bfetch")


def test_llc_policy_ablation(runner, archive, benchmark):
    instructions = scaled(MIX_BUDGET)
    singles = scaled(SINGLE_BUDGET)

    def experiment():
        rows = []
        for prefetcher in PREFETCHERS:
            values = {}
            for policy in POLICIES:
                config = SystemConfig(
                    prefetcher=prefetcher,
                    hierarchy=HierarchyConfig(llc_policy=policy),
                )
                base_config = SystemConfig(
                    prefetcher="none",
                    hierarchy=HierarchyConfig(llc_policy=policy),
                )
                values[policy] = runner.weighted_speedup_normalized(
                    MIX, prefetcher,
                    instructions=instructions,
                    single_instructions=singles,
                    config=config, base_config=base_config,
                )
            rows.append((prefetcher, values))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "llc_policy",
        render_table(
            "LLC replacement under prefetching (mix: %s)" % "+".join(MIX),
            rows, list(POLICIES),
        ),
    )
    table = dict(rows)
    # both prefetchers keep their gains (within noise) under either policy
    for prefetcher in PREFETCHERS:
        for policy in POLICIES:
            assert table[prefetcher][policy] > 0.95
    # B-Fetch is accurate enough that prefetch-aware insertion moves it
    # only marginally
    bf = table["bfetch"]
    assert abs(bf["pacman"] - bf["lru"]) < 0.15 * bf["lru"]
