"""Figure 7: breakdown of branches fetched per cycle.

Paper: in >=99.95% of fetch cycles at most two branches are fetched, so
the main tournament predictor has spare bandwidth to serve the B-Fetch
lookahead without an extra predictor copy.
"""

from conftest import SINGLE_BUDGET

from repro.analysis import fetch_branch_breakdown, render_series
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS


def test_fig07_branches_per_fetch_cycle(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        results = [
            runner.run_single(bench, "none", instructions)
            for bench in BENCHMARKS
        ]
        return fetch_branch_breakdown(results)

    breakdown = benchmark.pedantic(experiment, rounds=1, iterations=1)
    series = [("%d branch(es)" % n, breakdown[n]) for n in range(1, 5)]
    series.append(("cumulative <=2", breakdown["cumulative_2"]))
    archive(
        "fig07_branch_fetch",
        render_series("Fig. 7: branches fetched per cycle (fraction)",
                      series, fmt="%.4f"),
    )
    # one branch per group dominates; 3-4 branch groups are rare
    assert breakdown[1] > 0.75
    assert breakdown["cumulative_2"] > 0.99
    assert breakdown[4] < 0.005
