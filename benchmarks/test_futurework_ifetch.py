"""Future-work reproduction: B-Fetch-I instruction prefetching.

Section III-C: "In our future work we plan to examine how our path
confidence estimation scheme might be used to further improve
instruction prefetching."  This target builds an instruction-footprint-
heavy workload (sequential mega-blocks totalling ~85KB of code against
the 64KB L1I) and lets the lookahead walk prefetch the instruction
blocks of predicted basic blocks into the L1I.
"""

from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.core import BFetchConfig
from repro.sim import SystemConfig
from repro.sim.runner import scaled
from repro.sim.system import System
from repro.workloads import Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.patterns import (
    R_ACC,
    R_B1,
    R_SEED,
    R_W0,
    R_W1,
    R_W2,
    emit_bigcode,
)


def _bigcode_workload():
    body = ProgramBuilder("bigcode")
    body.label("outer")
    emit_bigcode(body, iters=100, blocks=256, body_instrs=80)
    body.br("outer")
    body.halt()
    final = ProgramBuilder("bigcode")
    for reg, value in ((R_ACC, 0), (R_SEED, 1), (R_W0, 1), (R_W1, 2),
                       (R_W2, 3), (R_B1, 0x2000000)):
        final.li(reg, value)
    final.append_builder(body)
    return Workload("bigcode", final.build(), {})


def test_futurework_instruction_prefetch(archive, benchmark):
    instructions = scaled(SINGLE_BUDGET // 2)
    workload = _bigcode_workload()

    def experiment():
        rows = []
        for label, flag in (("bfetch", False), ("bfetch-i", True)):
            config = SystemConfig(
                prefetcher="bfetch",
                bfetch=BFetchConfig(instruction_prefetch=flag),
            )
            system = System(workload, config)
            result = system.run(instructions)
            stats = system.hierarchy.l1i.stats
            rows.append((label, {
                "ipc": result.ipc,
                "l1i misses": float(stats.misses),
                "covered": float(stats.prefetch_useful),
            }))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "futurework_ifetch",
        render_table("Future work: B-Fetch-I on an 85KB-code workload",
                     rows, ["ipc", "l1i misses", "covered"]),
    )
    table = dict(rows)
    assert table["bfetch-i"]["covered"] > 100
    assert table["bfetch-i"]["l1i misses"] < table["bfetch"]["l1i misses"]
    assert table["bfetch-i"]["ipc"] >= table["bfetch"]["ipc"]
