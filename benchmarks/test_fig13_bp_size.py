"""Figure 13: branch predictor size sensitivity (0.5x / 1x / 2x / 4x).

Paper: the default tournament predictor already mispredicts only 2.76%,
so B-Fetch gains little from a bigger predictor -- speedup creeps from
1.2248 to 1.2410 while the miss rate falls 2.95% -> 2.53%.
"""

from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.sim import SystemConfig, geomean
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS

SCALES = (0.5, 1.0, 2.0, 4.0)


def test_fig13_branch_predictor_size(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        rows = []
        for scale in SCALES:
            base_cfg = SystemConfig(prefetcher="none", bp_scale=scale)
            bf_cfg = SystemConfig(prefetcher="bfetch", bp_scale=scale)
            speedups = []
            miss_rates = []
            for bench in BENCHMARKS:
                base = runner.run_single(bench, "none", instructions,
                                         base_cfg)
                run = runner.run_single(bench, "bfetch", instructions,
                                        bf_cfg)
                speedups.append(run.ipc / base.ipc)
                miss_rates.append(run.mispredict_rate)
            rows.append((
                "%.1fx" % scale,
                {
                    "speedup": geomean(speedups),
                    "missrate%": 100 * sum(miss_rates) / len(miss_rates),
                },
            ))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "fig13_bp_size",
        render_table("Fig. 13: branch predictor size sensitivity",
                     rows, ["speedup", "missrate%"]),
    )
    table = dict(rows)
    # larger predictors lower the miss rate...
    assert table["0.5x"]["missrate%"] >= table["4.0x"]["missrate%"]
    # ...but the speedup moves only marginally (<6% across 8x sizing)
    values = [table["%.1fx" % s]["speedup"] for s in SCALES]
    assert max(values) / min(values) < 1.06
