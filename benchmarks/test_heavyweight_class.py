"""Light-weight vs heavy-weight prefetcher classes (paper Section III).

The paper classifies prefetchers as light-weight (Next-N, Stride, SMS,
B-Fetch) or heavy-weight (STeMS, ISB) and argues the heavy class buys
its accuracy with metadata storage that "may not be feasible" under
energy constraints.  This target measures both classes on the same
workloads and prints speedup next to *measured* metadata footprint --
the heavy designs' footprint grows with the working set (the originals
keep it off-chip: multiple MB for STeMS, ~8MB for ISB).
"""

from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.sim import SystemConfig, geomean
from repro.sim.runner import scaled
from repro.sim.system import System
from repro.workloads import build_workload

BENCH_SUBSET = ("mcf", "astar", "soplex", "libquantum", "milc", "sphinx")
PREFETCHERS = ("stride", "sms", "bfetch", "isb", "stems")


def test_heavyweight_class_comparison(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        rows = []
        storage = {}
        for bench in BENCH_SUBSET:
            base = runner.run_single(bench, "none", instructions)
            values = {}
            for prefetcher in PREFETCHERS:
                # heavy-weight metadata grows per-run: simulate directly so
                # the prefetcher instance (and its final footprint) is live
                system = System(build_workload(bench),
                                SystemConfig(prefetcher=prefetcher))
                result = system.run(instructions)
                values[prefetcher] = result.ipc / base.ipc
                bits = system.prefetcher.storage_bits()
                storage[prefetcher] = max(storage.get(prefetcher, 0), bits)
            rows.append((bench, values))
        means = {p: geomean(v[p] for _, v in rows) for p in PREFETCHERS}
        rows.append(("Geomean", means))
        rows.append(("peak state KB",
                     {p: storage[p] / 8192.0 for p in PREFETCHERS}))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "heavyweight_class",
        render_table("Light-weight vs heavy-weight prefetchers",
                     rows, list(PREFETCHERS)),
    )
    table = dict(rows)
    state = table["peak state KB"]
    # the class boundary: B-Fetch's fixed ~13KB vs footprint-proportional
    # metadata (the originals keep megabytes of it off-chip)
    assert state["bfetch"] < 14
    assert state["isb"] > state["bfetch"]
    assert state["stems"] > state["sms"]  # SMS tables + the temporal log
    # the light-weight class helps on this memory-bound subset; the
    # simplified heavy-weight models must at least do no harm
    means = table["Geomean"]
    for prefetcher in ("stride", "sms", "bfetch"):
        assert means[prefetcher] > 1.0
    for prefetcher in ("isb", "stems"):
        assert means[prefetcher] > 0.99
    # B-Fetch stays the best light-weight design
    assert means["bfetch"] >= means["sms"]
