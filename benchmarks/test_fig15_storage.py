"""Figure 15: B-Fetch storage sensitivity (8.01 / 9.65 / 12.94 / 19.46 KB).

Paper: BrTC+MHT scaled through 64/128/256/512 entries; performance
saturates at the 256-entry (~12.9KB) point, which is the shipped design.
"""

from repro_common import single_speedups
from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.analysis.overhead import bfetch_overhead_kb
from repro.core import BFetchConfig
from repro.sim import SystemConfig, geomean

ENTRY_POINTS = (64, 128, 256, 512)


def _label(entries):
    kb = bfetch_overhead_kb(brtc_entries=entries,
                            mht_entries=entries // 2)["TOTAL"]
    return "%.2fKB" % kb


def test_fig15_storage_sensitivity(runner, archive, benchmark):
    def experiment():
        rows = None
        columns = []
        for entries in ENTRY_POINTS:
            column = _label(entries)
            columns.append(column)
            part = single_speedups(
                runner,
                ["bfetch"],
                SINGLE_BUDGET,
                config_for=lambda pf, e=entries: SystemConfig(
                    prefetcher=pf, bfetch=BFetchConfig.sized(e)
                ),
            )
            if rows is None:
                rows = [(bench, {}) for bench, _ in part]
            for (_, values), (_, bf) in zip(rows, part):
                values[column] = bf["bfetch"]
        means = {c: geomean(v[c] for _, v in rows) for c in columns}
        rows.append(("Geomean", means))
        return rows, columns

    rows, columns = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "fig15_storage",
        render_table("Fig. 15: B-Fetch storage sensitivity", rows, columns),
    )
    means = dict(rows)["Geomean"]
    values = [means[c] for c in columns]
    # small tables lose performance; the curve saturates by 256 entries
    assert values[0] <= values[2] + 0.02
    assert abs(values[3] - values[2]) < 0.05 * values[2]
    # and every size point still beats the baseline
    assert min(values) > 1.0
