"""Figure 12: path-confidence threshold sensitivity (0.45 / 0.75 / 0.90).

Paper: best at 0.75; 0.45 admits low-confidence wrong-path prefetches
(20.6% mean), 0.90 is conservative (23.0%); the spread is small because
the per-load filter catches much of what low thresholds let through.
"""

from repro_common import single_speedups
from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.core import BFetchConfig
from repro.sim import SystemConfig, geomean

THRESHOLDS = (0.45, 0.75, 0.90)


def test_fig12_confidence_threshold(runner, archive, benchmark):
    def experiment():
        rows = None
        for threshold in THRESHOLDS:
            config_for = lambda pf, t=threshold: SystemConfig(
                prefetcher=pf,
                bfetch=BFetchConfig(path_confidence_threshold=t),
            )
            column = "conf=%.2f" % threshold
            part = single_speedups(runner, ["bfetch"], SINGLE_BUDGET,
                                   config_for)
            if rows is None:
                rows = [(bench, {}) for bench, _ in part]
            for (bench, values), (_, bf) in zip(rows, part):
                values[column] = bf["bfetch"]
        columns = ["conf=%.2f" % t for t in THRESHOLDS]
        means = {c: geomean(v[c] for _, v in rows) for c in columns}
        rows.append(("Geomean", means))
        return rows, columns

    (rows, columns) = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "fig12_confidence",
        render_table("Fig. 12: branch confidence sensitivity", rows, columns),
    )
    means = dict(rows)["Geomean"]
    # the paper's own reading: "the speedup difference between confidence
    # 0.45 and 0.75 is not large ... performance is fairly stable" (the
    # per-load filter catches what a low threshold lets through), while
    # thresholds above 0.90 turn the engine conservative and lose ground
    assert means["conf=0.75"] >= 0.93 * means["conf=0.45"]
    assert means["conf=0.90"] < means["conf=0.75"]
    assert means["conf=0.75"] >= 0.95 * max(means.values())
