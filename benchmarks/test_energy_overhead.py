"""Prefetcher dynamic-energy comparison (extension).

The paper argues B-Fetch's light weight in storage terms (Table I) and
qualitatively in energy ("in energy/power constrained environments it
may not be feasible to implement such [heavy] prefetchers").  This
extension puts first-order dynamic-energy numbers behind the claim using
:mod:`repro.analysis.energy`: smaller tables + fewer useless transfers
=> less energy per covered miss.
"""

from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.analysis.energy import prefetcher_energy
from repro.sim import SystemConfig
from repro.sim.runner import scaled
from repro.sim.system import System
from repro.workloads import build_workload

BENCH_SUBSET = ("libquantum", "leslie3d", "mcf", "bzip2", "milc", "sphinx")
PREFETCHERS = ("stride", "sms", "bfetch")


def test_energy_per_useful_prefetch(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        totals = {p: {"pj": 0.0, "useful": 0} for p in PREFETCHERS}
        for bench in BENCH_SUBSET:
            for prefetcher in PREFETCHERS:
                system = System(build_workload(bench),
                                SystemConfig(prefetcher=prefetcher))
                result = system.run(instructions)
                walks = getattr(system.prefetcher, "walks", None)
                model = prefetcher_energy(
                    result, prefetcher,
                    system.prefetcher.storage_bits(), walks,
                )
                totals[prefetcher]["pj"] += model.total_pj
                # "useful" here = demanded prefetches (useful + late now
                # that the outcome counters are disjoint)
                stats = result.data["prefetch"]
                totals[prefetcher]["useful"] += \
                    stats["useful"] + stats["late"]
        return totals

    totals = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for prefetcher in PREFETCHERS:
        data = totals[prefetcher]
        per_useful = data["pj"] / data["useful"] if data["useful"] else 0.0
        rows.append((prefetcher, {
            "total nJ": data["pj"] / 1000.0,
            "useful": float(data["useful"]),
            "pJ/useful": per_useful,
        }))
    archive(
        "energy_overhead",
        render_table("Prefetcher dynamic-energy comparison (extension)",
                     rows, ["total nJ", "useful", "pJ/useful"], fmt="%.1f"),
    )
    table = {label: values for label, values in rows}
    # B-Fetch covers a useful prefetch at no more energy than SMS
    assert table["bfetch"]["pJ/useful"] <= 1.1 * table["sms"]["pJ/useful"]