"""Figure 3: register vs effective-address variation CDFs (1/3/12 BBs).

Paper: ~92% of address-base register values stay within one 64B block
across 1 BB (89% across 3, 82% across 12), while effective addresses
drift rapidly -- the motivation for anchoring prefetch address
speculation on current register state.
"""

from conftest import ANALYSIS_BUDGET

from repro.analysis import collect_variation, render_cdf
from repro.analysis.variation import VariationCDF
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS, build_workload

WINDOWS = (1, 3, 12)


def _merge(cdfs_list):
    merged = {window: VariationCDF() for window in WINDOWS}
    for cdfs in cdfs_list:
        for window in WINDOWS:
            source = cdfs[window]
            for blocks, count in enumerate(source.counts):
                merged[window].counts[blocks] += count
                merged[window].total += count
    return merged


def test_fig03_register_vs_ea_variation(archive, benchmark):
    instructions = scaled(ANALYSIS_BUDGET)

    def experiment():
        reg_all, ea_all = [], []
        for bench in BENCHMARKS:
            reg, ea = collect_variation(build_workload(bench),
                                        instructions=instructions,
                                        windows=WINDOWS)
            reg_all.append(reg)
            ea_all.append(ea)
        return _merge(reg_all), _merge(ea_all)

    reg, ea = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = "\n".join([
        render_cdf("Fig. 3a: register content variation", reg),
        render_cdf("Fig. 3b: effective address variation", ea),
    ])
    archive("fig03_variation", text)

    # registers are far more stable than effective addresses
    for window in WINDOWS:
        assert reg[window].fraction_within(1) > ea[window].fraction_within(1)
    # a large majority of register deltas stay within one cache block,
    # and stability decays as the window grows (92%/89%/82% in the paper)
    assert reg[1].fraction_within(1) > 0.7
    assert reg[1].fraction_within(1) >= reg[3].fraction_within(1) >= \
        reg[12].fraction_within(1) - 0.02
    # EA variation grows quickly with lookahead depth
    assert ea[12].fraction_within(1) < reg[12].fraction_within(1)
