"""Figure 11: useful vs useless prefetches issued, SMS vs B-Fetch.

Paper: B-Fetch issues ~4% more useful prefetches while issuing ~50%
fewer useless ones -- the accuracy story behind its CMP advantage.
"""

from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS

COLUMNS = ["sms useful", "sms useless", "bfetch useful", "bfetch useless"]


def test_fig11_useful_vs_useless(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        rows = []
        totals = {column: 0 for column in COLUMNS}
        for bench in BENCHMARKS:
            values = {}
            for prefetcher in ("sms", "bfetch"):
                stats = runner.run_single(
                    bench, prefetcher, instructions
                ).data["prefetch"]
                # Fig. 11's "useful" = demanded prefetches; with the
                # disjoint outcome counters that is useful + late
                values["%s useful" % prefetcher] = float(
                    stats["useful"] + stats["late"]
                )
                values["%s useless" % prefetcher] = float(stats["useless"])
            for column in COLUMNS:
                totals[column] += values[column]
            rows.append((bench, values))
        rows.append(("TOTAL", totals))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "fig11_useful",
        render_table("Fig. 11: useful/useless prefetches issued",
                     rows, COLUMNS, fmt="%.0f"),
    )
    totals = dict(rows)["TOTAL"]
    # paper: B-Fetch issues ~4% more useful prefetches than SMS...
    assert totals["bfetch useful"] >= 0.95 * totals["sms useful"]
    # ...while issuing around half the useless ones
    assert totals["bfetch useless"] <= 0.65 * totals["sms useless"]
