"""Figure 14: pipeline width sensitivity (2- / 4- / 8-wide).

Paper: B-Fetch's speedup grows gently with width (22.6% / 23.2% / 26.7%)
-- wider machines expose more memory stalls for the prefetcher to hide.
Each width's speedup is measured against a baseline of the *same* width.
"""

from repro_common import single_speedups
from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.sim import SystemConfig, geomean

WIDTHS = (2, 4, 8)


def test_fig14_pipeline_width(runner, archive, benchmark):
    def experiment():
        rows = None
        for width in WIDTHS:
            column = "%dwide" % width
            part = single_speedups(
                runner,
                ["bfetch"],
                SINGLE_BUDGET,
                config_for=lambda pf, w=width: SystemConfig(prefetcher=pf,
                                                            width=w),
                base_config=SystemConfig(prefetcher="none", width=width),
            )
            if rows is None:
                rows = [(bench, {}) for bench, _ in part]
            for (_, values), (_, bf) in zip(rows, part):
                values[column] = bf["bfetch"]
        columns = ["%dwide" % w for w in WIDTHS]
        means = {c: geomean(v[c] for _, v in rows) for c in columns}
        rows.append(("Geomean", means))
        return rows, columns

    rows, columns = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "fig14_width",
        render_table("Fig. 14: CPU pipeline width sensitivity",
                     rows, columns),
    )
    means = dict(rows)["Geomean"]
    # gains at every width, roughly stable-to-growing with width
    assert all(means[c] > 1.0 for c in columns)
    assert means["8wide"] >= 0.95 * means["2wide"]
