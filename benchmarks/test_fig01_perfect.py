"""Figure 1: Stride vs SMS vs Perfect prefetcher speedups.

The paper's limit study: a perfect L1-D prefetcher gives ~2x geometric
mean speedup (13.8x on libquantum), while Stride and SMS capture only
part of it; several compute-bound benchmarks gain nothing.

Evaluated through the parallel ``run_many`` batch engine (see
``single_speedups``): independent (benchmark, prefetcher) runs fan out
over ``REPRO_JOBS`` worker processes with byte-identical results.
"""

from repro_common import append_geomeans, single_speedups
from conftest import SINGLE_BUDGET

from repro.analysis import render_table

COLUMNS = ["stride", "sms", "perfect"]


def test_fig01_perfect_prefetcher_limit_study(runner, archive, benchmark):
    def experiment():
        rows = single_speedups(runner, COLUMNS, SINGLE_BUDGET)
        return append_geomeans(rows, COLUMNS)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "fig01_perfect",
        render_table("Fig. 1: speedup vs no-prefetch baseline", rows, COLUMNS),
    )
    table = dict(rows)
    geo = table["Geomean"]
    sens = table["Geomean pf. sens."]
    # shape checks from the paper
    assert geo["perfect"] > geo["sms"] > 1.0
    assert geo["perfect"] > geo["stride"] > 1.0
    assert sens["perfect"] > geo["perfect"]
    # compute-bound benchmarks gain ~nothing even under the oracle
    for bench in ("calculix", "gamess", "gromacs"):
        assert table[bench]["perfect"] < 1.25
    # libquantum is the outlier with the largest headroom
    assert table["libquantum"]["perfect"] > 5.0
