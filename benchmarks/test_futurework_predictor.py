"""Future-work reproduction: B-Fetch under a state-of-the-art predictor.

The paper closes Fig. 13 with "we plan to evaluate B-Fetch with the
state-of-art branch predictors".  This target does exactly that: the
baseline tournament predictor vs a perceptron predictor (Jimenez & Lin),
measuring both the miss rate and B-Fetch's speedup under each.
Consistent with the paper's Fig. 13 finding, the already-low miss rate
leaves little headroom: the better predictor moves B-Fetch only
marginally.
"""

from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.sim import SystemConfig, geomean
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS

PREDICTORS = ("tournament", "perceptron")


def test_futurework_predictor_upgrade(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        rows = []
        for predictor in PREDICTORS:
            base_cfg = SystemConfig(prefetcher="none",
                                    branch_predictor=predictor)
            bf_cfg = SystemConfig(prefetcher="bfetch",
                                  branch_predictor=predictor)
            speedups = []
            miss_rates = []
            for bench in BENCHMARKS:
                base = runner.run_single(bench, "none", instructions,
                                         base_cfg)
                run = runner.run_single(bench, "bfetch", instructions,
                                        bf_cfg)
                speedups.append(run.ipc / base.ipc)
                miss_rates.append(run.mispredict_rate)
            rows.append((predictor, {
                "speedup": geomean(speedups),
                "missrate%": 100 * sum(miss_rates) / len(miss_rates),
            }))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "futurework_predictor",
        render_table("Future work: B-Fetch under tournament vs perceptron",
                     rows, ["speedup", "missrate%"]),
    )
    table = dict(rows)
    # both predictors give B-Fetch solid gains; the upgrade moves the
    # needle only marginally (the paper's Fig. 13 conclusion)
    for predictor in PREDICTORS:
        assert table[predictor]["speedup"] > 1.2
    ratio = (table["perceptron"]["speedup"]
             / table["tournament"]["speedup"])
    assert 0.93 < ratio < 1.10
