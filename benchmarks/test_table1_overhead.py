"""Table I: hardware storage overhead -- B-Fetch 12.84KB vs SMS 36.57KB.

Pure accounting (no simulation): reproduces the paper's component sizes
and the "65% less storage than SMS" headline.
"""

import pytest

from repro.analysis import overhead_table
from repro.analysis.overhead import storage_saving_vs_sms

EXPECTED_BFETCH = {
    "Branch Trace Cache": 2.06,
    "Memory History Table": 4.5,
    "Alternate Register File": 0.156,
    "Per-Load Prefetch Filter": 2.25,
    "Additional Cache bits": 1.37,
    "Prefetch Queue": 0.51,
    "Path Confidence Estimator": 2.0,
}


def test_table1_storage_overhead(archive, benchmark):
    rows, bf_total, sms_total = benchmark.pedantic(
        overhead_table, rounds=1, iterations=1
    )
    lines = ["== Table I: hardware storage overhead (KB) =="]
    for owner, name, entries, size in rows:
        lines.append(
            "%-8s %-28s %8s %8.3f"
            % (owner, name, entries if entries else "-", size)
        )
    archive("table1_overhead", "\n".join(lines))

    sizes = {name: size for owner, name, _, size in rows if owner == "B-Fetch"}
    for name, expected in EXPECTED_BFETCH.items():
        assert sizes[name] == pytest.approx(expected, abs=0.02), name
    assert bf_total == pytest.approx(12.84, abs=0.01)
    assert sms_total == pytest.approx(36.57, abs=0.01)
    assert storage_saving_vs_sms() == pytest.approx(0.65, abs=0.02)
