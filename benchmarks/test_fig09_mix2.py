"""Figure 9: normalized weighted speedup for 29 mixes of 2 workloads.

Paper: B-Fetch 31.2% vs SMS 25.5% mean improvement over the
no-prefetching CMP baseline, on the 29 highest-contention mixes selected
with the FOA model of Chandra et al.
"""

from conftest import MIX_BUDGET, SINGLE_BUDGET

from repro.analysis import render_table
from repro.sim import geomean
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS, select_mixes

PREFETCHERS = ["stride", "sms", "bfetch"]


def run_mix_figure(runner, mix_size, budget):
    """Shared driver for Figs. 9 and 10."""
    foa = runner.foa_map(BENCHMARKS, instructions=scaled(SINGLE_BUDGET))
    mixes = select_mixes(foa, size=mix_size, count=29)
    instructions = scaled(budget)
    singles = scaled(SINGLE_BUDGET)
    rows = []
    for position, mix in enumerate(mixes, start=1):
        values = {}
        for prefetcher in PREFETCHERS:
            values[prefetcher] = runner.weighted_speedup_normalized(
                mix, prefetcher,
                instructions=instructions, single_instructions=singles,
            )
        rows.append(("mix%d:%s" % (position, "+".join(mix)), values))
    rows.sort(key=lambda row: row[1]["bfetch"])
    means = {
        prefetcher: geomean(values[prefetcher] for _, values in rows)
        for prefetcher in PREFETCHERS
    }
    rows.append(("Geomean", means))
    return rows


def test_fig09_mix2_weighted_speedup(runner, archive, benchmark):
    rows = benchmark.pedantic(
        lambda: run_mix_figure(runner, 2, MIX_BUDGET), rounds=1, iterations=1
    )
    archive(
        "fig09_mix2",
        render_table("Fig. 9: normalized weighted speedup (mix-2)",
                     rows, PREFETCHERS),
    )
    means = dict(rows)["Geomean"]
    assert means["bfetch"] > means["sms"] > 1.0
    assert means["bfetch"] > means["stride"]
