"""Table II: baseline configuration.

Renders the simulated machine's configuration and checks it matches the
paper's baseline, including the measured branch-predictor miss rate
(paper: 2.76% with the 6.55KB tournament predictor).
"""

from conftest import SINGLE_BUDGET

from repro.sim import SystemConfig
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS


def test_table2_baseline_configuration(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        results = [
            runner.run_single(bench, "none", instructions)
            for bench in BENCHMARKS
        ]
        rates = [r.mispredict_rate for r in results]
        return sum(rates) / len(rates)

    miss_rate = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = ["== Table II: baseline configuration =="]
    for key, value in SystemConfig().describe():
        lines.append("%-36s %s" % (key, value))
    lines.append("%-36s %.2f%% (paper: 2.76%%)"
                 % ("Measured branch miss rate", 100 * miss_rate))
    archive("table2_config", "\n".join(lines))

    # the tournament predictor lands in the paper's miss-rate ballpark
    assert miss_rate < 0.06
    rows = dict(SystemConfig().describe())
    assert "4-wide" in rows["CPU"]
    assert rows["Branch path confidence threshold"] == "0.75"
