"""Shared infrastructure for the reproduction benchmarks.

Each ``test_*`` module regenerates one table or figure of the paper.
Simulation results are memoised under ``benchmarks/.cache`` (delete it to
force recomputation); rendered tables are printed and archived under
``benchmarks/results``.  Set ``REPRO_SCALE`` to trade fidelity for time
(e.g. ``REPRO_SCALE=0.25 pytest benchmarks/``) and ``REPRO_JOBS`` to fan
cold sweeps out over worker processes (results are byte-identical to
serial; see DESIGN.md "Performance & parallelism").

The engine is fault tolerant: every finished run is checkpointed to
``benchmarks/.cache`` the moment it completes, so an interrupted or
crashed sweep resumes where it stopped on the next invocation, and
failed or hung workers are retried per ``REPRO_RETRIES`` /
``REPRO_TASK_TIMEOUT`` / ``REPRO_ON_ERROR`` (DESIGN.md "Failure model &
recovery").
"""

import os

import pytest

from repro.sim import ExperimentRunner

_HERE = os.path.dirname(os.path.abspath(__file__))
CACHE_DIR = os.path.join(_HERE, ".cache")
RESULTS_DIR = os.path.join(_HERE, "results")

# instruction budgets (pre-REPRO_SCALE)
SINGLE_BUDGET = 200_000
MIX_BUDGET = 50_000
ANALYSIS_BUDGET = 80_000


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner(cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def archive():
    """Print a rendered experiment and archive it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _archive(name, text):
        print()
        print(text)
        with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
            handle.write(text + "\n")
        return text

    return _archive
