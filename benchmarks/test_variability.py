"""Across-seed robustness of the headline result (extension).

The paper's numbers come from one SPEC input set; our synthetic
workloads let us re-draw the stochastic content (chain orders, branch
patterns, gather indices) and check that the B-Fetch > SMS ordering is a
property of the mechanism, not of one lucky seed.
"""

from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.sim import geomean
from repro.sim.runner import scaled
from repro.sim.variability import speedup_across_variants

BENCH_SUBSET = ("mcf", "soplex", "sphinx", "leslie3d", "hmmer")
VARIANTS = 3


def test_headline_robust_across_seeds(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET // 2)

    def experiment():
        rows = []
        means = {"sms": [], "bfetch": []}
        for bench in BENCH_SUBSET:
            values = {}
            for prefetcher in ("sms", "bfetch"):
                mean, half, _ = speedup_across_variants(
                    runner, bench, prefetcher, instructions, VARIANTS
                )
                values["%s mean" % prefetcher] = mean
                values["%s ci95" % prefetcher] = half
                means[prefetcher].append(mean)
            rows.append((bench, values))
        rows.append(("Geomean", {
            "sms mean": geomean(means["sms"]),
            "bfetch mean": geomean(means["bfetch"]),
        }))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive(
        "variability",
        render_table(
            "Across-seed speedups (%d variants)" % VARIANTS, rows,
            ["sms mean", "sms ci95", "bfetch mean", "bfetch ci95"],
        ),
    )
    table = dict(rows)
    geo = table["Geomean"]
    assert geo["bfetch mean"] > geo["sms mean"]
    # dispersion stays small relative to the means
    for bench in BENCH_SUBSET:
        assert table[bench]["bfetch ci95"] < 0.4 * table[bench]["bfetch mean"]
