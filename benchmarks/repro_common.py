"""Helpers shared by the figure/table reproduction benchmarks."""

from repro.sim import geomean
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS, PREFETCH_SENSITIVE


def single_speedups(runner, prefetchers, budget, config_for=None,
                    base_config=None, jobs=None, policy=None):
    """Per-benchmark speedups vs the no-prefetch baseline.

    The whole benchmark x prefetcher grid goes through the runner's
    parallel :meth:`~repro.sim.ExperimentRunner.sweep` batch API: cache
    hits are served directly and only the misses are fanned out over the
    process pool (``REPRO_JOBS`` / *jobs*), with output identical to the
    serial path.  The engine is fault tolerant: each finished run is
    persisted immediately, so interrupting a sweep and re-running it
    resumes from ``benchmarks/.cache``, and failed or hung workers are
    retried per the :class:`~repro.resilience.FailurePolicy`
    (``REPRO_RETRIES`` / ``REPRO_TASK_TIMEOUT`` / ``REPRO_ON_ERROR`` or
    *policy*).

    :param config_for: optional ``fn(prefetcher) -> SystemConfig``.
    :param base_config: optional baseline SystemConfig (must keep
        ``prefetcher="none"``), for sweeps that change the machine itself.
    :param policy: optional :class:`~repro.resilience.FailurePolicy`
        override for this sweep.
    :returns: rows ``[(bench, {pf: speedup})]`` ready for rendering.
    """
    instructions = scaled(budget)
    baselines, table = runner.sweep(
        BENCHMARKS, prefetchers, instructions,
        config_for=config_for, base_config=base_config, jobs=jobs,
        policy=policy,
    )
    rows = []
    for bench in BENCHMARKS:
        base_ipc = baselines[bench].ipc
        rows.append((
            bench,
            {
                prefetcher: table[bench][prefetcher].ipc / base_ipc
                for prefetcher in prefetchers
            },
        ))
    return rows


def append_geomeans(rows, columns):
    """Add the paper's Geomean and prefetch-sensitive Geomean rows."""
    full = {
        column: geomean(values[column] for _, values in rows)
        for column in columns
    }
    sensitive = {
        column: geomean(
            values[column]
            for bench, values in rows
            if bench in PREFETCH_SENSITIVE
        )
        for column in columns
    }
    return rows + [("Geomean", full), ("Geomean pf. sens.", sensitive)]
