"""Helpers shared by the figure/table reproduction benchmarks."""

from repro.sim import geomean
from repro.sim.runner import scaled
from repro.workloads import BENCHMARKS, PREFETCH_SENSITIVE


def single_speedups(runner, prefetchers, budget, config_for=None,
                    base_config=None):
    """Per-benchmark speedups vs the no-prefetch baseline.

    :param config_for: optional ``fn(prefetcher) -> SystemConfig``.
    :param base_config: optional baseline SystemConfig (must keep
        ``prefetcher="none"``), for sweeps that change the machine itself.
    :returns: rows ``[(bench, {pf: speedup})]`` ready for rendering.
    """
    instructions = scaled(budget)
    rows = []
    for bench in BENCHMARKS:
        base = runner.run_single(bench, "none", instructions, base_config)
        values = {}
        for prefetcher in prefetchers:
            config = config_for(prefetcher) if config_for else None
            run = runner.run_single(bench, prefetcher, instructions, config)
            values[prefetcher] = run.ipc / base.ipc
        rows.append((bench, values))
    return rows


def append_geomeans(rows, columns):
    """Add the paper's Geomean and prefetch-sensitive Geomean rows."""
    full = {
        column: geomean(values[column] for _, values in rows)
        for column in columns
    }
    sensitive = {
        column: geomean(
            values[column]
            for bench, values in rows
            if bench in PREFETCH_SENSITIVE
        )
        for column in columns
    }
    return rows + [("Geomean", full), ("Geomean pf. sens.", sensitive)]
