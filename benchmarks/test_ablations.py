"""Design-choice ablations beyond the paper's figures.

Backs the design claims DESIGN.md calls out:

* **Tango comparison** (Section III-C): branch-directed prefetching off
  *EA history* underperforms B-Fetch's register-anchored speculation.
* **Per-load filter**: removing it floods the system with inaccurate
  prefetches (more useless traffic).
* **Loop detection**: LoopCnt x LoopDelta extrapolation drives the
  streaming-benchmark gains.
* **ARF sampling**: an execute-sampled ARF beats a retire-time (longer
  lag) register copy, per the paper's Section IV-B2 observation.
"""

from conftest import SINGLE_BUDGET

from repro.analysis import render_table
from repro.core import BFetchConfig
from repro.sim import SystemConfig, geomean
from repro.sim.runner import scaled
from repro.workloads import PREFETCH_SENSITIVE

BENCH_SUBSET = ("libquantum", "leslie3d", "sphinx", "mcf", "bzip2", "milc")


def _speedups(runner, instructions, prefetcher="bfetch", bfetch=None):
    values = {}
    for bench in BENCH_SUBSET:
        base = runner.run_single(bench, "none", instructions)
        config = SystemConfig(prefetcher=prefetcher, bfetch=bfetch)
        run = runner.run_single(bench, prefetcher, instructions, config)
        values[bench] = run.ipc / base.ipc
    return values


def test_ablation_tango_ea_history_vs_register_state(runner, archive,
                                                     benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        return (
            _speedups(runner, instructions, "tango"),
            _speedups(runner, instructions, "bfetch"),
        )

    tango, bfetch = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (bench, {"tango": tango[bench], "bfetch": bfetch[bench]})
        for bench in BENCH_SUBSET
    ]
    rows.append(("Geomean", {
        "tango": geomean(tango.values()),
        "bfetch": geomean(bfetch.values()),
    }))
    archive("ablation_tango",
            render_table("Ablation: EA-history (Tango) vs register-state "
                         "(B-Fetch)", rows, ["tango", "bfetch"]))
    assert geomean(bfetch.values()) > geomean(tango.values())


def test_ablation_per_load_filter(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        useless = {}
        for label, config in (
            ("filtered", BFetchConfig()),
            ("unfiltered", BFetchConfig(use_filter=False)),
        ):
            total = 0
            for bench in BENCH_SUBSET:
                run = runner.run_single(
                    bench, "bfetch", instructions,
                    SystemConfig(prefetcher="bfetch", bfetch=config),
                )
                total += run.data["prefetch"]["useless"]
            useless[label] = total
        return useless

    useless = benchmark.pedantic(experiment, rounds=1, iterations=1)
    archive("ablation_filter",
            "== Ablation: per-load filter ==\n"
            "useless prefetches with filter:    %(filtered)d\n"
            "useless prefetches without filter: %(unfiltered)d" % useless)
    assert useless["filtered"] < useless["unfiltered"]


def test_ablation_loop_detection(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        on = _speedups(runner, instructions, bfetch=BFetchConfig())
        off = _speedups(runner, instructions,
                        bfetch=BFetchConfig(loop_prefetch=False))
        return on, off

    on, off = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [(b, {"loop on": on[b], "loop off": off[b]})
            for b in BENCH_SUBSET]
    rows.append(("Geomean", {"loop on": geomean(on.values()),
                             "loop off": geomean(off.values())}))
    archive("ablation_loop",
            render_table("Ablation: loop detection (LoopCnt x LoopDelta)",
                         rows, ["loop on", "loop off"]))
    # loop extrapolation is what reaches ahead on loop-dominated code
    # (bandwidth-saturated pure streams like libquantum are insensitive)
    assert on["sphinx"] > 1.2 * off["sphinx"]
    assert geomean(on.values()) >= geomean(off.values())


def test_ablation_arf_sampling_delay(runner, archive, benchmark):
    instructions = scaled(SINGLE_BUDGET)

    def experiment():
        execute = _speedups(runner, instructions,
                            bfetch=BFetchConfig(arf_delay=6))
        retire = _speedups(runner, instructions,
                           bfetch=BFetchConfig(arf_delay=60,
                                               arf_mode="retire"))
        return execute, retire

    execute, retire = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [(b, {"execute": execute[b], "retire": retire[b]})
            for b in BENCH_SUBSET]
    rows.append(("Geomean", {"execute": geomean(execute.values()),
                             "retire": geomean(retire.values())}))
    archive("ablation_arf",
            render_table("Ablation: ARF sampling point", rows,
                         ["execute", "retire"]))
    # both work (offsets absorb the mean lag); the execute-sampled copy
    # must not be worse
    assert geomean(execute.values()) >= 0.98 * geomean(retire.values())
