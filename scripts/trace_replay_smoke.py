"""CI smoke: record-once / re-time-many, end to end.

Pass 1 sweeps a small benchmark set under ``REPRO_TRACE_REPLAY=on``
with one prefetcher, recording one functional trace per benchmark.
Pass 2 sweeps the *same benchmarks under different prefetchers* against
the same cache directory with the process-local memos cleared (so every
load comes from disk): every result-cache probe misses (new configs)
but every trace-store probe hits, so the pass must
complete with **zero functional executions** -- ``recorded == 0`` and
``lockstep == 0``.  A third pass with replay off, in a separate cache
directory, provides the lockstep reference that the replayed results
must match byte for byte.

Run from the repo root::

    python scripts/trace_replay_smoke.py [cache_dir]

Exits non-zero (assertion) on any violation; prints the trace-store
stats as JSON on success so CI can archive them.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))), "src"))

BENCHMARKS = ("mcf", "libquantum")
PASS1_PREFETCHERS = ("none",)
PASS2_PREFETCHERS = ("stride", "sms", "bfetch")
INSTRUCTIONS = 8_000


def sweep(cache_dir, prefetchers):
    """One serial sweep in this process; returns (results, counters)."""
    from repro.sim.runner import ExperimentRunner, RunRequest
    from repro.trace.store import clear_memos, replay_counters, \
        reset_counters

    clear_memos()
    reset_counters()
    runner = ExperimentRunner(cache_dir=cache_dir)
    requests = [RunRequest(bench, prefetcher, INSTRUCTIONS)
                for bench in BENCHMARKS
                for prefetcher in prefetchers]
    results = runner.run_many(requests, jobs=1)
    return [r.as_dict() for r in results], dict(replay_counters)


def main():
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else "trace-smoke-cache"
    os.environ["REPRO_JOBS"] = "1"  # counters are process-local

    # lockstep reference, separate cache, replay off
    os.environ["REPRO_TRACE_REPLAY"] = "off"
    reference, ref_counters = sweep(cache_dir + "-ref", PASS2_PREFETCHERS)
    assert ref_counters["lockstep"] == len(reference), ref_counters

    # pass 1: record (strict mode -- a fallback is a failure here)
    os.environ["REPRO_TRACE_REPLAY"] = "on"
    _results, counters = sweep(cache_dir, PASS1_PREFETCHERS)
    assert counters["recorded"] == len(BENCHMARKS), counters
    assert counters["replayed"] == len(BENCHMARKS), counters
    assert counters["lockstep"] == 0, counters
    assert counters["fallback"] == 0, counters
    print("pass 1 (record): %s" % counters)

    # pass 2: new configs, zero functional executions
    replayed, counters = sweep(cache_dir, PASS2_PREFETCHERS)
    assert counters["recorded"] == 0, \
        "pass 2 recorded traces: %s" % counters
    assert counters["lockstep"] == 0, \
        "pass 2 fell back to lockstep: %s" % counters
    assert counters["fallback"] == 0, counters
    assert counters["replayed"] == len(replayed), counters
    print("pass 2 (replay): %s" % counters)

    # byte-identity against the lockstep reference
    assert replayed == reference, "replayed sweep diverged from lockstep"
    print("byte-identity: %d results identical" % len(reference))

    from repro.trace.store import TraceStore
    stats = TraceStore(cache_dir).stats()
    assert stats["entries"] == len(BENCHMARKS), stats
    print(json.dumps({"trace_store": stats}))


if __name__ == "__main__":
    main()
