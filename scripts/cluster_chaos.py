"""CI chaos drill: the cluster survives host loss + wire rot, losslessly.

Boots a cluster coordinator (one clean local worker) plus two remote
node subprocesses whose environment carries
``REPRO_FAULTS=host-kill:0.3,cache-peer-corrupt:0.2`` -- every node
rolls a 30% chance of ``os._exit`` at every shard/task boundary and a
20% chance of serving a corrupted cache entry over the peer wire.  A
keeper thread respawns dead nodes, keeping the chaos sustained for the
whole 50-job sweep.  The drill asserts the ISSUE acceptance bar:

* **zero lost jobs** -- every submission reaches a terminal ``done``
  state (node deaths requeue their shards, partitions replay);
* **byte-identity** -- every result equals the serial
  :meth:`ExperimentRunner.run_batch` reference computed in *this*
  process (where the cluster verbs never fire), proving that
  kill-interrupted shards resumed from the cache checkpoint and
  converged;
* **chaos actually happened** -- ``serve.cluster.nodes_lost`` and
  ``serve.cluster.requeues`` are non-zero (a chaos drill where nothing
  dies proves nothing).

Run from the repo root::

    python scripts/cluster_chaos.py [stats_out.json]

Prints the ``serve.cluster.*`` / ``serve.fleet.*`` counters as JSON on
success (CI archives them as an artifact); exits non-zero on any
violation.
"""

import json
import os
import sys
import tempfile
import threading

sys.path.insert(0, os.path.join(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))), "src"))

NODES = 2
FAULTS = "host-kill:0.3:seed=11,cache-peer-corrupt:0.2:seed=12"
BENCHMARKS = ("libquantum", "mcf")
PREFETCHERS = ("none", "stride", "bfetch", "sms", "nextn")
VARIANTS = range(5)   # 2 benchmarks x 5 prefetchers x 5 variants = 50
INSTRUCTIONS = 2_000


def _node_env():
    env = dict(os.environ)
    env["REPRO_FAULTS"] = FAULTS
    return env


def main():
    stats_out = sys.argv[1] if len(sys.argv) > 1 else None
    # the cluster verbs must fire only inside the node subprocesses --
    # this process computes the serial reference
    os.environ.pop("REPRO_FAULTS", None)

    from repro.serve import ServeClient
    from repro.serve.cluster import spawn_node
    from repro.serve.server import ServerThread
    from repro.sim.runner import ExperimentRunner, RunRequest

    grid = [(bench, prefetcher, variant)
            for bench in BENCHMARKS
            for prefetcher in PREFETCHERS
            for variant in VARIANTS]
    cache_dir = tempfile.mkdtemp(prefix="cluster-chaos-cache-")
    node_dirs = [tempfile.mkdtemp(prefix="cluster-chaos-node%d-" % n)
                 for n in range(NODES)]
    respawns = [0]
    stop = threading.Event()

    with ServerThread(cache_dir=cache_dir, cluster=True, workers=1,
                      beat_interval=0.25, heartbeat_interval=0,
                      shard_tasks=1,
                      high_water=len(grid) + 8) as thread:
        procs = [spawn_node(thread.address, cache_dir=node_dirs[n],
                            node_id="chaos-%d" % n, env=_node_env())
                 for n in range(NODES)]

        def keeper():
            # sustained chaos: a host-killed node comes back as a fresh
            # process (same cache dir, so its checkpoints survive)
            while not stop.wait(0.3):
                for n, proc in enumerate(procs):
                    if proc.poll() is not None:
                        respawns[0] += 1
                        procs[n] = spawn_node(
                            thread.address, cache_dir=node_dirs[n],
                            node_id="chaos-%d" % n, env=_node_env())

        tender = threading.Thread(target=keeper, daemon=True)
        tender.start()
        try:
            host, port = thread.address
            with ServeClient(host, port, timeout=120) as client:
                tickets = [
                    client.submit(bench, prefetcher,
                                  instructions=INSTRUCTIONS,
                                  variant=variant)
                    for bench, prefetcher, variant in grid
                ]
                results = []
                for ticket in tickets:
                    reply = client.result(ticket["job_id"], wait=True)
                    assert reply["state"] == "done", \
                        "lost job %s: %s" % (ticket["job_id"], reply)
                    results.append(reply["result"][0])
                stats = client.statz()
        finally:
            stop.set()
            tender.join(timeout=5)
            for proc in procs:
                proc.kill()
                proc.wait()

    runner = ExperimentRunner(
        cache_dir=tempfile.mkdtemp(prefix="cluster-chaos-ref-")
    )
    reference, _report = runner.run_batch(
        [RunRequest(bench, prefetcher, INSTRUCTIONS, None, variant)
         for bench, prefetcher, variant in grid]
    )
    mismatches = [
        grid[i]
        for i, (got, want) in enumerate(zip(results, reference))
        if json.dumps(got, sort_keys=True)
        != json.dumps(want.as_dict(), sort_keys=True)
    ]
    assert not mismatches, "diverged under chaos: %s" % mismatches

    cluster_stats = {name: value for name, value in sorted(stats.items())
                     if name.startswith(("serve.cluster.",
                                         "serve.fleet."))}
    cluster_stats["jobs"] = len(grid)
    cluster_stats["node_respawns"] = respawns[0]
    assert stats["serve.jobs.completed"] == len(grid), stats
    assert cluster_stats["serve.cluster.nodes_lost"] > 0, \
        "chaos drill killed no nodes: %s" % cluster_stats
    assert cluster_stats["serve.cluster.requeues"] > 0, cluster_stats
    assert cluster_stats["serve.cluster.nodes_joined"] >= NODES, \
        cluster_stats
    print("%d jobs, zero lost, byte-identical to serial reference"
          % len(grid))
    print(json.dumps(cluster_stats, indent=2, sort_keys=True))
    if stats_out:
        with open(stats_out, "w") as handle:
            json.dump(cluster_stats, handle, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
