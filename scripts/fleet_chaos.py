"""CI chaos drill: the fleet survives sustained worker-kill, losslessly.

Boots a 3-worker fleet server with ``REPRO_FAULTS=worker-kill:0.3``
exported to the worker subprocesses, drives a 50-job batch through the
blocking client, and asserts the ISSUE acceptance bar:

* **zero lost jobs** -- every submission reaches a terminal ``done``
  state (worker deaths requeue, they never drop work);
* **byte-identity** -- every result equals the serial
  :meth:`ExperimentRunner.run_batch` reference computed in *this*
  process (where the ``worker-*`` verbs never fire), proving that
  kill-interrupted jobs resumed from the cache checkpoint and
  converged;
* **chaos actually happened** -- the ``serve.fleet.respawns`` /
  ``serve.fleet.requeues`` counters are non-zero (a chaos drill where
  nothing dies proves nothing).

Run from the repo root::

    python scripts/fleet_chaos.py [stats_out.json]

Prints the ``serve.fleet.*`` counters as JSON on success (CI archives
them as an artifact); exits non-zero on any violation.
"""

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))), "src"))

WORKERS = 3
FAULTS = "worker-kill:0.3:seed=11"
BENCHMARKS = ("libquantum", "mcf")
PREFETCHERS = ("none", "stride", "bfetch", "sms", "nextn")
VARIANTS = range(5)   # 2 benchmarks x 5 prefetchers x 5 variants = 50
INSTRUCTIONS = 2_000


def main():
    stats_out = sys.argv[1] if len(sys.argv) > 1 else None
    os.environ["REPRO_FAULTS"] = FAULTS

    from repro.serve import ServeClient, ServerThread
    from repro.sim.runner import ExperimentRunner, RunRequest

    grid = [(bench, prefetcher, variant)
            for bench in BENCHMARKS
            for prefetcher in PREFETCHERS
            for variant in VARIANTS]
    cache_dir = tempfile.mkdtemp(prefix="fleet-chaos-cache-")
    with ServerThread(cache_dir=cache_dir, workers=WORKERS,
                      beat_interval=0.25, heartbeat_interval=0,
                      high_water=len(grid) + 8) as thread:
        host, port = thread.address
        with ServeClient(host, port, timeout=120) as client:
            tickets = [
                client.submit(bench, prefetcher,
                              instructions=INSTRUCTIONS, variant=variant)
                for bench, prefetcher, variant in grid
            ]
            results = []
            for ticket in tickets:
                reply = client.result(ticket["job_id"], wait=True)
                assert reply["state"] == "done", \
                    "lost job %s: %s" % (ticket["job_id"], reply)
                results.append(reply["result"][0])
            stats = client.statz()

    # serial reference: worker-* verbs only fire inside fleet workers,
    # so the same REPRO_FAULTS value is inert in this process
    runner = ExperimentRunner(
        cache_dir=tempfile.mkdtemp(prefix="fleet-chaos-ref-")
    )
    reference, _report = runner.run_batch(
        [RunRequest(bench, prefetcher, INSTRUCTIONS, None, variant)
         for bench, prefetcher, variant in grid]
    )
    mismatches = [
        grid[i]
        for i, (got, want) in enumerate(zip(results, reference))
        if json.dumps(got, sort_keys=True)
        != json.dumps(want.as_dict(), sort_keys=True)
    ]
    assert not mismatches, "diverged under chaos: %s" % mismatches

    fleet_stats = {name: value for name, value in sorted(stats.items())
                   if name.startswith("serve.fleet.")}
    fleet_stats["jobs"] = len(grid)
    assert stats["serve.jobs.completed"] == len(grid), stats
    assert fleet_stats["serve.fleet.respawns"] > 0, \
        "chaos drill killed no workers: %s" % fleet_stats
    assert fleet_stats["serve.fleet.requeues"] > 0, fleet_stats
    print("%d jobs, zero lost, byte-identical to serial reference"
          % len(grid))
    print(json.dumps(fleet_stats, indent=2, sort_keys=True))
    if stats_out:
        with open(stats_out, "w") as handle:
            json.dump(fleet_stats, handle, indent=2, sort_keys=True)


if __name__ == "__main__":
    main()
