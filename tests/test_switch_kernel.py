"""Jump-table (indirect branch) kernel: JR execution, BTB and BrTC paths."""

import random

import pytest

from repro.cpu import Machine
from repro.sim import System, SystemConfig
from repro.workloads import Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.patterns import (
    R_ACC,
    R_SEED,
    R_W0,
    R_W1,
    R_W2,
    emit_switch,
    init_switch_tables,
    patch_switch_fixups,
)

CASE_TABLE = 0x1000000
CASES = 4
ITERS = 200


@pytest.fixture(scope="module")
def switch_workload():
    rng = random.Random(11)
    memory = {}
    init_switch_tables(memory, rng, CASE_TABLE, ITERS, CASES)
    body = ProgramBuilder("switch")
    body.label("outer")
    fixups = emit_switch(body, CASE_TABLE, ITERS, cases=CASES, iters=ITERS)
    body.br("outer")
    body.halt()
    final = ProgramBuilder("switch")
    for reg, value in ((R_ACC, 0), (R_SEED, 1), (R_W0, 1), (R_W1, 2),
                       (R_W2, 3)):
        final.li(reg, value)
    final.append_builder(body)
    program = final.build()
    patch_switch_fixups(memory, program, fixups)
    return Workload("switch", program, memory)


def test_switch_executes_all_cases(switch_workload):
    machine = Machine(switch_workload.program, dict(switch_workload.memory))
    for _ in range(20_000):
        machine.step()
    assert machine.instret == 20_000


def test_jr_targets_resolve_to_case_labels(switch_workload):
    program = switch_workload.program
    machine = Machine(program, dict(switch_workload.memory))
    case_pcs = {
        program.pc_of(index)
        for name, index in program.labels.items()
        if name.startswith("case")
    }
    seen = set()
    for _ in range(10_000):
        instr, taken, _ = machine.step()
        if instr.op.name == "JR":
            seen.add(machine.pc)
    assert seen <= case_pcs
    assert len(seen) == CASES  # every case was dispatched


def test_btb_predicts_repeating_indirect_targets(switch_workload):
    system = System(switch_workload, SystemConfig())
    system.core.run(30_000)
    btb = system.btb
    assert btb.hits > 0
    # random 4-way dispatch: last-target prediction is often wrong, but
    # the machinery must neither crash nor stall forever
    assert system.core.ipc > 0.1


def test_bfetch_runs_on_indirect_heavy_code(switch_workload):
    base = System(switch_workload, SystemConfig())
    bf = System(switch_workload, SystemConfig(prefetcher="bfetch"))
    base.core.run(30_000)
    bf.core.run(30_000)
    # correctness + stability; indirect dispatch limits lookahead, so we
    # only require no pathological slowdown
    assert bf.core.ipc > 0.8 * base.core.ipc
    assert bf.prefetcher.walks > 0


def test_brtc_separates_targets_of_one_indirect_branch(switch_workload):
    """The target term in the BrTC hash disambiguates JR successors."""
    system = System(switch_workload, SystemConfig(prefetcher="bfetch"))
    system.core.run(30_000)
    brtc = system.prefetcher.brtc
    populated = sum(1 for tag in brtc.tags if tag is not None)
    # one JR with 4 targets + loop branches: several distinct entries
    assert populated >= CASES
