"""Batch timing kernel: byte-identity vs the scalar reference engines.

The acceptance bar (DESIGN.md "Batch timing kernel") is byte-identity:
every stats payload a batch lane produces must equal the scalar
reference's for the same scenario -- all nine prefetchers, both branch
predictors, single-core and CMP, cold and restored-from-checkpoint.
The scalar comparison target here is the fused replay path, itself
byte-identical to lockstep by the PR 6 guarantee.

Also hosts the regression tests for the two satellite bugfixes that
rode along with this PR: the nearest-rank percentile truncation in
``repro.serve.metrics.quantile`` and the permissive duration parser in
``repro.cli._duration_seconds``.
"""

import argparse

import pytest

from repro.batch import (
    BatchIneligible,
    BatchKernel,
    batch_counters,
    batch_mode,
    batchable,
    reset_batch_counters,
)
from repro.batch.cmp import batchable_mix, run_mix_batch
from repro.batch.feed import clear_feed_memo
from repro.batch.fuzz import run_fuzz
from repro.cli import _duration_seconds
from repro.serve.metrics import quantile
from repro.sim.cmp import CMPSystem
from repro.sim.config import PREFETCHER_NAMES, SystemConfig
from repro.sim.runner import ExperimentRunner, RunRequest
from repro.sim.system import System
from repro.trace.replay import TraceReplaySource
from repro.trace.store import TraceStore, clear_memos, reset_counters
from repro.workloads.spec import build_workload

STEPS = 2_500


@pytest.fixture(autouse=True)
def _fresh_batch_state(monkeypatch):
    """Isolate every test from process-local memos and env knobs."""
    clear_memos()
    clear_feed_memo()
    reset_counters()
    reset_batch_counters()
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_TRACE_REPLAY", raising=False)
    yield
    clear_memos()
    clear_feed_memo()
    reset_counters()
    reset_batch_counters()


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    """Module-shared trace store so each (workload, steps) records once."""
    return str(tmp_path_factory.mktemp("batch-traces"))


def _system(benchmark, prefetcher, steps, cache,
            predictor="tournament", variant=0):
    workload = build_workload(benchmark, variant)
    config = SystemConfig(prefetcher=prefetcher,
                          branch_predictor=predictor)
    trace = TraceStore(cache).get_or_record(workload, steps, variant)
    return System(workload, config,
                  replay=TraceReplaySource(workload, trace))


def _cmp(mix, prefetcher, predictor, steps, cache):
    workloads = [build_workload(name) for name in mix]
    store = TraceStore(cache)
    replays = [
        TraceReplaySource(workload, store.get_or_record(workload, steps, 0))
        for workload in workloads
    ]
    config = SystemConfig(prefetcher=prefetcher,
                          branch_predictor=predictor)
    return CMPSystem(workloads, config, replays=replays)


# ----------------------------------------------------------------------
# single-core byte-identity


@pytest.mark.parametrize("prefetcher", PREFETCHER_NAMES)
def test_single_lane_identity(prefetcher, cache):
    """One lane per kernel: every catalog prefetcher, byte-identical."""
    expected = _system("mcf", prefetcher, STEPS, cache).run(STEPS).as_dict()
    system = _system("mcf", prefetcher, STEPS, cache)
    kernel = BatchKernel()
    kernel.add_lane(system, STEPS)
    assert kernel.run() is True
    assert kernel.results()[0].as_dict() == expected


@pytest.mark.parametrize("prefetcher", ("none", "bfetch", "stems"))
def test_single_lane_identity_perceptron(prefetcher, cache):
    expected = _system("libquantum", prefetcher, STEPS, cache,
                       predictor="perceptron").run(STEPS).as_dict()
    system = _system("libquantum", prefetcher, STEPS, cache,
                     predictor="perceptron")
    kernel = BatchKernel()
    kernel.add_lane(system, STEPS)
    assert kernel.run() is True
    assert kernel.results()[0].as_dict() == expected


@pytest.mark.parametrize("lanes", (4, 16))
def test_heterogeneous_lanes_identity(lanes, cache):
    """Mixed benchmarks/prefetchers sharing one BatchState: a
    lane-indexing bug cannot hide behind homogeneous neighbours."""
    benches = ("mcf", "libquantum", "soplex", "astar")
    cells = [
        (benches[i % len(benches)],
         PREFETCHER_NAMES[i % len(PREFETCHER_NAMES)])
        for i in range(lanes)
    ]
    expected = [
        _system(bench, pf, STEPS, cache).run(STEPS).as_dict()
        for bench, pf in cells
    ]
    kernel = BatchKernel()
    for bench, pf in cells:
        kernel.add_lane(_system(bench, pf, STEPS, cache), STEPS)
    assert kernel.run() is True
    got = [result.as_dict() for result in kernel.results()]
    assert got == expected


# ----------------------------------------------------------------------
# CMP byte-identity


@pytest.mark.parametrize("prefetcher", ("none", "stride", "bfetch"))
def test_cmp_mix_identity(prefetcher, cache):
    mix = ["mcf", "libquantum"]
    steps = 3_000
    scalar = [r.as_dict() for r in
              _cmp(mix, prefetcher, "tournament", steps, cache).run(steps)]
    batch = [r.as_dict() for r in run_mix_batch(
        _cmp(mix, prefetcher, "tournament", steps, cache), steps)]
    assert batch == scalar


def test_cmp_delegation_resume(cache):
    """Pinned fuzzer find: the CMP delegation rewind bug.

    A core crossing its recorded window *mid-burst* must hand off to
    the scalar stepper at the cycle the burst reached, not the
    burst-entry cycle.  The original bug resumed at burst entry,
    re-simulating already-counted cycles; on this exact scenario it
    drifted ``fetch_cycles`` by one on the mcf core while every other
    key stayed equal -- the kind of divergence only the differential
    fuzzer catches.  See ``repro/batch/cmp.py`` ``_CoreLane.burst``.
    """
    mix = ["mcf", "libquantum", "soplex", "astar"]
    steps = 6_000
    scalar = [r.as_dict() for r in
              _cmp(mix, "nextn", "tournament", steps, cache).run(steps)]
    batch = [r.as_dict() for r in run_mix_batch(
        _cmp(mix, "nextn", "tournament", steps, cache), steps)]
    assert batch == scalar


# ----------------------------------------------------------------------
# checkpoint / restore mid-batch


def test_checkpoint_restore_mid_batch(cache):
    """Interrupt the kernel between slices, snapshot, restore into a
    fresh system, re-attach warm: the final payload is byte-identical
    to an uninterrupted scalar run."""
    steps = 3_000
    expected = _system("mcf", "stride", steps, cache).run(steps).as_dict()

    interrupted = _system("mcf", "stride", steps, cache)
    kernel = BatchKernel(slice_instructions=512)
    kernel.add_lane(interrupted, steps)
    assert kernel.run(max_slices=2) is False
    assert 0 < interrupted.core.retired < steps
    state = interrupted.snapshot()

    resumed = _system("mcf", "stride", steps, cache)
    resumed.restore(state)
    warm = BatchKernel()
    warm.add_lane(resumed, steps)
    assert warm.run() is True
    assert warm.results()[0].as_dict() == expected


# ----------------------------------------------------------------------
# eligibility


def test_batchable_requires_replay():
    workload = build_workload("mcf")
    system = System(workload, SystemConfig(prefetcher="none"))
    assert batchable(system, 1_000) == "no trace replay source"
    with pytest.raises(BatchIneligible):
        BatchKernel().add_lane(system, 1_000)


def test_batchable_rejects_overlong_budget(cache):
    system = _system("mcf", "none", STEPS, cache)
    assert "budget exceeds" in batchable(system, STEPS + 1)
    assert batchable(system, STEPS) is None


def test_add_lane_after_run_rejected(cache):
    kernel = BatchKernel()
    kernel.add_lane(_system("mcf", "none", STEPS, cache), STEPS)
    kernel.run()
    with pytest.raises(BatchIneligible, match="sealed"):
        kernel.add_lane(_system("mcf", "stride", STEPS, cache), STEPS)


def test_batchable_mix_rejects_missing_replay():
    workloads = [build_workload("mcf"), build_workload("libquantum")]
    cmp_system = CMPSystem(workloads, SystemConfig(prefetcher="none"))
    reason = batchable_mix(cmp_system)
    assert reason is not None and "core 0" in reason
    with pytest.raises(BatchIneligible):
        run_mix_batch(cmp_system, 1_000)


# ----------------------------------------------------------------------
# REPRO_BATCH routing through ExperimentRunner


def _requests(steps=STEPS):
    return [RunRequest(bench, prefetcher, steps)
            for bench in ("mcf", "libquantum")
            for prefetcher in ("none", "bfetch")]


@pytest.mark.parametrize("mode", ("auto", "on"))
def test_runner_batch_routing_identical(mode, tmp_path, monkeypatch):
    expected = [r.as_dict() for r in
                ExperimentRunner().run_many(_requests(), jobs=1)]
    reset_batch_counters()
    monkeypatch.setenv("REPRO_BATCH", mode)
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = [r.as_dict() for r in runner.run_many(_requests(), jobs=1)]
    assert got == expected
    assert batch_counters["lanes"] == len(_requests())
    assert batch_counters["fallback"] == 0


def test_runner_mix_batch_routing_identical(tmp_path, monkeypatch):
    mix = ["mcf", "libquantum"]
    expected = [r.as_dict() for r in
                ExperimentRunner().run_mix(mix, "bfetch", 3_000)]
    reset_batch_counters()
    monkeypatch.setenv("REPRO_BATCH", "auto")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = [r.as_dict() for r in runner.run_mix(mix, "bfetch", 3_000)]
    assert got == expected
    assert batch_counters["cmp"] == 1


def test_runner_auto_falls_back_when_gated(tmp_path, monkeypatch):
    """Checkpointing is a batch gate: auto silently takes the scalar
    path and still produces the baseline payloads."""
    expected = [r.as_dict() for r in
                ExperimentRunner().run_many(_requests(), jobs=1)]
    monkeypatch.setenv("REPRO_BATCH", "auto")
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
    runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
    got = [r.as_dict() for r in runner.run_many(_requests(), jobs=1)]
    assert got == expected
    assert batch_counters["lanes"] == 0


def test_runner_on_mode_raises_when_gated(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BATCH", "on")
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path / "ckpt"))
    runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
    with pytest.raises(BatchIneligible):
        runner.run_many(_requests(), jobs=1)


def test_runner_rejects_malformed_batch_mode(monkeypatch):
    """The knob fails fast at runner construction (like replay's)."""
    monkeypatch.setenv("REPRO_BATCH", "bogus")
    with pytest.raises(ValueError, match="off/auto/on"):
        ExperimentRunner()


def test_batch_mode_parsing(monkeypatch):
    for raw, want in (("", "off"), ("off", "off"), ("0", "off"),
                      ("auto", "auto"), ("on", "on"), ("ON", "on")):
        monkeypatch.setenv("REPRO_BATCH", raw)
        assert batch_mode() == want
    monkeypatch.delenv("REPRO_BATCH")
    assert batch_mode() == "off"
    monkeypatch.setenv("REPRO_BATCH", "yes")
    with pytest.raises(ValueError, match="off/auto/on"):
        batch_mode()


# ----------------------------------------------------------------------
# differential fuzzer


def test_fuzz_smoke(cache):
    """A short seeded fuzz run (including a CMP mix round) is clean."""
    assert run_fuzz(seed=5, rounds=3, mix_every=3, cache_dir=cache) == []


# ----------------------------------------------------------------------
# satellite regression: serve.metrics quantile interpolation


def test_quantile_worked_example():
    values = [10, 20, 30, 40]
    assert quantile(values, 0.00) == 10.0
    assert quantile(values, 0.50) == 25.0
    assert quantile(values, 0.95) == pytest.approx(38.5)
    assert quantile(values, 0.99) == pytest.approx(39.7)
    assert quantile(values, 1.00) == 40.0


def test_quantile_small_window_p99_not_pinned_to_max():
    """The old nearest-rank-by-truncation rule reported the window max
    as p99 for every window under 100 samples."""
    for n in (2, 10, 50, 99):
        values = list(range(1, n + 1))
        p99 = quantile(values, 0.99)
        assert p99 < max(values)
        assert p99 > quantile(values, 0.95)
    # at n >= 101 the two estimators converge near the top anyway
    assert quantile(list(range(1, 102)), 0.99) == pytest.approx(100.0)


def test_quantile_edge_cases():
    assert quantile([], 0.5) == 0.0
    assert quantile([7.5], 0.99) == 7.5
    # q clamped into [0, 1]
    assert quantile([1, 2, 3], -0.5) == 1.0
    assert quantile([1, 2, 3], 2.0) == 3.0
    # order-independent
    assert quantile([3, 1, 2], 0.5) == 2.0


# ----------------------------------------------------------------------
# satellite regression: CLI duration parsing


@pytest.mark.parametrize("text,want", [
    ("90", 90.0),
    ("10s", 10.0),
    ("45m", 2_700.0),
    ("12h", 43_200.0),
    ("30d", 2_592_000.0),
    ("2w", 1_209_600.0),
    ("1.5h", 5_400.0),
])
def test_duration_accepts(text, want):
    assert _duration_seconds(text) == want


@pytest.mark.parametrize("text", [
    "", "abc", "5 m", "1h30m", "-5m", "0", "0s", "-0.0",
    "nan", "inf", "-inf", "infs", "nand", "1_0", ".", "m",
])
def test_duration_rejects(text):
    with pytest.raises(argparse.ArgumentTypeError, match="positive"):
        _duration_seconds(text)


def test_duration_error_names_units():
    with pytest.raises(argparse.ArgumentTypeError, match="s/m/h/d/w"):
        _duration_seconds("5 parsecs")
