"""Synthetic workloads: construction, determinism, kernel semantics."""

import random

import pytest

from repro.cpu import Machine
from repro.isa import extract_basic_blocks
from repro.workloads import BENCHMARKS, PREFETCH_SENSITIVE, build_workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.patterns import (
    PERSISTENT_REGS,
    emit_stream,
    init_pointer_chain,
    init_predicates,
)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_all_benchmarks_build_and_validate(name):
    workload = build_workload(name)
    assert workload.program.validate()
    assert len(workload.program) > 20


@pytest.mark.parametrize("name", BENCHMARKS)
def test_all_benchmarks_run_functionally(name):
    workload = build_workload(name)
    machine = Machine(workload.program, dict(workload.memory))
    for _ in range(30_000):
        machine.step()
    assert machine.instret == 30_000


def test_benchmark_roster():
    # 18 SPEC stand-ins plus the three server-class front-end profiles
    assert len(BENCHMARKS) == 21
    servers = [name for name in BENCHMARKS
               if build_workload(name).profile.klass == "server"]
    assert servers == ["nginx", "postgres", "verilator"]


def test_prefetch_sensitive_subset():
    assert set(PREFETCH_SENSITIVE) < set(BENCHMARKS)
    assert len(PREFETCH_SENSITIVE) == 14


def test_determinism_across_builds():
    import repro.workloads.spec as spec
    spec._CACHE.pop(("mcf", 0), None)
    a = build_workload("mcf")
    spec._CACHE.pop(("mcf", 0), None)
    b = build_workload("mcf")
    assert [repr(i) for i in a.program.instrs] == \
        [repr(i) for i in b.program.instrs]
    assert a.memory == b.memory


def test_workloads_are_memoised():
    assert build_workload("lbm") is build_workload("lbm")


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        build_workload("doom")


def test_programs_form_infinite_loops():
    """The outer loop must allow arbitrarily long runs (no halting)."""
    workload = build_workload("gamess")
    machine = Machine(workload.program, dict(workload.memory))
    for _ in range(50_000):
        machine.step()
    assert machine.restarts == 0


def test_pointer_chain_is_a_single_cycle():
    mem = {}
    rng = random.Random(9)
    head = init_pointer_chain(mem, rng, base=0x1000, nodes=64, spread=2)
    seen = set()
    node = head
    for _ in range(64):
        assert node not in seen
        seen.add(node)
        node = mem[node]
    assert node == head
    assert len(seen) == 64


def test_pointer_chain_spread_spaces_nodes():
    mem = {}
    head = init_pointer_chain(mem, random.Random(1), 0x1000, nodes=16,
                              node_bytes=64, spread=4)
    addrs = sorted(a for a in mem if a % 64 == 16 * 0 or True)
    node_addrs = sorted({a & ~63 for a in mem})
    deltas = {b - a for a, b in zip(node_addrs, node_addrs[1:])}
    assert deltas == {256}


def test_predicate_bias():
    mem = {}
    init_predicates(mem, random.Random(7), 0x0, 4000, bias=0.9)
    ones = sum(mem.values())
    assert 0.85 < ones / 4000 < 0.95


def test_persistent_stream_requires_registration():
    builder = ProgramBuilder("x")
    with pytest.raises(ValueError):
        emit_stream(builder, 0x1000, 10, pos_reg=PERSISTENT_REGS[0])


def test_persistent_stream_advances_across_laps():
    builder = ProgramBuilder("x")
    pro = []
    builder.label("outer")
    emit_stream(builder, 0x100000, elems=10, stride=64,
                pos_reg=PERSISTENT_REGS[0], size=1 << 20, prologue=pro)
    builder.br("outer")
    builder.halt()
    final = ProgramBuilder("x2")
    for reg, value in pro:
        final.li(reg, value)
    final.append_builder(builder)
    machine = Machine(final.build())
    # two laps of 10 elements each
    for _ in range(2 * (10 * 5 + 1) + 4 * 2):
        machine.step()
    assert machine.regs[PERSISTENT_REGS[0]] >= 0x100000 + 20 * 64


def test_region_spacing_avoids_aliasing():
    from repro.workloads.spec import _bases
    bases = _bases(5)
    assert len(set(b % (1 << 20) for b in bases)) == 5


def test_builder_rejects_duplicate_labels():
    builder = ProgramBuilder("x")
    builder.label("a")
    with pytest.raises(ValueError):
        builder.label("a")


def test_append_builder_offsets_labels():
    a = ProgramBuilder("a")
    a.nop()
    b = ProgramBuilder("b")
    b.label("loop")
    b.subi(1, 1, 1)
    b.bnez(1, "loop")
    b.halt()
    a.append_builder(b)
    program = a.build()
    assert program.labels["loop"] == 1
    assert program[2].target == 1


def test_workload_classes_cover_paper_taxonomy():
    from repro.workloads.spec import PROFILES
    classes = {p.klass for p in PROFILES.values()}
    assert classes == {"compute", "streaming", "spatial", "irregular",
                       "server"}


def test_cfg_extraction_on_generated_programs():
    workload = build_workload("astar")
    blocks = extract_basic_blocks(workload.program)
    assert len(blocks) > 5
    boundaries = {b.start for b in blocks}
    assert 0 in boundaries
