"""Evaluation metrics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import geomean, normalize, weighted_speedup
from repro.sim.metrics import speedup_table


def test_geomean_simple():
    assert geomean([2, 8]) == pytest.approx(4.0)
    assert geomean([1, 1, 1]) == pytest.approx(1.0)


def test_geomean_rejects_empty_and_nonpositive():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_geomean_between_min_and_max(values):
    g = geomean(values)
    assert min(values) - 1e-9 <= g <= max(values) + 1e-9


@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=10),
       st.floats(0.1, 10.0))
@settings(max_examples=50, deadline=None)
def test_geomean_scale_invariance(values, k):
    assert geomean([v * k for v in values]) == pytest.approx(
        geomean(values) * k, rel=1e-6
    )


def test_weighted_speedup():
    assert weighted_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)


def test_weighted_speedup_length_mismatch():
    with pytest.raises(ValueError):
        weighted_speedup([1.0], [1.0, 2.0])


def test_normalize():
    assert normalize(3.0, 2.0) == 1.5
    with pytest.raises(ValueError):
        normalize(1.0, 0.0)


def test_speedup_table_renders_missing_as_dash():
    text = speedup_table([("bench", {"a": 1.5})], ["a", "b"])
    assert "1.500" in text and "-" in text
    assert "bench" in text
