"""Additional sim-layer behaviours: mix fallback, CMP determinism under
policies, config descriptions, reporting round-trips."""

import pytest

from repro.sim import CMPSystem, SystemConfig, geomean
from repro.sim.config import make_prefetcher
from repro.workloads import build_workload, select_mixes


def test_select_mixes_relaxes_cap_when_too_tight():
    # 4 names, mixes of 2 -> only 6 candidates; cap of 1 appearance can
    # satisfy at most 2 mixes, so the fallback pass must fill the rest
    foa = {"a": 4.0, "b": 3.0, "c": 2.0, "d": 1.0}
    mixes = select_mixes(foa, size=2, count=5, max_appearances=1)
    assert len(mixes) == 5
    assert len(set(mixes)) == 5


def test_select_mixes_exhausts_candidates_gracefully():
    foa = {"a": 1.0, "b": 2.0}
    mixes = select_mixes(foa, size=2, count=10)
    assert mixes == [("a", "b")]


def test_cmp_with_llc_policy():
    from repro.memory.hierarchy import HierarchyConfig
    config = SystemConfig(hierarchy=HierarchyConfig(llc_policy="pacman"))
    cmp_system = CMPSystem([build_workload("gamess")] * 2, config)
    results = cmp_system.run(5_000)
    assert all(r.ipc > 0 for r in results)
    assert cmp_system.llc.policy is not None


def test_config_key_distinguishes_new_knobs():
    base = SystemConfig().key()
    assert SystemConfig(branch_predictor="perceptron").key() != base
    from repro.core import BFetchConfig
    assert SystemConfig(
        bfetch=BFetchConfig(instruction_prefetch=True)
    ).key() != base
    from repro.memory.hierarchy import HierarchyConfig
    assert SystemConfig(
        hierarchy=HierarchyConfig(llc_policy="srrip")
    ).key() != base


def test_every_prefetcher_runs_end_to_end_briefly():
    from repro.sim import System
    from repro.sim.config import PREFETCHER_NAMES
    workload = build_workload("soplex")
    ipcs = {}
    for name in PREFETCHER_NAMES:
        system = System(workload, SystemConfig(prefetcher=name))
        ipcs[name] = system.run(8_000).ipc
    assert all(value > 0 for value in ipcs.values())
    assert ipcs["perfect"] >= max(
        v for k, v in ipcs.items() if k != "perfect"
    ) * 0.9


def test_geomean_of_single_value():
    assert geomean([3.7]) == pytest.approx(3.7)


def test_make_prefetcher_instances_are_fresh():
    config = SystemConfig(prefetcher="sms")
    assert make_prefetcher(config) is not make_prefetcher(config)