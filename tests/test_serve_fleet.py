"""Fleet-tier chaos tests: worker loss, deadlines, circuit breaking.

The acceptance bar mirrors the repo's standing rule -- recovery must be
*byte-identical*, not merely "successful":

* sustained ``worker-kill`` chaos across a 3-worker fleet completes a
  mixed single/sweep batch with zero lost jobs, every result equal to
  the serial :meth:`ExperimentRunner.run_batch` reference (requeued
  jobs resume from the cache checkpoint and converge);
* a worker frozen by ``worker-hang`` stops heartbeating, is declared
  dead by the missed-beat detector, and its job is requeued and
  completed by a respawned worker;
* expired deadlines shed jobs pre-execution with a typed
  ``deadline-exceeded`` error (never executed, never retried);
* the per-benchmark circuit breaker walks closed -> open -> half-open
  -> closed, rejects with busy-class ``circuit-open`` while open, and
  leaves other benchmarks untouched;
* graceful drain completes even with a worker SIGKILLed mid-session.

Plus socket-free unit coverage for the new fault verbs, the heartbeat
detector, the breaker state machine, lazy queue shedding and the
client's bounded busy-class retry.
"""

import asyncio
import json
import os
import signal
import time

import pytest

from repro.resilience.faults import (
    DEFAULT_SLOW_MS,
    FaultPlan,
    parse_faults,
)
from repro.serve import (
    AdmissionQueue,
    BreakerBoard,
    CircuitBreaker,
    JobTable,
    ServeClient,
    ServeError,
    WorkerHealth,
)
from repro.serve.server import ServerThread
from repro.sim import ExperimentRunner, RunRequest

BUDGET = 2000
#: budget for jobs that must still be running when we poke at them
SLOW_BUDGET = 250_000


def _client(thread, timeout=120):
    host, port = thread.address
    return ServeClient(host, port, timeout=timeout)


# ----------------------------------------------------------------------
# acceptance: byte-identical convergence under sustained worker-kill


class TestFleetChaos(object):
    def test_worker_kill_chaos_converges_byte_identical(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker-kill:0.5:seed=11")
        benchmarks = ["libquantum", "mcf"]
        sweep_prefetchers = ["none", "stride", "bfetch"]
        singles = [(bench, "stride", variant)
                   for bench in benchmarks for variant in range(3)]

        with ServerThread(cache_dir=str(tmp_path / "fleet-cache"),
                          workers=3, beat_interval=0.25,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                tickets = [client.submit(bench, prefetcher,
                                         instructions=BUDGET,
                                         variant=variant)
                           for bench, prefetcher, variant in singles]
                sweep = client.submit_sweep(benchmarks, sweep_prefetchers,
                                            instructions=BUDGET)
                got_singles = []
                for ticket in tickets:
                    reply = client.result(ticket["job_id"], wait=True)
                    assert reply["state"] == "done"
                    got_singles.append(reply["result"][0])
                sweep_reply = client.result(sweep["job_id"], wait=True)
                assert sweep_reply["state"] == "done"
                stats = client.statz()

        # the chaos must actually have killed workers...
        assert stats["serve.fleet.respawns"] >= 1
        assert stats["serve.fleet.requeues"] >= 1
        assert stats["serve.jobs.completed"] == len(singles) + 1
        # ...and every completed job must equal the serial reference
        # (worker-* verbs never fire outside fleet worker processes)
        serial = ExperimentRunner(cache_dir=str(tmp_path / "ref-cache"))
        ref_singles, _ = serial.run_batch(
            [RunRequest(bench, prefetcher, BUDGET, None, variant)
             for bench, prefetcher, variant in singles]
        )
        for got, want in zip(got_singles, ref_singles):
            assert json.dumps(got, sort_keys=True) \
                == json.dumps(want.as_dict(), sort_keys=True)
        ref_sweep, _ = serial.run_batch(
            [RunRequest(bench, prefetcher, BUDGET)
             for bench in benchmarks for prefetcher in sweep_prefetchers]
        )
        assert json.dumps(sweep_reply["result"], sort_keys=True) \
            == json.dumps([r.as_dict() for r in ref_sweep],
                          sort_keys=True)

    def test_heartbeat_declared_dead_requeues_and_completes(
            self, tmp_path, monkeypatch):
        # every first assignment freezes the worker (beats suspended);
        # the missed-beat detector must declare it dead, requeue, and
        # the respawned worker (attempt 1: hang verbs are first-attempt
        # only) completes the job
        monkeypatch.setenv("REPRO_FAULTS", "worker-hang:1.0")
        with ServerThread(cache_dir=str(tmp_path / "cache"), workers=1,
                          beat_interval=0.1, max_missed=3,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                ticket = client.submit("libquantum", "none",
                                       instructions=BUDGET)
                reply = client.result(ticket["job_id"], wait=True)
                assert reply["state"] == "done"
                stats = client.statz()
        assert stats["serve.fleet.requeues"] >= 1
        assert stats["serve.fleet.respawns"] >= 1

    def test_worker_slow_straggler_still_completes(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker-slow:1.0:ms=30")
        with ServerThread(cache_dir=str(tmp_path / "cache"), workers=2,
                          beat_interval=0.2,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                ticket = client.submit("mcf", "none", instructions=BUDGET)
                reply = client.result(ticket["job_id"], wait=True)
                assert reply["state"] == "done"
                stats = client.statz()
        # a slow worker is not a dead worker: no losses, no respawns
        assert stats["serve.fleet.requeues"] == 0
        assert stats["serve.fleet.respawns"] == 0

    def test_drain_completes_with_a_sigkilled_worker(self, tmp_path):
        thread = ServerThread(cache_dir=str(tmp_path / "cache"),
                              workers=2, beat_interval=0.2,
                              heartbeat_interval=0)
        thread.start()
        try:
            with _client(thread) as client:
                fleet = client.fleet()
                assert fleet["mode"] == "fleet"
                assert len(fleet["workers"]) == 2
                # murder worker 0 out-of-band (a real host loss, not an
                # injected fault)
                os.kill(fleet["workers"][0]["pid"], signal.SIGKILL)
                # the fleet still serves: the survivor (or the respawn)
                # picks the job up
                ticket = client.submit("libquantum", "none",
                                       instructions=BUDGET)
                reply = client.result(ticket["job_id"], wait=True)
                assert reply["state"] == "done"
        finally:
            # graceful drain must terminate despite the dead worker
            thread.stop(timeout=60)


# ----------------------------------------------------------------------
# deadlines: propagation + shedding


class TestDeadlines(object):
    def test_expired_queued_job_is_shed_with_typed_error(self, tmp_path):
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          max_concurrent=1,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                # occupy the only slot so the deadlined job waits longer
                # than its budget allows
                client.submit("libquantum", "none",
                              instructions=SLOW_BUDGET)
                ticket = client.submit("mcf", "none",
                                       instructions=SLOW_BUDGET,
                                       deadline_ms=50)
                with pytest.raises(ServeError) as info:
                    client.result(ticket["job_id"], wait=True)
                assert info.value.code == "deadline-exceeded"
                stats = client.statz()
        assert stats["serve.fleet.sheds"] == 1

    def test_deadline_ms_is_validated(self, tmp_path):
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                with pytest.raises(ServeError) as info:
                    client.submit("mcf", "none", instructions=BUDGET,
                                  deadline_ms=0)
                assert info.value.code == "bad-request"

    def test_deadlined_submission_does_not_coalesce_with_plain(
            self, tmp_path):
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          max_concurrent=1,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                client.submit("libquantum", "none",
                              instructions=SLOW_BUDGET)
                plain = client.submit("mcf", "none",
                                      instructions=SLOW_BUDGET)
                deadlined = client.submit("mcf", "none",
                                          instructions=SLOW_BUDGET,
                                          deadline_ms=60_000)
                assert deadlined["job_id"] != plain["job_id"]
                assert not deadlined.get("coalesced")

    def test_lazy_queue_shed_unit(self):
        async def body():
            table = JobTable()
            shed = []
            queue = AdmissionQueue(high_water=8, on_shed=shed.append)
            expired = table.new_job("k-expired", "single", {"policy": {}},
                                    [None], priority=5, deadline_ms=1)
            live = table.new_job("k-live", "single", {"policy": {}},
                                 [None])
            queue.push(expired)
            queue.push(live)
            await asyncio.sleep(0.01)  # let the 1ms deadline lapse
            popped = await queue.pop()
            return popped, shed

        popped, shed = asyncio.run(body())
        assert popped.id == "j000002"
        assert [job.id for job in shed] == ["j000001"]


# ----------------------------------------------------------------------
# circuit breaker: end-to-end lifecycle + unit state machine


class TestCircuitBreakerServer(object):
    def test_open_half_open_close_lifecycle(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:1.0")
        board = BreakerBoard(window=4, min_events=2,
                             failure_threshold=0.5, cooldown=0.3)
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          heartbeat_interval=0, breaker=board) as thread:
            with _client(thread) as client:
                for variant in range(2):
                    ticket = client.submit("libquantum", "none",
                                           instructions=BUDGET,
                                           variant=variant, retries=0)
                    with pytest.raises(ServeError):
                        client.result(ticket["job_id"], wait=True)
                assert board.state("libquantum") == "open"
                # open: busy-class rejection, no job admitted
                with pytest.raises(ServeError) as info:
                    client.submit("libquantum", "none",
                                  instructions=BUDGET, variant=9)
                assert info.value.code == "circuit-open"
                # an unrelated benchmark is unaffected (its own breaker)
                other = client.submit("mcf", "none", instructions=BUDGET,
                                      retries=0)
                with pytest.raises(ServeError):
                    client.result(other["job_id"], wait=True)
                assert board.state("mcf") == "closed"
                # heal the workload, wait out the cooldown: the next
                # submission is the half-open probe and closes the loop
                monkeypatch.delenv("REPRO_FAULTS")
                time.sleep(0.35)
                probe = client.submit("libquantum", "none",
                                      instructions=BUDGET, variant=3,
                                      retries=0)
                reply = client.result(probe["job_id"], wait=True)
                assert reply["state"] == "done"
                assert board.state("libquantum") == "closed"
                stats = client.statz()
        assert stats["serve.fleet.breaker.opened"] == 1
        assert stats["serve.fleet.breaker.half_open"] == 1
        assert stats["serve.fleet.breaker.closed"] == 1
        assert stats["serve.jobs.rejected_circuit"] == 1

    def test_unit_state_machine(self):
        clock = [0.0]
        breaker = CircuitBreaker(window=4, min_events=3,
                                 failure_threshold=0.5, cooldown=10.0,
                                 clock=lambda: clock[0])
        # below min_events nothing can open it
        assert breaker.record(False) is None
        assert breaker.record(False) is None
        assert breaker.state == "closed"
        assert breaker.record(False) == ("closed", "open")
        allowed, transition = breaker.allow()
        assert not allowed and transition is None
        # cooldown expiry dispatches exactly one probe
        clock[0] = 10.0
        allowed, transition = breaker.allow()
        assert allowed and transition == ("open", "half-open")
        allowed, _ = breaker.allow()
        assert not allowed  # second caller blocked while probe in flight
        # failed probe re-opens; successful probe closes and clears
        assert breaker.record(False) == ("half-open", "open")
        clock[0] = 20.0
        assert breaker.allow()[0]
        assert breaker.record(True) == ("half-open", "closed")
        assert breaker.failure_rate == 0.0
        # window slides: old failures age out of the estimate
        for _ in range(4):
            breaker.record(True)
        assert breaker.record(False) is None
        assert breaker.failure_rate == pytest.approx(0.25)

    def test_board_routes_transitions(self):
        seen = []
        board = BreakerBoard(window=2, min_events=1, failure_threshold=1.0,
                             cooldown=5.0,
                             on_transition=lambda *args: seen.append(args))
        board.record("mcf", False)
        assert board.state("mcf") == "open"
        assert board.state("astar") == "closed"
        assert seen == [("mcf", "closed", "open")]


# ----------------------------------------------------------------------
# unit coverage: fault verbs, heartbeat detector, client retry


class TestFleetFaultVerbs(object):
    def test_grammar_accepts_worker_verbs_and_ms(self):
        specs = parse_faults(
            "worker-kill:0.3,worker-hang:0.1:seed=7,worker-slow:1.0:ms=25"
        )
        assert specs["worker-kill"].prob == 0.3
        assert specs["worker-hang"].seed == 7
        assert specs["worker-slow"].ms == 25.0

    def test_grammar_rejects_bad_ms(self):
        with pytest.raises(ValueError):
            parse_faults("worker-slow:1.0:ms=-5")

    def test_lethal_verbs_fire_first_attempt_only(self):
        plan = FaultPlan(parse_faults("worker-kill:1.0,worker-hang:1.0"))
        assert plan.should_worker_kill("job|start", attempt=0)
        assert not plan.should_worker_kill("job|start", attempt=1)
        assert plan.should_worker_hang("job|start", attempt=0)
        assert not plan.should_worker_hang("job|start", attempt=3)

    def test_worker_slow_fires_every_attempt_with_default(self):
        plan = FaultPlan(parse_faults("worker-slow:1.0"))
        assert plan.worker_slow_seconds("job|t1") \
            == pytest.approx(DEFAULT_SLOW_MS / 1000.0)
        plan = FaultPlan(parse_faults("worker-slow:0.0"))
        assert plan.worker_slow_seconds("job|t1") == 0.0

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(parse_faults("worker-kill:0.5:seed=3"))
        keys = ["job-%d|t%d" % (j, t) for j in range(8) for t in range(3)]
        first = [plan.should_worker_kill(key) for key in keys]
        second = [plan.should_worker_kill(key) for key in keys]
        assert first == second
        assert any(first) and not all(first)


class TestWorkerHealthUnit(object):
    def test_missed_and_dead(self):
        clock = [0.0]
        health = WorkerHealth(beat_interval=1.0, max_missed=3,
                              clock=lambda: clock[0])
        assert health.missed() == 0 and not health.dead()
        clock[0] = 2.5
        assert health.missed() == 2 and not health.dead()
        clock[0] = 3.0
        assert health.dead()
        health.beat()
        assert health.missed() == 0 and not health.dead()
        assert health.beats == 1

    def test_reset_restarts_grace_window(self):
        clock = [0.0]
        health = WorkerHealth(beat_interval=0.5, max_missed=2,
                              clock=lambda: clock[0])
        clock[0] = 5.0
        assert health.dead()
        health.reset()
        assert not health.dead()


class TestClientBusyRetry(object):
    def _scripted_client(self, codes, busy_retries):
        client = ServeClient("127.0.0.1", 1, busy_retries=busy_retries)
        calls = []

        def fake_request(message, wait=False):
            calls.append(dict(message))
            if codes:
                code = codes.pop(0)
                raise ServeError(code, code)
            return {"type": "submitted", "job_id": "j1"}

        client._request = fake_request
        return client, calls

    def test_busy_class_rejections_retry_then_succeed(self):
        client, calls = self._scripted_client(
            ["busy", "circuit-open"], busy_retries=2
        )
        ticket = client.submit("mcf", "none", instructions=BUDGET)
        assert ticket["job_id"] == "j1"
        assert len(calls) == 3
        assert all(call == calls[0] for call in calls)  # same payload

    def test_budget_exhaustion_raises_last_busy_error(self):
        client, calls = self._scripted_client(
            ["busy", "busy", "busy"], busy_retries=2
        )
        with pytest.raises(ServeError) as info:
            client.submit("mcf", "none", instructions=BUDGET)
        assert info.value.code == "busy"
        assert len(calls) == 3

    def test_deadline_exceeded_is_a_hard_stop(self):
        client, calls = self._scripted_client(
            ["deadline-exceeded"], busy_retries=5
        )
        with pytest.raises(ServeError) as info:
            client.submit("mcf", "none", instructions=BUDGET,
                          deadline_ms=100)
        assert info.value.code == "deadline-exceeded"
        assert len(calls) == 1

    def test_zero_budget_preserves_fail_fast(self):
        client, calls = self._scripted_client(["busy"], busy_retries=0)
        with pytest.raises(ServeError):
            client.submit("mcf", "none", instructions=BUDGET)
        assert len(calls) == 1


# ----------------------------------------------------------------------
# breaker board under concurrent verdict recording


class TestBreakerBoardConcurrency(object):
    def test_concurrent_verdicts_never_tear_the_window(self):
        """Hammer one board from many threads; invariants must hold.

        The board is the only breaker surface shared across threads
        (bench harnesses and cluster-side recorders fold verdicts off
        the loop thread), so concurrent ``record``/``allow`` must not
        tear a window past its bound, double-create a breaker, or emit
        an impossible transition.
        """
        import threading

        transitions = []
        t_lock = threading.Lock()

        def on_transition(benchmark, old, new):
            with t_lock:
                transitions.append((benchmark, old, new))

        board = BreakerBoard(window=16, min_events=4,
                             failure_threshold=0.5, cooldown=3600.0,
                             on_transition=on_transition)
        benchmarks = ["mcf", "libquantum", "sjeng", "astar"]
        per_thread = 200
        errors = []
        barrier = threading.Barrier(8)

        def hammer(seed):
            try:
                barrier.wait()
                for i in range(per_thread):
                    name = benchmarks[(seed + i) % len(benchmarks)]
                    board.allow(name)
                    # mcf fails always; the others always succeed
                    board.record(name, name != "mcf")
            except Exception as exc:          # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        snap = board.snapshot()
        # one breaker per benchmark: lazy creation raced 8 threads but
        # must still have produced exactly one instance each
        assert sorted(snap) == sorted(benchmarks)
        for benchmark, view in snap.items():
            assert view["state"] in ("closed", "open", "half-open")
            assert view["events"] <= 16        # window bound held
        # the always-failing benchmark opened; the healthy ones did not
        assert board.state("mcf") == "open"
        for healthy in ("libquantum", "sjeng", "astar"):
            assert board.state(healthy) == "closed"
        # exactly one closed->open transition for mcf, none for others
        opened = [t for t in transitions if t[1:] == ("closed", "open")]
        assert opened == [("mcf", "closed", "open")]

    def test_concurrent_open_admits_exactly_one_probe(self):
        """After cooldown, racing ``allow`` calls release one probe."""
        import threading

        clock = [0.0]
        board = BreakerBoard(window=8, min_events=2,
                             failure_threshold=0.5, cooldown=1.0,
                             clock=lambda: clock[0])
        for _ in range(4):
            board.record("mcf", False)
        assert board.state("mcf") == "open"

        clock[0] = 2.0                        # past cooldown
        admitted = []
        a_lock = threading.Lock()
        barrier = threading.Barrier(8)

        def probe():
            barrier.wait()
            if board.allow("mcf"):
                with a_lock:
                    admitted.append(1)

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # one open->half-open probe; the other seven were rejected
        assert len(admitted) == 1
        assert board.state("mcf") == "half-open"


# ----------------------------------------------------------------------
# supervisor respawn backoff: the cap must hold under exhaustion


class TestRespawnBackoffCap(object):
    def test_backoff_delay_is_capped_after_exhaustion(self):
        """A slot that keeps dying respawns forever at the capped delay.

        ``WorkerSupervisor._respawn`` feeds ``min(respawns, 6)`` into
        the deterministic backoff, so a worker that has died 50 times
        waits exactly as long as one that died 6 times -- bounded,
        never overflowing, and the slot is never abandoned.
        """
        from repro.serve.fleet import (
            RESPAWN_POLICY,
            WorkerSupervisor,
        )
        from repro.resilience import backoff_delay

        class _Slot(object):
            def __init__(self):
                self.id = 0
                self.respawns = 0
                self.spawned = 0
                self.state = "dead"
                self.alive = False

            async def reap(self):
                pass

            async def spawn(self):
                self.spawned += 1
                self.state = "idle"

        supervisor = WorkerSupervisor.__new__(WorkerSupervisor)
        supervisor.respawn_policy = RESPAWN_POLICY
        supervisor.metrics = None

        slept = []

        async def scenario():
            real_sleep = asyncio.sleep

            async def fake_sleep(delay):
                slept.append(delay)
                await real_sleep(0)

            asyncio.sleep = fake_sleep
            try:
                slot = _Slot()
                # drive the slot far past the cap exponent
                for respawns in (0, 1, 6, 7, 20, 50):
                    slot.respawns = respawns
                    await supervisor._respawn(slot)
                return slot
            finally:
                asyncio.sleep = real_sleep

        slot = asyncio.run(scenario())

        # every round respawned the slot (never abandoned) and counted
        assert slot.spawned == 6
        assert slot.respawns == 51

        capped = backoff_delay(RESPAWN_POLICY, "worker-0", 6)
        expected = [backoff_delay(RESPAWN_POLICY, "worker-0", n)
                    for n in (0, 1, 6)] + [capped] * 3
        observed = [d for d in slept if d > 0]
        assert observed == [d for d in expected if d > 0]
        # the capped tail is flat: exhaustion does not grow the wait
        assert all(d <= RESPAWN_POLICY.backoff_max * 1.5 + 1e-9
                   for d in observed)

    def test_respawn_failure_marks_slot_dead_but_not_abandoned(self):
        """A spawn that raises leaves the slot dead for the next pass."""
        from repro.serve.fleet import WorkerSupervisor
        from repro.serve.supervisor import WorkerLost
        from repro.resilience import FailurePolicy

        class _Slot(object):
            id = 3
            respawns = 0
            state = "dead"
            alive = False

            async def reap(self):
                pass

            async def spawn(self):
                raise WorkerLost("spawn refused")

        supervisor = WorkerSupervisor.__new__(WorkerSupervisor)
        supervisor.respawn_policy = FailurePolicy(
            retries=0, backoff_base=0.0, backoff_factor=1.0,
            backoff_max=0.0, jitter=0.0, seed=0,
        )
        supervisor.metrics = None
        slot = _Slot()
        asyncio.run(supervisor._respawn(slot))
        assert slot.state == "dead"
        assert slot.respawns == 1     # the attempt still counted
