"""Decoupled front end: FTQ, predecode, I-prefetchers, byte-identity.

The headline guarantee of the front-end subsystem is the *off-mode
byte-identity* contract: with ``frontend="off"`` (the default) every
``RunResult`` payload is byte-for-byte identical to the tree before the
subsystem existed.  The golden digests pinned below were computed on
that pre-front-end tree and must never change; everything new hides
behind ``frontend="ftq"``.
"""

import hashlib
import json

import pytest

from repro.branch import BranchTargetBuffer
from repro.frontend import (
    FRONTEND_MODES,
    IPREFETCHER_NAMES,
    FetchTargetQueue,
    FrontendConfig,
    Predecoder,
    make_iprefetcher,
)
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.config import PREFETCHER_NAMES, SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System
from repro.workloads import build_workload
from repro.workloads.builder import ProgramBuilder


# ----------------------------------------------------------------------
# off-mode byte-identity (golden digests from the pre-front-end tree)

GOLDEN_SINGLE = \
    "01917baa960ddfab5b9ea995da3125b9fed155ea6a08d9a2036f2dfe325aff16"
GOLDEN_MIX = \
    "73f6a5c1f70208d3eeda5281b4afbb8a2c1bacf5a6a6972386a39613e25dfb1a"
GOLDEN_ALL_PREFETCHERS = \
    "ece484816c1690281dec5f4f8d6d3ac67cfe3a9cc388f590991f7abfb3521a7e"


def _digest(payload):
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def test_off_mode_single_matches_pre_frontend_golden():
    result = ExperimentRunner(cache_dir=None).run_single(
        "mcf", "bfetch", 20_000)
    assert _digest(result.data) == GOLDEN_SINGLE


def test_off_mode_mix_matches_pre_frontend_golden():
    results = ExperimentRunner(cache_dir=None).run_mix(
        ["mcf", "libquantum"], "bfetch", 8_000)
    assert _digest([r.data for r in results]) == GOLDEN_MIX


def test_off_mode_all_prefetchers_match_pre_frontend_golden():
    """Every D-side prefetcher, single-core: no payload drifted."""
    runner = ExperimentRunner(cache_dir=None)
    combo = hashlib.sha256()
    for prefetcher in PREFETCHER_NAMES:
        data = runner.run_single("mcf", prefetcher, 6_000).data
        combo.update(json.dumps(data, sort_keys=True).encode())
    assert combo.hexdigest() == GOLDEN_ALL_PREFETCHERS


def test_off_mode_payload_has_no_frontend_keys():
    result = ExperimentRunner(cache_dir=None).run_single("mcf", "none", 5_000)
    for key in ("l1i", "frontend", "iprefetcher", "iprefetch"):
        assert key not in result.data


# ----------------------------------------------------------------------
# cache-key identity

def test_off_mode_cache_key_is_unchanged():
    """frontend="off" must not grow the cache key -- cached results from
    the pre-front-end tree stay addressable."""
    off = SystemConfig(prefetcher="bfetch")
    assert len(off.key()) == len(SystemConfig(prefetcher="stride").key())
    ftq = SystemConfig(prefetcher="bfetch", frontend="ftq",
                       iprefetcher="fdip")
    assert len(ftq.key()) > len(off.key())
    assert ftq.key()[:len(off.key())] == off.key()


def test_frontend_configs_get_distinct_keys():
    base = SystemConfig(frontend="ftq", iprefetcher="fdip")
    other = SystemConfig(frontend="ftq", iprefetcher="bfetch-i")
    tuned = SystemConfig(frontend="ftq", iprefetcher="fdip",
                         frontend_cfg=FrontendConfig(ftq_entries=16))
    assert len({base.key(), other.key(), tuned.key()}) == 3


def test_iprefetcher_requires_frontend():
    with pytest.raises(ValueError):
        SystemConfig(iprefetcher="fdip")
    with pytest.raises(ValueError):
        SystemConfig(frontend="warp")
    with pytest.raises(ValueError):
        SystemConfig(frontend="ftq", iprefetcher="stride")


# ----------------------------------------------------------------------
# FTQ mechanics

def test_ftq_bounded_fifo():
    ftq = FetchTargetQueue(entries=3)
    assert ftq.pop() is None
    assert ftq.push(0x1000) and ftq.push(0x1040) and ftq.push(0x1080)
    assert ftq.full() and not ftq.push(0x10c0)
    assert [ftq.pop() for _ in range(3)] == [0x1000, 0x1040, 0x1080]
    assert ftq.pop() is None


def test_ftq_pending_window_skips_and_marks():
    ftq = FetchTargetQueue(entries=8)
    for addr in (0x0, 0x40, 0x80, 0xc0, 0x100):
        ftq.push(addr)
    window = ftq.pending(skip=1, limit=2)
    assert [entry[0] for entry in window] == [0x40, 0x80]
    for entry in window:
        entry[1] = True
    # issued entries are not handed out again
    again = ftq.pending(skip=1, limit=2)
    assert [entry[0] for entry in again] == [0xc0, 0x100]


def test_ftq_snapshot_round_trip():
    ftq = FetchTargetQueue(entries=4)
    ftq.push(0x1000)
    ftq.push(0x1040)
    ftq.pending(0, 1)[0][1] = True
    state = json.loads(json.dumps(ftq.snapshot()))
    other = FetchTargetQueue(entries=4)
    other.restore(state)
    assert other.snapshot() == ftq.snapshot()


def test_ftq_rejects_bad_capacity():
    for bad in (0, -1, 1.5, "8"):
        with pytest.raises(ValueError):
            FetchTargetQueue(entries=bad)


# ----------------------------------------------------------------------
# predecode / shadow branches

def _branchy_program():
    """16 instructions (one 64B block): entry branch at index 0, a
    shadow conditional at 4, a shadow BR at 8, a JR at 12."""
    b = ProgramBuilder("shadowy")
    b.label("top")
    b.bnez(1, "side")        # 0: block entry point
    b.nop(); b.nop(); b.nop()
    b.bnez(2, "top")         # 4: shadow conditional
    b.nop(); b.nop(); b.nop()
    b.label("side")
    b.br("top")              # 8: shadow unconditional
    b.nop(); b.nop(); b.nop()
    b.jr(3)                  # 12: indirect -- never shadow-installed
    b.nop(); b.nop(); b.nop()
    b.halt()                 # 16: lands in the next block
    return b.build()


def test_predecoder_installs_only_shadow_direct_branches():
    program = _branchy_program()
    btb = BranchTargetBuffer(entries=64)
    pre = Predecoder(program, btb, block_bytes=64)
    entry = program.pc_of(0)
    pre.on_fill(entry, entry_pc=entry)
    # the entry-point branch is NOT a shadow branch
    assert btb.peek(entry) is None
    # direct shadow branches got their static taken targets
    assert btb.peek(program.pc_of(4)) == program.pc_of(0)
    assert btb.peek(program.pc_of(8)) == program.pc_of(0)
    # the indirect JR has no static target to install
    assert btb.peek(program.pc_of(12)) is None
    assert pre.shadow_fills == 2 and pre.blocks == 1


def test_predecoder_scans_each_block_once():
    program = _branchy_program()
    pre = Predecoder(program, BranchTargetBuffer(entries=64), block_bytes=64)
    pre.on_fill(program.pc_of(0))
    fills = pre.shadow_fills
    pre.on_fill(program.pc_of(2))  # same 64B block
    assert pre.blocks == 1 and pre.shadow_fills == fills


def test_predecoder_credits_walker_shadow_hits():
    program = _branchy_program()
    pre = Predecoder(program, BranchTargetBuffer(entries=64), block_bytes=64)
    pre.on_fill(program.pc_of(0), entry_pc=program.pc_of(0))
    shadow_pc = program.pc_of(4)
    pre.note_hit(shadow_pc)
    pre.note_hit(shadow_pc)  # only the first discovery counts
    assert pre.shadow_hits == 1


def test_predecoder_branch_kind_classification():
    program = _branchy_program()
    pre = Predecoder(program, BranchTargetBuffer(entries=64), block_bytes=64)
    assert pre.branch_kind(program.pc_of(4)) == "c"
    assert pre.branch_kind(program.pc_of(8)) == "u"
    assert pre.branch_kind(program.pc_of(12)) == "u"
    assert pre.branch_kind(program.pc_of(1)) is None
    assert pre.branch_kind(program.pc_of(0) - 4) is None


def test_predecoder_snapshot_round_trip():
    program = _branchy_program()
    pre = Predecoder(program, BranchTargetBuffer(entries=64), block_bytes=64)
    pre.on_fill(program.pc_of(0), entry_pc=program.pc_of(0))
    state = json.loads(json.dumps(pre.snapshot()))
    other = Predecoder(program, BranchTargetBuffer(entries=64),
                       block_bytes=64)
    other.restore(state)
    assert other.snapshot() == pre.snapshot()


def test_predecoder_rejects_non_power_of_two_blocks():
    with pytest.raises(ValueError):
        Predecoder(_branchy_program(), BranchTargetBuffer(), block_bytes=48)


# ----------------------------------------------------------------------
# I-prefetcher family

def test_iprefetcher_catalog_is_complete():
    assert IPREFETCHER_NAMES == (
        "none", "nextline-i", "fdip", "bfetch-i", "combined")
    assert FRONTEND_MODES == ("off", "ftq")
    for name in IPREFETCHER_NAMES:
        pf = make_iprefetcher(name, FrontendConfig())
        assert pf is not None


def test_make_iprefetcher_rejects_unknown():
    with pytest.raises(ValueError):
        make_iprefetcher("ghost", FrontendConfig())


# ----------------------------------------------------------------------
# end-to-end: ftq mode runs, reports, and stays deterministic

def _ftq_config(iprefetcher="fdip", **overrides):
    return SystemConfig(prefetcher="none", frontend="ftq",
                        iprefetcher=iprefetcher, **overrides)


@pytest.mark.parametrize("iprefetcher", IPREFETCHER_NAMES)
def test_ftq_mode_runs_and_reports(iprefetcher):
    system = System(build_workload("nginx"), _ftq_config(iprefetcher))
    result = system.run(8_000)
    data = result.data
    assert data["iprefetcher"] == iprefetcher
    frontend = data["frontend"]
    assert frontend["ftq_enqueued"] > 0
    assert frontend["demand_fetches"] > 0
    assert data["l1i"]["accesses"] > 0
    dump = system.stats.dump()
    assert dump["core.ftq.enqueued"] == frontend["ftq_enqueued"]
    assert "core.ftq.mean_occupancy" in dump
    assert dump["core.predecode.shadow_fills"] == frontend["shadow_fills"]
    assert "pf.ifetch.%s.issued" % iprefetcher in dump
    assert "pf.ifetch.%s.coverage" % iprefetcher in dump


def test_ftq_mode_is_deterministic():
    def run():
        return System(build_workload("postgres"),
                      _ftq_config("combined")).run(10_000).as_dict()
    first, second = run(), run()
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)


def test_fdip_beats_no_iprefetch_on_server_code():
    base = System(build_workload("nginx"), _ftq_config("none")).run(12_000)
    fdip = System(build_workload("nginx"), _ftq_config("fdip")).run(12_000)
    assert fdip.data["l1i"]["misses"] < base.data["l1i"]["misses"]
    assert fdip.data["ipc"] > base.data["ipc"]


def test_shadow_fills_happen_on_server_code():
    result = System(build_workload("nginx"), _ftq_config("fdip")).run(12_000)
    frontend = result.data["frontend"]
    assert frontend["shadow_fills"] > 0
    assert frontend["shadow_hits"] > 0


def test_ftq_mode_snapshot_round_trip():
    system = System(build_workload("nginx"), _ftq_config("combined"))
    system.run(6_000)
    state = json.loads(json.dumps(system.snapshot()))
    fresh = System(build_workload("nginx"), _ftq_config("combined"))
    fresh.restore(state)
    assert fresh.snapshot() == system.snapshot()


# ----------------------------------------------------------------------
# fetch-block geometry: everything derives from block_bytes

def test_32_byte_lines_run_end_to_end():
    """Satellite: fetch stepping, FTQ blocks and the L1-I all follow
    HierarchyConfig.block_bytes -- a 32B-line system must work."""
    config = SystemConfig(
        prefetcher="none", frontend="ftq", iprefetcher="fdip",
        hierarchy=HierarchyConfig(block_bytes=32))
    result = System(build_workload("nginx"), config).run(8_000)
    assert result.data["l1i"]["accesses"] > 0
    assert result.data["frontend"]["ftq_enqueued"] > 0
    # trace-visible FTQ blocks must be 32B aligned
    system = System(build_workload("nginx"), config)
    system.run(2_000)
    for addr, _issued in system.core.frontend.ftq.snapshot():
        assert addr % 32 == 0


def test_geometry_mismatch_is_rejected():
    from repro.cpu.ooo import CoreConfig
    config = SystemConfig(frontend="ftq", iprefetcher="none",
                          core=CoreConfig(block_bytes=64, frontend="ftq"),
                          hierarchy=HierarchyConfig(block_bytes=32))
    with pytest.raises(ValueError):
        System(build_workload("nginx"), config)
