"""Wire-protocol conformance and abuse-path coverage.

Two layers:

* sans-IO :class:`repro.serve.protocol.FrameDecoder` unit tests --
  split/glued frames, hostile declared lengths, malformed payloads;
* live-server abuse tests over raw sockets -- every misbehaving peer
  gets a typed error frame (or a silent close where the stream cannot
  be resynced) and the server keeps serving everyone else.
"""

import socket
import struct
from collections import deque

import pytest

from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    ERROR_CODES,
    FrameDecoder,
    ProtocolError,
    decode_payload,
    encode_frame,
    error_message,
)
from repro.serve.server import ServerThread

# ----------------------------------------------------------------------
# sans-IO decoder


class TestFrameDecoder(object):
    def test_roundtrip_single_frame(self):
        decoder = FrameDecoder()
        message = {"type": "ping", "n": 3, "nested": {"a": [1, 2]}}
        assert decoder.feed(encode_frame(message)) == [message]
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        frame = encode_frame({"type": "ping"})
        seen = []
        for index in range(len(frame)):
            seen.extend(decoder.feed(frame[index:index + 1]))
        assert seen == [{"type": "ping"}]

    def test_glued_frames_one_chunk(self):
        decoder = FrameDecoder()
        frames = [{"type": "a"}, {"type": "b"}, {"type": "c"}]
        blob = b"".join(encode_frame(m) for m in frames)
        assert decoder.feed(blob) == frames

    def test_frame_split_across_chunks(self):
        decoder = FrameDecoder()
        blob = encode_frame({"type": "x", "pad": "y" * 100})
        assert decoder.feed(blob[:30]) == []
        assert decoder.pending_bytes > 0
        assert decoder.feed(blob[30:]) == [{"type": "x", "pad": "y" * 100}]

    def test_oversized_declared_length_rejected_early(self):
        """A hostile 4 GiB header costs 4 bytes, not 4 GiB of buffer."""
        decoder = FrameDecoder(max_bytes=1024)
        header = struct.pack(">I", 1 << 31)
        with pytest.raises(ProtocolError) as info:
            decoder.feed(header)  # no body bytes needed to reject
        assert info.value.code == "too-large"

    def test_bad_json_payload(self):
        decoder = FrameDecoder()
        payload = b"{not json"
        with pytest.raises(ProtocolError) as info:
            decoder.feed(struct.pack(">I", len(payload)) + payload)
        assert info.value.code == "bad-json"

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError) as info:
            decode_payload(b"[1,2,3]")
        assert info.value.code == "bad-frame"

    def test_missing_type_field(self):
        with pytest.raises(ProtocolError) as info:
            decode_payload(b'{"nope": 1}')
        assert info.value.code == "bad-frame"

    def test_non_string_type_field(self):
        with pytest.raises(ProtocolError) as info:
            decode_payload(b'{"type": 7}')
        assert info.value.code == "bad-frame"


class TestEncode(object):
    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame([1, 2])

    def test_unserialisable_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"type": "x", "bad": object()})

    def test_too_large_payload(self):
        with pytest.raises(ProtocolError) as info:
            encode_frame({"type": "x", "pad": "y" * 64}, max_bytes=32)
        assert info.value.code == "too-large"

    def test_error_frame_shape(self):
        frame = error_message("busy", "queue full", depth=9)
        assert frame == {"type": "error", "code": "busy",
                         "message": "queue full", "depth": 9}
        assert frame["code"] in ERROR_CODES

    def test_protocol_error_as_frame(self):
        exc = ProtocolError("nope", code="bad-json")
        assert exc.as_frame()["code"] == "bad-json"


# ----------------------------------------------------------------------
# live-server abuse paths


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-protocol")
    with ServerThread(cache_dir=str(root / "cache"),
                      max_concurrent=1) as thread:
        yield thread


def _raw(server):
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _recv(sock, decoder=None, pending=None):
    decoder = decoder if decoder is not None else FrameDecoder(
        max_bytes=protocol.MAX_REPLY_BYTES
    )
    pending = pending if pending is not None else deque()
    return protocol.recv_frame(sock, decoder, pending)


def _client(server):
    host, port = server.address
    return ServeClient(host, port, timeout=30)


class TestServerAbuse(object):
    def test_bad_json_gets_error_and_connection_survives(self, server):
        sock = _raw(server)
        try:
            payload = b"{broken"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            decoder = FrameDecoder(max_bytes=protocol.MAX_REPLY_BYTES)
            pending = deque()
            reply = _recv(sock, decoder, pending)
            assert reply["type"] == "error" and reply["code"] == "bad-json"
            # framing is intact: the same connection still serves
            protocol.send_frame(sock, {"type": "ping"})
            assert _recv(sock, decoder, pending)["type"] == "pong"
        finally:
            sock.close()

    def test_non_object_payload_typed_error(self, server):
        sock = _raw(server)
        try:
            payload = b"[1,2]"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            reply = _recv(sock)
            assert reply["type"] == "error" and reply["code"] == "bad-frame"
        finally:
            sock.close()

    def test_oversized_frame_error_then_close(self, server):
        sock = _raw(server)
        try:
            sock.sendall(struct.pack(">I", 1 << 30))  # 1 GiB declared
            decoder = FrameDecoder(max_bytes=protocol.MAX_REPLY_BYTES)
            pending = deque()
            reply = _recv(sock, decoder, pending)
            assert reply["type"] == "error" and reply["code"] == "too-large"
            # the stream cannot be resynced; the server closes it
            assert _recv(sock, decoder, pending) is None
        finally:
            sock.close()

    def test_mid_frame_disconnect_leaves_server_up(self, server):
        sock = _raw(server)
        sock.sendall(struct.pack(">I", 512) + b"only-part-of-the-body")
        sock.close()  # vanish mid-frame
        with _client(server) as client:  # a fresh client is unaffected
            assert client.ping()["type"] == "pong"

    def test_header_only_disconnect(self, server):
        sock = _raw(server)
        sock.sendall(b"\x00\x00")  # half a header
        sock.close()
        with _client(server) as client:
            assert client.ping()["type"] == "pong"

    def test_unknown_type_typed_error(self, server):
        sock = _raw(server)
        try:
            protocol.send_frame(sock, {"type": "frobnicate"})
            reply = _recv(sock)
            assert reply["code"] == "unknown-type"
        finally:
            sock.close()

    def test_submit_unknown_benchmark_bad_request(self, server):
        with _client(server) as client:
            with pytest.raises(ServeError) as info:
                client.submit("not-a-benchmark", "stride",
                              instructions=2000)
            assert info.value.code == "bad-request"

    def test_submit_bad_instructions_bad_request(self, server):
        with _client(server) as client:
            with pytest.raises(ServeError) as info:
                client.submit("libquantum", "stride", instructions=-5)
            assert info.value.code == "bad-request"

    def test_status_unknown_job(self, server):
        with _client(server) as client:
            with pytest.raises(ServeError) as info:
                client.status("j999999")
            assert info.value.code == "unknown-job"

    def test_cancel_after_complete_not_cancellable(self, server):
        with _client(server) as client:
            ticket = client.submit("libquantum", "none", instructions=2000)
            client.result(ticket["job_id"], wait=True)
            with pytest.raises(ServeError) as info:
                client.cancel(ticket["job_id"])
            assert info.value.code == "not-cancellable"

    def test_stream_unknown_job_typed_error(self, server):
        with _client(server) as client:
            with pytest.raises(ServeError) as info:
                list(client.stream("j424242"))
            assert info.value.code == "unknown-job"

    def test_server_catalog_matches_registry(self, server):
        from repro.sim.catalog import catalog as build_catalog

        with _client(server) as client:
            assert client.catalog() == build_catalog()
