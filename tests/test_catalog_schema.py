"""Catalog schema stability: ``repro-catalog-v1`` is a published contract.

Serve clients validate submissions against the catalog payload, so
additions must be backwards-compatible: new keys and new list entries
are fine, but the schema tag, the existing keys and the existing entry
shapes must not change.  The front-end PR grew the catalog (I-side
prefetchers, front-end modes, server-class benchmarks) without bumping
the schema -- this file pins that contract.
"""

import json

from repro.frontend import FRONTEND_MODES, IPREFETCHER_NAMES
from repro.sim.catalog import (
    CATALOG_SCHEMA,
    catalog,
    is_benchmark,
    is_prefetcher,
    render_catalog,
)
from repro.sim.config import PREDICTOR_NAMES, PREFETCHER_NAMES


def test_schema_tag_is_stable():
    assert CATALOG_SCHEMA == "repro-catalog-v1"
    assert catalog()["schema"] == "repro-catalog-v1"


def test_catalog_top_level_keys():
    payload = catalog()
    assert set(payload) == {
        "schema", "benchmarks", "prefetchers", "iprefetchers",
        "frontend_modes", "branch_predictors", "defaults", "cache_version",
    }
    assert set(payload["defaults"]) == {
        "single_instructions", "mix_instructions",
    }


def test_catalog_is_json_serialisable_and_fresh():
    payload = catalog()
    assert json.loads(json.dumps(payload)) == payload
    payload["benchmarks"].clear()  # mutating a copy must not stick
    assert catalog()["benchmarks"]


def test_benchmark_entries_keep_their_shape():
    for entry in catalog()["benchmarks"]:
        assert set(entry) == {"name", "klass", "prefetch_sensitive"}
        assert is_benchmark(entry["name"])
        assert entry["klass"] in (
            "streaming", "spatial", "irregular", "compute", "server")
        assert isinstance(entry["prefetch_sensitive"], bool)


def test_catalog_exposes_frontend_families():
    payload = catalog()
    assert payload["iprefetchers"] == list(IPREFETCHER_NAMES)
    assert payload["frontend_modes"] == list(FRONTEND_MODES)
    assert payload["prefetchers"] == list(PREFETCHER_NAMES)
    assert payload["branch_predictors"] == list(PREDICTOR_NAMES)
    # the I-side family is disjoint from the D-side names
    assert not set(payload["iprefetchers"]) & set(payload["prefetchers"]) \
        - {"none"}


def test_catalog_lists_server_benchmarks():
    servers = [entry["name"] for entry in catalog()["benchmarks"]
               if entry["klass"] == "server"]
    assert servers == ["nginx", "postgres", "verilator"]
    assert is_prefetcher("bfetch") and not is_prefetcher("fdip")


def test_render_catalog_covers_all_families():
    text = render_catalog()
    assert "iprefetchers (frontend=ftq):" in text
    for name in IPREFETCHER_NAMES:
        assert name in text
    assert "nginx" in text and "(server)" in text
