"""Differential test: decoded dispatch-table step vs the reference if-chain.

The interpreter pre-decodes each static instruction into dispatch metadata
(:func:`repro.cpu.functional.decode_program`); :meth:`Machine.step_reference`
keeps the original field-re-deriving if-chain.  The two must produce
bit-identical architectural streams -- registers, memory, branch outcomes
and effective addresses -- on programs covering every opcode.
"""

import pytest

from repro.cpu.functional import (
    HaltError,
    K_LOAD_NODEST,
    K_NOP,
    Machine,
    decode_instr,
    decode_program,
)
from repro.isa import ZERO_REG, assemble
from repro.isa.opcodes import Op
from repro.workloads.spec import BENCHMARKS, build_workload

# exercises all 25 executable opcodes plus restart-on-halt, signed
# compares/branches, zero-register semantics, shifts and indirect jumps
MIXED_PROGRAM = """
start:
    li r1, 0x1000
    li r2, 7
    li r3, -3
    addi r4, r1, 64
    subi r5, r2, 9
    add r6, r2, r3
    sub r7, r2, r3
    mul r8, r2, r2
    xor r9, r2, r3
    and r10, r2, r7
    or r11, r2, r3
    andi r12, r11, 0xFF
    sll r13, r2, r2
    srl r14, r13, r2
    slli r15, r2, 3
    srli r16, r15, 1
    cmpeq r17, r2, r2
    cmplt r18, r3, r2
    mov r19, r8
    li r31, 99
    add r20, r31, r2
    load r31, 0(r1)
    nop
    store r2, 8(r1)
    load r21, 8(r1)
    store r8, 16(r1)
    load r22, 16(r1)
    bltz r3, neg_path
    li r23, 111
neg_path:
    bgez r2, pos_path
    li r23, 222
pos_path:
    beqz r5, skip1
    addi r24, r24, 1
skip1:
    bnez r5, skip2
    addi r24, r24, 100
skip2:
    li r25, 4
loop:
    subi r25, r25, 1
    store r25, 24(r1)
    load r26, 24(r1)
    bnez r25, loop
    br over
    li r27, 333
over:
    addi r28, r28, 12
    addi r30, r30, 1
    cmplt r17, r30, r2
    beqz r17, done
    li r29, 0x1000
    jr r29
done:
    halt
"""


def lockstep(text, steps, restart=True):
    program_a = assemble(text)
    program_b = assemble(text)
    fast = Machine(program_a, {}, restart_on_halt=restart)
    ref = Machine(program_b, {}, restart_on_halt=restart)
    for _ in range(steps):
        try:
            instr_f, taken_f, ea_f = fast.step()
        except HaltError:
            with pytest.raises(HaltError):
                ref.step_reference()
            break
        instr_r, taken_r, ea_r = ref.step_reference()
        assert (instr_f.index, taken_f, ea_f) == (instr_r.index, taken_r, ea_r)
        assert fast.regs == ref.regs
        assert fast.index == ref.index
    assert fast.memory == ref.memory
    assert fast.instret == ref.instret
    assert fast.restarts == ref.restarts
    return fast, ref


def test_mixed_program_lockstep_equivalence():
    # several full restarts of the mixed-opcode kernel
    lockstep(MIXED_PROGRAM, 500)


def test_mixed_program_covers_every_executable_opcode():
    program = assemble(MIXED_PROGRAM)
    used = {instr.op for instr in program.instrs}
    assert used == set(Op), "MIXED_PROGRAM must cover the full opcode space"


def test_halt_equivalence_without_restart():
    fast, ref = lockstep("addi r1, r1, 5\nhalt", steps=10, restart=False)
    assert fast.halted and ref.halted


@pytest.mark.parametrize("bench", sorted(BENCHMARKS)[:4])
def test_workload_stream_equivalence(bench):
    wl_a = build_workload(bench)
    wl_b = build_workload(bench)
    fast = Machine(wl_a.program, dict(wl_a.memory))
    ref = Machine(wl_b.program, dict(wl_b.memory))
    stream_fast = [
        (i.index, taken, ea) for i, taken, ea in
        (fast.step() for _ in range(20_000))
    ]
    stream_ref = [
        (i.index, taken, ea) for i, taken, ea in
        (ref.step_reference() for _ in range(20_000))
    ]
    assert stream_fast == stream_ref
    assert fast.regs == ref.regs
    assert fast.memory == ref.memory


# ----------------------------------------------------------------------
# decode metadata


def test_decode_folds_zero_register_writes():
    program = assemble("li r31, 42\nload r31, 0(r1)\nadd r1, r2, r3\nhalt")
    decoded = decode_program(program)
    assert decoded[0][0] == K_NOP  # li r31 is an architectural no-op
    assert decoded[1][0] == K_LOAD_NODEST  # keeps the ea side channel
    assert decoded[2][0] != K_NOP


def test_decode_program_is_cached_on_the_program():
    program = assemble("nop\nhalt")
    first = decode_program(program)
    assert decode_program(program) is first
    assert Machine(program)._decoded is first


def test_decode_instr_fields_are_plain_ints():
    program = assemble(MIXED_PROGRAM)
    for instr in program.instrs:
        row = decode_instr(instr)
        assert len(row) == 6
        assert all(isinstance(field, int) for field in row)


def test_load_to_zero_register_still_reports_ea():
    machine = Machine(
        assemble("li r1, 0x2000\nload r31, 8(r1)\nhalt"),
        {},
        restart_on_halt=False,
    )
    machine.step()
    _instr, _taken, ea = machine.step()
    assert ea == 0x2008
    assert machine.regs[ZERO_REG] == 0
