"""Checkpoint/restore: byte-identical resume after interruption.

The headline guarantee (DESIGN.md section 7): because the simulator is
fully deterministic, restoring a checkpoint and running to completion
produces *exactly* the same :class:`RunResult` payload as the
uninterrupted run -- for single-core systems, for the shared-LLC CMP,
and for every prefetcher.  The chaos tests here enforce it with real
``SIGKILL`` mid-run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.checkpoint import (
    CheckpointError,
    Checkpointer,
    InterruptFlag,
    from_env,
    gc_stale_tmp,
)
from repro.obs import Tracer
from repro.obs.trace import parse_trace_spec
from repro.sim.cmp import CMPSystem
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System
from repro.workloads.spec import build_workload


def _system(benchmark="mcf", prefetcher="bfetch", **overrides):
    return System(build_workload(benchmark),
                  SystemConfig(prefetcher=prefetcher, **overrides))


# ----------------------------------------------------------------------
# Checkpointer mechanics


def test_checkpointer_round_trip(tmp_path):
    path = str(tmp_path / "run.ckpt.json")
    ckpt = Checkpointer(path, every=100)
    state = {"machine": {"regs": list(range(32))}, "nested": {"a": [1, 2]}}
    ckpt.save(state, cycle=1234)
    loaded = Checkpointer(path).load()
    assert loaded is not None
    restored, cycle = loaded
    assert restored == state
    assert cycle == 1234


def test_checkpointer_due_cadence(tmp_path):
    ckpt = Checkpointer(str(tmp_path / "x.ckpt.json"), every=1000)
    assert not ckpt.due(999)
    assert ckpt.due(1000)
    ckpt.save({}, 1000)
    assert not ckpt.due(1999)
    assert ckpt.due(2100)


def test_checkpointer_rejects_bad_interval(tmp_path):
    for bad in (0, -5, 1.5, "100"):
        with pytest.raises(CheckpointError):
            Checkpointer(str(tmp_path / "x.ckpt.json"), every=bad)


def test_corrupt_checkpoint_is_discarded(tmp_path):
    path = str(tmp_path / "run.ckpt.json")
    ckpt = Checkpointer(path, every=100)
    ckpt.save({"ok": True}, 10)
    with open(path, "w") as handle:
        handle.write('{"v": 1, "sha": "deadbeef", "data": {"trunca')
    assert Checkpointer(path).load() is None
    assert not os.path.exists(path)  # never approximately trusted


def test_clear_removes_checkpoint(tmp_path):
    path = str(tmp_path / "run.ckpt.json")
    ckpt = Checkpointer(path, every=100)
    ckpt.save({}, 10)
    assert os.path.exists(path)
    ckpt.clear()
    assert not os.path.exists(path)
    ckpt.clear()  # idempotent


def test_gc_stale_tmp(tmp_path):
    stale = tmp_path / "sub" / ".tmp-dead"
    stale.parent.mkdir()
    stale.write_text("junk")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    fresh = tmp_path / ".tmp-live"
    fresh.write_text("mid-write")
    keep = tmp_path / "entry.json"
    keep.write_text("{}")
    assert gc_stale_tmp(str(tmp_path)) == 1
    assert not stale.exists()
    assert fresh.exists() and keep.exists()


def test_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CKPT_DIR", raising=False)
    assert from_env("k") is None
    monkeypatch.setenv("REPRO_CKPT_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CKPT_EVERY", "1234")
    ckpt = from_env("key1")
    assert ckpt.every == 1234
    assert ckpt.path.endswith("key1.ckpt.json")
    monkeypatch.setenv("REPRO_CKPT_EVERY", "soon")
    with pytest.raises(CheckpointError):
        from_env("key1")
    monkeypatch.setenv("REPRO_CKPT_EVERY", "0")
    with pytest.raises(CheckpointError):
        from_env("key1")


# ----------------------------------------------------------------------
# in-process interrupt -> resume byte-identity (all system flavours)


@pytest.mark.parametrize("prefetcher", ["bfetch", "stride", "sms", "isb"])
def test_interrupt_resume_byte_identical_single(tmp_path, prefetcher):
    budget = 20_000
    reference = _system(prefetcher=prefetcher).run(budget).as_dict()

    ckpt = Checkpointer(str(tmp_path / "run.ckpt.json"), every=1500)
    tripped = InterruptFlag()
    tripped.signum = signal.SIGINT  # pre-latched: trips at first boundary
    with pytest.raises(KeyboardInterrupt):
        _system(prefetcher=prefetcher).run(budget, checkpointer=ckpt,
                                           interrupt=tripped)
    assert os.path.exists(ckpt.path)

    resumed = _system(prefetcher=prefetcher).run(
        budget, checkpointer=ckpt, interrupt=InterruptFlag()
    ).as_dict()
    assert resumed == reference
    assert not os.path.exists(ckpt.path)  # cleared after completion


def test_interrupt_resume_byte_identical_cmp(tmp_path):
    mix = ["mcf", "libquantum"]
    config = SystemConfig(prefetcher="bfetch")
    budget = 6_000

    def build():
        return CMPSystem([build_workload(name) for name in mix], config)

    reference = [r.as_dict() for r in build().run(budget)]

    ckpt = Checkpointer(str(tmp_path / "mix.ckpt.json"), every=1500)
    tripped = InterruptFlag()
    tripped.signum = signal.SIGTERM
    with pytest.raises(SystemExit) as excinfo:
        build().run(budget, checkpointer=ckpt, interrupt=tripped)
    assert excinfo.value.code == 128 + signal.SIGTERM
    assert os.path.exists(ckpt.path)

    resumed = [r.as_dict() for r in build().run(
        budget, checkpointer=ckpt, interrupt=InterruptFlag())]
    assert resumed == reference


def test_interrupt_flushes_trace_and_checkpoint(tmp_path):
    """Satellite: a deferred SIGTERM flushes traces + the latest
    checkpoint before exiting nonzero."""
    trace_path = str(tmp_path / "trace.jsonl")
    tracer = Tracer(parse_trace_spec("all"), path=trace_path)
    system = System(build_workload("mcf"), SystemConfig(prefetcher="bfetch"),
                    tracer=tracer)
    ckpt = Checkpointer(str(tmp_path / "run.ckpt.json"), every=1000)
    tripped = InterruptFlag()
    tripped.signum = signal.SIGTERM
    with pytest.raises(SystemExit) as excinfo:
        system.run(20_000, checkpointer=ckpt, interrupt=tripped)
    assert excinfo.value.code == 143
    assert os.path.exists(ckpt.path)
    assert os.path.exists(trace_path)
    with open(trace_path) as handle:
        first = handle.readline()
    assert first.strip()  # buffered events actually hit the disk


def test_mismatched_checkpoint_restarts_clean(tmp_path):
    """A checkpoint from another workload/config is cleared, not trusted."""
    ckpt = Checkpointer(str(tmp_path / "run.ckpt.json"), every=1000)
    donor = _system("libquantum")
    donor.run(3_000, checkpointer=ckpt)
    # force a leftover checkpoint from the donor's identity
    ckpt.save(donor.snapshot(), 999)

    reference = _system("mcf").run(10_000).as_dict()
    result = _system("mcf").run(10_000, checkpointer=ckpt).as_dict()
    assert result == reference

    with pytest.raises(CheckpointError):
        _system("mcf").restore(donor.snapshot())


def test_snapshot_is_json_safe():
    system = _system(prefetcher="bfetch")
    system.run(5_000)
    state = system.snapshot()
    round_tripped = json.loads(json.dumps(state))
    fresh = _system(prefetcher="bfetch")
    fresh.restore(round_tripped)
    assert fresh.snapshot() == state


# ----------------------------------------------------------------------
# chaos: real SIGKILL mid-run, then resume -- byte-identical results

_SINGLE_SCRIPT = """\
import json, sys
sys.path.insert(0, %(src)r)
from repro.sim.runner import ExperimentRunner
result = ExperimentRunner().run_single(%(benchmark)r, %(prefetcher)r,
                                       %(instructions)d)
print(json.dumps(result.as_dict(), sort_keys=True))
"""

_MIX_SCRIPT = """\
import json, sys
sys.path.insert(0, %(src)r)
from repro.sim.runner import ExperimentRunner
results = ExperimentRunner().run_mix(%(mix)r, %(prefetcher)r,
                                     %(instructions)d)
print(json.dumps([r.as_dict() for r in results], sort_keys=True))
"""

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _kill_then_resume(script, ckpt_dir, timeout=30.0):
    """Start *script*, SIGKILL it once a checkpoint exists, then rerun."""
    env = dict(os.environ, REPRO_CKPT_DIR=str(ckpt_dir),
               REPRO_CKPT_EVERY="1000")
    env.pop("REPRO_SCALE", None)
    proc = subprocess.Popen([sys.executable, "-c", script], env=env,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)
    deadline = time.time() + timeout
    try:
        while time.time() < deadline:
            if any(name.endswith(".ckpt.json")
                   for name in os.listdir(str(ckpt_dir))):
                break
            if proc.poll() is not None:
                raise AssertionError(
                    "run finished before any checkpoint was written:\n%s"
                    % proc.stderr.read().decode()
                )
            time.sleep(0.01)
        else:
            raise AssertionError("no checkpoint appeared within timeout")
        proc.kill()
        proc.wait()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGKILL
    done = subprocess.run([sys.executable, "-c", script], env=env,
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    assert done.returncode == 0, done.stderr.decode()
    return json.loads(done.stdout)


@pytest.mark.parametrize("prefetcher", ["bfetch", "stride", "sms"])
def test_sigkill_resume_byte_identical_single(tmp_path, prefetcher):
    instructions = 60_000
    reference = ExperimentRunner().run_single(
        "mcf", prefetcher, instructions).as_dict()
    script = _SINGLE_SCRIPT % {
        "src": _SRC, "benchmark": "mcf", "prefetcher": prefetcher,
        "instructions": instructions,
    }
    resumed = _kill_then_resume(script, tmp_path)
    assert resumed == json.loads(json.dumps(reference, sort_keys=True))
    # completion cleared the checkpoint: nothing stale left behind
    assert not any(name.endswith(".ckpt.json")
                   for name in os.listdir(str(tmp_path)))


def test_sigkill_resume_byte_identical_mix(tmp_path):
    mix = ["mcf", "libquantum"]
    instructions = 25_000
    reference = [r.as_dict() for r in
                 ExperimentRunner().run_mix(mix, "bfetch", instructions)]
    script = _MIX_SCRIPT % {
        "src": _SRC, "mix": mix, "prefetcher": "bfetch",
        "instructions": instructions,
    }
    resumed = _kill_then_resume(script, tmp_path)
    assert resumed == json.loads(json.dumps(reference, sort_keys=True))


# ----------------------------------------------------------------------
# decoupled front end: FTQ/predecode/I-MSHR state rides the checkpoint

def _ftq_config(iprefetcher="fdip"):
    return SystemConfig(prefetcher="none", frontend="ftq",
                        iprefetcher=iprefetcher)


@pytest.mark.parametrize("iprefetcher", ["fdip", "combined"])
def test_interrupt_resume_byte_identical_frontend_single(tmp_path,
                                                         iprefetcher):
    budget = 15_000

    def build():
        return System(build_workload("nginx"), _ftq_config(iprefetcher))

    reference = build().run(budget).as_dict()
    ckpt = Checkpointer(str(tmp_path / "fe.ckpt.json"), every=1500)
    tripped = InterruptFlag()
    tripped.signum = signal.SIGINT
    with pytest.raises(KeyboardInterrupt):
        build().run(budget, checkpointer=ckpt, interrupt=tripped)
    assert os.path.exists(ckpt.path)

    resumed = build().run(budget, checkpointer=ckpt,
                          interrupt=InterruptFlag()).as_dict()
    assert resumed == reference


def test_interrupt_resume_byte_identical_frontend_cmp(tmp_path):
    mix = ["nginx", "postgres"]
    config = _ftq_config("fdip")
    budget = 6_000

    def build():
        return CMPSystem([build_workload(name) for name in mix], config)

    reference = [r.as_dict() for r in build().run(budget)]
    ckpt = Checkpointer(str(tmp_path / "femix.ckpt.json"), every=1500)
    tripped = InterruptFlag()
    tripped.signum = signal.SIGTERM
    with pytest.raises(SystemExit):
        build().run(budget, checkpointer=ckpt, interrupt=tripped)
    assert os.path.exists(ckpt.path)

    resumed = [r.as_dict() for r in build().run(
        budget, checkpointer=ckpt, interrupt=InterruptFlag())]
    assert resumed == reference


_FRONTEND_SCRIPT = """\
import json, sys
sys.path.insert(0, %(src)r)
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
config = SystemConfig(prefetcher="none", frontend="ftq",
                      iprefetcher=%(iprefetcher)r)
result = ExperimentRunner().run_single(%(benchmark)r, "none",
                                       %(instructions)d, config=config)
print(json.dumps(result.as_dict(), sort_keys=True))
"""


def test_sigkill_resume_byte_identical_frontend(tmp_path):
    """Chaos satellite: SIGKILL a front-end-enabled run mid-flight,
    resume from the checkpoint, and match the uninterrupted payload."""
    instructions = 40_000
    config = _ftq_config("fdip")
    reference = ExperimentRunner().run_single(
        "nginx", "none", instructions, config=config).as_dict()
    script = _FRONTEND_SCRIPT % {
        "src": _SRC, "benchmark": "nginx", "iprefetcher": "fdip",
        "instructions": instructions,
    }
    resumed = _kill_then_resume(script, tmp_path)
    assert resumed == json.loads(json.dumps(reference, sort_keys=True))
