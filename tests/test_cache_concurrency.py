"""Concurrent-writer safety of the shared result cache.

The job server multiplexes many clients onto one cache directory, and
``--batch-jobs`` fans one batch out over a process pool -- so two
writers racing on the *same* cache key is a supported situation, not a
corner case.  These tests pin down the guarantees:

* two processes computing the same key concurrently both succeed and
  agree bit-for-bit; the surviving entry is a valid envelope;
* readers racing a rewriting writer never observe a partial entry
  (``atomic_write_text`` = tmp file + ``os.replace``);
* the corrupt-entry discard in ``ExperimentRunner._cached`` is guarded
  by a stat signature (:func:`repro.obs.io.remove_if_unchanged`): a
  concurrent writer that replaced the bad entry with a good one never
  loses its write to our stale corruption verdict.
"""

import json
import multiprocessing
import os
import threading

import pytest

from repro.obs.io import atomic_write_text, file_signature, remove_if_unchanged
from repro.resilience.envelope import unwrap_envelope, wrap_envelope
from repro.sim import ExperimentRunner, RunRequest
from repro.sim.runner import CACHE_VERSION

BUDGET = 2000


def _compute_same_key(cache_dir, barrier, slot, out):
    """Worker: rendezvous at the barrier, then race on one cache key."""
    runner = ExperimentRunner(cache_dir=cache_dir)
    barrier.wait(timeout=60)
    result = runner.run_single("libquantum", "stride", BUDGET)
    out[slot] = result.as_dict()


class TestSameKeyRace(object):
    def test_concurrent_processes_same_key(self, tmp_path):
        """N processes racing on one key all succeed and agree."""
        cache_dir = str(tmp_path / "cache")
        n = 3
        ctx = multiprocessing.get_context()
        with multiprocessing.Manager() as manager:
            barrier = ctx.Barrier(n)
            out = manager.dict()
            procs = [
                ctx.Process(target=_compute_same_key,
                            args=(cache_dir, barrier, slot, out))
                for slot in range(n)
            ]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join(timeout=120)
                assert proc.exitcode == 0
            results = [out[slot] for slot in range(n)]
        assert all(result == results[0] for result in results)
        # the surviving entry is a valid, verifiable envelope holding
        # exactly the data every racer returned
        runner = ExperimentRunner(cache_dir=cache_dir)
        digest = runner.request_digest(
            RunRequest("libquantum", "stride", BUDGET)
        )
        path = os.path.join(cache_dir, "single", digest[:2],
                            "single-%s.json" % digest[:16])
        assert os.path.exists(path)
        with open(path) as handle:
            envelope = json.load(handle)
        data = unwrap_envelope(envelope, CACHE_VERSION, path=path)
        assert data == results[0]
        # and a fresh reader gets a cache hit, not a recompute
        fresh = runner.run_single("libquantum", "stride", BUDGET)
        assert fresh.as_dict() == results[0]

    def test_reader_never_sees_partial_entry(self, tmp_path):
        """Hammer one path with atomic rewrites; every read verifies."""
        path = str(tmp_path / "entry.json")
        payloads = [
            {"cycles": i, "blob": "x" * (1000 + i)} for i in range(8)
        ]
        atomic_write_text(
            path, json.dumps(wrap_envelope(payloads[0], CACHE_VERSION))
        )
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                payload = payloads[i % len(payloads)]
                atomic_write_text(
                    path, json.dumps(wrap_envelope(payload, CACHE_VERSION))
                )
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(300):
                with open(path) as handle:
                    envelope = json.load(handle)  # must always parse
                data = unwrap_envelope(envelope, CACHE_VERSION, path=path)
                assert data in payloads
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not thread.is_alive()


class TestGuardedDiscard(object):
    def test_remove_if_unchanged_removes_same_file(self, tmp_path):
        path = str(tmp_path / "victim.json")
        atomic_write_text(path, "garbage")
        signature = file_signature(os.stat(path))
        assert remove_if_unchanged(path, signature) is True
        assert not os.path.exists(path)

    def test_remove_if_unchanged_spares_rewritten_file(self, tmp_path):
        """A stale signature must not delete a concurrently-rewritten
        entry."""
        path = str(tmp_path / "entry.json")
        atomic_write_text(path, "garbage")
        stale = file_signature(os.stat(path))
        # concurrent writer replaces the corrupt entry with a good one
        atomic_write_text(path, json.dumps(
            wrap_envelope({"cycles": 1}, CACHE_VERSION)
        ))
        assert remove_if_unchanged(path, stale) is False
        assert os.path.exists(path)
        with open(path) as handle:
            assert unwrap_envelope(json.load(handle), CACHE_VERSION,
                                   path=path) == {"cycles": 1}

    def test_remove_if_unchanged_none_signature(self, tmp_path):
        path = str(tmp_path / "entry.json")
        atomic_write_text(path, "data")
        assert remove_if_unchanged(path, None) is False
        assert os.path.exists(path)

    def test_remove_if_unchanged_missing_file(self, tmp_path):
        assert remove_if_unchanged(str(tmp_path / "gone.json"),
                                   (1, 2, 3)) is False

    def test_cached_discard_respects_concurrent_rewrite(self, tmp_path):
        """End-to-end: a corrupt probe races a valid rewrite; the valid
        entry survives and is served."""
        cache_dir = str(tmp_path / "cache")
        runner = ExperimentRunner(cache_dir=cache_dir)
        result = runner.run_single("libquantum", "none", BUDGET)
        digest = runner.request_digest(
            RunRequest("libquantum", "none", BUDGET)
        )
        path = os.path.join(cache_dir, "single", digest[:2],
                            "single-%s.json" % digest[:16])
        # corrupt the entry on disk
        atomic_write_text(path, "{not json")
        # a fresh runner (cold memo) must discard + recompute, and the
        # recomputed entry must match the original bit-for-bit
        probe = ExperimentRunner(cache_dir=cache_dir)
        results, report = probe.run_batch(
            [RunRequest("libquantum", "none", BUDGET)]
        )
        assert report.cache_corruptions == 1
        assert results[0].as_dict() == result.as_dict()
        with open(path) as handle:
            data = unwrap_envelope(json.load(handle), CACHE_VERSION,
                                   path=path)
        assert data == result.as_dict()


class TestRunBatchApi(object):
    """run_batch is the thread-safe core run_many now wraps."""

    def test_run_batch_returns_results_and_report(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
        requests = [RunRequest("libquantum", "none", BUDGET),
                    RunRequest("libquantum", "stride", BUDGET)]
        results, report = runner.run_batch(requests)
        assert len(results) == 2
        assert report.misses == 2 and report.hits == 0
        again, report2 = runner.run_batch(requests)
        assert report2.hits == 2 and report2.misses == 0
        assert [r.as_dict() for r in again] == [
            r.as_dict() for r in results
        ]

    def test_run_batch_progress_callback(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
        ticks = []
        requests = [RunRequest("libquantum", "none", BUDGET),
                    RunRequest("mcf", "none", BUDGET)]
        runner.run_batch(requests, progress=lambda d, t: ticks.append((d, t)))
        assert ticks[-1] == (2, 2)
        assert [t for _d, t in ticks] == [2] * len(ticks)
        assert [d for d, _t in ticks] == sorted(d for d, _t in ticks)
        # all-cached batch: one tick covering the whole probe pass
        ticks2 = []
        runner.run_batch(requests,
                         progress=lambda d, t: ticks2.append((d, t)))
        assert ticks2 == [(2, 2)]

    def test_progress_exception_aborts_batch(self, tmp_path):
        """A raising progress callback aborts at a task boundary --
        the cooperative-cancellation contract the job server relies
        on."""

        class Stop(Exception):
            pass

        def progress(done, total):
            if done >= 1:  # abort after the first completed run
                raise Stop()

        requests = [RunRequest("libquantum", "none", BUDGET),
                    RunRequest("mcf", "none", BUDGET)]
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
        with pytest.raises(Stop):
            runner.run_batch(requests, jobs=1, progress=progress)
        # completed work before the abort stays cached: on resubmission
        # the first run resolves from cache and only the rest compute
        results, report = runner.run_batch(requests, jobs=1)
        assert all(result is not None for result in results)
        assert report.hits == 1 and report.misses == 1
