"""Bounded prefetch queue."""

from repro.memory import PrefetchQueue


def test_fifo_order():
    queue = PrefetchQueue(capacity=4)
    queue.push(1, "a")
    queue.push(2, "b")
    assert queue.pop() == (1, "a")
    assert queue.pop() == (2, "b")
    assert queue.pop() is None


def test_capacity_rejects_new_requests():
    queue = PrefetchQueue(capacity=2)
    queue.push(1)
    queue.push(2)
    queue.push(3)
    assert queue.drops == 1
    assert queue.pop() == (1, None)
    assert queue.pop() == (2, None)
    assert queue.pop() is None


def test_len_and_clear():
    queue = PrefetchQueue(capacity=8)
    for i in range(5):
        queue.push(i)
    assert len(queue) == 5
    queue.clear()
    assert len(queue) == 0
