"""Heavy-weight prefetchers: ISB and STeMS (simplified)."""

from repro.prefetchers import ISBPrefetcher, STeMSPrefetcher


def drain_addrs(prefetcher):
    out = []
    while True:
        request = prefetcher.queue.pop()
        if request is None:
            return out
        out.append(request[0])


IRREGULAR = [0x91, 0x17, 0x44, 0xE3, 0x08, 0xAA]  # block numbers


class TestISB:
    def test_replays_irregular_sequence_on_second_pass(self):
        p = ISBPrefetcher(degree=2)
        for block in IRREGULAR:
            p.on_load(0x400, block << 6, hit=False, now=0)
        drain_addrs(p)
        p._recent.clear()
        # second traversal: a miss on the first block prefetches successors
        p.on_load(0x400, IRREGULAR[0] << 6, hit=False, now=0)
        addrs = drain_addrs(p)
        assert (IRREGULAR[1] << 6) in addrs
        assert (IRREGULAR[2] << 6) in addrs

    def test_streams_are_pc_localized(self):
        p = ISBPrefetcher(degree=1)
        p.on_load(0x400, 0x1000, hit=False, now=0)
        p.on_load(0x500, 0x2000, hit=False, now=0)  # different PC
        p.on_load(0x400, 0x3000, hit=False, now=0)
        drain_addrs(p)
        p._recent.clear()
        p.on_load(0x400, 0x1000, hit=False, now=0)
        addrs = drain_addrs(p)
        # the structural successor of 0x1000 in PC 0x400's stream is
        # 0x3000, not the other PC's 0x2000
        assert addrs == [0x3000]

    def test_hits_do_not_train(self):
        p = ISBPrefetcher()
        p.on_load(0x400, 0x1000, hit=True, now=0)
        assert not p.ps

    def test_metadata_grows_with_footprint(self):
        p = ISBPrefetcher()
        before = p.storage_bits()
        for i in range(100):
            p.on_load(0x400, i * 64, hit=False, now=0)
        assert p.storage_bits() > before
        assert len(p.ps) == 100 and len(p.sp) == 100


REGION = 2048


class TestSTeMS:
    def _touch_region(self, p, region_index, pc, offsets=(0, 3, 7)):
        base = region_index * REGION
        for position, offset_block in enumerate(offsets):
            p.on_load(pc, base + offset_block * 64, hit=position != 0, now=0)

    def test_temporal_replay_streams_future_regions(self):
        p = STeMSPrefetcher(stream_ahead=4)
        # first pass: regions 10, 20, 30 with distinct trigger PCs
        for region, pc in ((10, 0x100), (20, 0x200), (30, 0x300)):
            self._touch_region(p, region, pc)
        # end all generations so patterns commit
        for region in (10, 20, 30):
            p.on_l1d_eviction(region * REGION, None)
        drain_addrs(p)
        p._recent.clear()
        # second pass: re-trigger region 10's event; STeMS must stream the
        # *following* logged generations (regions 20 and 30)
        self._touch_region(p, 10, 0x100)
        addrs = drain_addrs(p)
        assert any(a // REGION == 20 for a in addrs)
        assert any(a // REGION == 30 for a in addrs)

    def test_storage_exceeds_sms(self):
        from repro.prefetchers import SMSPrefetcher
        stems = STeMSPrefetcher()
        for region, pc in ((1, 0x10), (2, 0x20), (3, 0x30)):
            self._touch_region(stems, region, pc)
        assert stems.storage_bits() > SMSPrefetcher().storage_bits()

    def test_log_grows_per_generation(self):
        p = STeMSPrefetcher()
        for region in range(5):
            self._touch_region(p, region, 0x100 + region * 16)
        assert len(p.temporal_log) == 5
