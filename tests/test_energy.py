"""Energy accounting model."""

import pytest

from repro.analysis import EnergyModel, energy_comparison, prefetcher_energy
from repro.analysis.energy import sram_access_energy_pj


def test_sram_energy_scales_sublinearly():
    small = sram_access_energy_pj(1.0)
    big = sram_access_energy_pj(16.0)
    assert big == pytest.approx(4 * small)
    assert sram_access_energy_pj(0) == 0.0


def test_model_accumulates():
    model = EnergyModel()
    model.add_structure("t", 4.0, accesses=100)
    model.add_structure("t", 4.0, accesses=100)
    model.add_dram_transfers("d", 10)
    assert model.total_pj == pytest.approx(
        200 * sram_access_energy_pj(4.0) + 10 * 1500.0
    )


def _fake_result(issued, useless, accesses=8000):
    from repro.sim.system import RunResult
    return RunResult({
        "prefetch": {"issued": issued, "useless": useless, "useful": issued
                     - useless, "late": 0, "dropped": 0, "duplicate": 0},
        "l1d": {"accesses": accesses},
    })


def test_useless_prefetches_cost_energy():
    clean = prefetcher_energy(_fake_result(1000, 0), "a", 8 * 8192)
    dirty = prefetcher_energy(_fake_result(1000, 500), "a", 8 * 8192)
    assert dirty.total_pj > clean.total_pj


def test_bigger_tables_cost_energy():
    small = prefetcher_energy(_fake_result(1000, 0), "a", 13 * 8192)
    large = prefetcher_energy(_fake_result(1000, 0), "a", 37 * 8192)
    assert large.total_pj > small.total_pj


def test_comparison_shape():
    totals = energy_comparison([
        ("bfetch", [_fake_result(1000, 100)], 13 * 8192),
        ("sms", [_fake_result(1000, 300)], 37 * 8192),
    ])
    assert totals["sms"] > totals["bfetch"]
