"""Direction predictors: bimodal, gshare, local, tournament."""

import pytest

from repro.branch import (
    BimodalPredictor,
    GsharePredictor,
    LocalPredictor,
    TournamentConfig,
    TournamentPredictor,
)


def train(predictor, pc, outcomes):
    for taken in outcomes:
        predictor.update(pc, taken)


def test_bimodal_learns_bias():
    p = BimodalPredictor(entries=64)
    train(p, 0x100, [True] * 4)
    assert p.predict(0x100)
    train(p, 0x100, [False] * 6)
    assert not p.predict(0x100)


def test_bimodal_counter_saturates():
    p = BimodalPredictor(entries=64)
    train(p, 0x100, [True] * 100)
    index = p._index(0x100)
    assert p.table[index] == p.max_count


def test_bimodal_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        BimodalPredictor(entries=100)


def test_gshare_distinguishes_history_contexts():
    p = GsharePredictor(entries=1024, history_bits=4)
    # alternating pattern: after T the branch is NT and vice versa
    for _ in range(64):
        p.update(0x40, p.history & 1 == 0)
    correct = 0
    for _ in range(32):
        taken = p.history & 1 == 0
        correct += p.predict(0x40) == taken
        p.update(0x40, taken)
    assert correct >= 30


def test_gshare_speculative_lookup_has_no_side_effects():
    p = GsharePredictor(entries=256)
    before = (list(p.table), p.history)
    p.predict(0x123, history=0x5A)
    assert (list(p.table), p.history) == before


def test_local_learns_short_period_pattern():
    p = LocalPredictor(history_entries=64, history_bits=8)
    pattern = [True, True, False]
    for i in range(300):
        p.update(0x80, pattern[i % 3])
    correct = 0
    for i in range(30):
        taken = pattern[i % 3]
        correct += p.predict(0x80) == taken
        p.update(0x80, taken)
    assert correct >= 28


def test_tournament_beats_components_on_mixed_workload():
    p = TournamentPredictor(TournamentConfig())
    # branch A: biased taken; branch B: alternating (local-predictable)
    hits = 0
    total = 0
    state = [True]
    for i in range(2000):
        taken_a = True
        hits += p.predict(0x100) == taken_a
        p.update(0x100, taken_a)
        taken_b = state[0]
        state[0] = not state[0]
        hits += p.predict(0x200) == taken_b
        p.update(0x200, taken_b)
        total += 2
    assert hits / total > 0.95


def test_tournament_scaled_sizes():
    small = TournamentConfig(scale=0.5)
    big = TournamentConfig(scale=4.0)
    assert small.global_entries < big.global_entries
    assert TournamentPredictor(big).storage_bits() > \
        TournamentPredictor(small).storage_bits()


def test_tournament_speculative_history_lookup():
    p = TournamentPredictor()
    for _ in range(50):
        p.update(0x300, True)
    state = p.gshare.history
    p.predict(0x300, history=0x3FF)
    assert p.gshare.history == state


def test_storage_bits_positive_and_scale_monotonic():
    sizes = [
        TournamentPredictor(TournamentConfig(scale=s)).storage_bits()
        for s in (0.5, 1.0, 2.0, 4.0)
    ]
    assert all(a < b for a, b in zip(sizes, sizes[1:]))
    assert sizes[0] > 0
