"""Opcode classification predicates."""

from repro.isa import Op, is_branch, is_cond_branch, is_load, is_mem, is_store
from repro.isa.opcodes import ALU_OPS, BRANCHES, COND_BRANCHES, MEM_OPS


def test_conditional_branches_are_branches():
    for op in (Op.BEQZ, Op.BNEZ, Op.BLTZ, Op.BGEZ):
        assert is_cond_branch(op)
        assert is_branch(op)


def test_unconditional_branches_are_not_conditional():
    for op in (Op.BR, Op.JR):
        assert is_branch(op)
        assert not is_cond_branch(op)


def test_memory_classification():
    assert is_load(Op.LOAD) and not is_store(Op.LOAD)
    assert is_store(Op.STORE) and not is_load(Op.STORE)
    assert is_mem(Op.LOAD) and is_mem(Op.STORE)
    assert not is_mem(Op.ADD)


def test_classification_sets_are_disjoint():
    assert not (ALU_OPS & BRANCHES)
    assert not (ALU_OPS & MEM_OPS)
    assert not (MEM_OPS & BRANCHES)
    assert COND_BRANCHES < BRANCHES


def test_every_opcode_classified_or_misc():
    misc = {Op.NOP, Op.HALT}
    for op in Op:
        assert op in ALU_OPS or op in BRANCHES or op in MEM_OPS or op in misc
