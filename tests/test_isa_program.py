"""Program construction, label resolution, PCs, basic blocks."""

import pytest

from repro.isa import Instr, Op, Program, extract_basic_blocks
from repro.isa.program import INSTR_BYTES, ProgramError


def _loop_program():
    instrs = [
        Instr(Op.LI, rd=1, imm=4),          # 0
        Instr(Op.SUBI, rd=1, ra=1, imm=1),  # 1  loop:
        Instr(Op.BNEZ, ra=1, target=1),     # 2
        Instr(Op.HALT),                     # 3
    ]
    return Program(instrs, labels={"loop": 1}, base_pc=0x2000, name="loop")


def test_pc_assignment():
    program = _loop_program()
    assert program[0].pc == 0x2000
    assert program[2].pc == 0x2000 + 2 * INSTR_BYTES
    assert program.pc_of(3) == 0x2000 + 12
    assert program.index_of(0x2000 + 8) == 2


def test_index_of_rejects_outside_pcs():
    program = _loop_program()
    with pytest.raises(ProgramError):
        program.index_of(0x1FFC)
    with pytest.raises(ProgramError):
        program.index_of(0x2001)  # misaligned


def test_label_target_resolution():
    instrs = [
        Instr(Op.BR, target="end"),
        Instr(Op.NOP),
        Instr(Op.HALT),
    ]
    program = Program(instrs, labels={"end": 2})
    assert program[0].target == 2


def test_undefined_label_raises():
    with pytest.raises(ProgramError):
        Program([Instr(Op.BR, target="nowhere"), Instr(Op.HALT)])


def test_out_of_range_target_raises():
    with pytest.raises(ProgramError):
        Program([Instr(Op.BR, target=7), Instr(Op.HALT)])


def test_empty_program_raises():
    with pytest.raises(ProgramError):
        Program([])


def test_validate_requires_halt():
    program = Program([Instr(Op.NOP)])
    with pytest.raises(ProgramError):
        program.validate()


def test_validate_checks_register_range():
    program = Program([Instr(Op.ADDI, rd=40, ra=1, imm=0), Instr(Op.HALT)])
    with pytest.raises(ProgramError):
        program.validate()


def test_validate_accepts_well_formed():
    assert _loop_program().validate()


def test_basic_block_extraction():
    program = _loop_program()
    blocks = extract_basic_blocks(program)
    starts = [b.start for b in blocks]
    assert starts == [0, 1, 3]
    # the loop block branches back to itself and falls through to halt
    loop_block = blocks[1]
    assert set(loop_block.successors) == {1, 3}
    assert len(loop_block) == 2


def test_basic_block_fallthrough_links():
    instrs = [
        Instr(Op.NOP),                      # 0
        Instr(Op.BEQZ, ra=1, target=3),     # 1
        Instr(Op.NOP),                      # 2
        Instr(Op.HALT),                     # 3
    ]
    blocks = extract_basic_blocks(Program(instrs))
    by_start = {b.start: b for b in blocks}
    assert set(by_start[0].successors) == {3, 2}
    assert by_start[2].successors == [3]
    assert by_start[3].successors == []
