"""Property-based tests over randomly generated programs.

Generates random (but well-formed) programs through the builder and
checks whole-stack invariants: validation passes, the interpreter never
crashes or leaves the program, and the timing core terminates with
consistent accounting.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu import Machine
from repro.isa import extract_basic_blocks
from repro.sim import System, SystemConfig
from repro.workloads import Workload
from repro.workloads.builder import ProgramBuilder

_REG = st.integers(1, 30)
_IMM = st.integers(-1024, 1024)


@st.composite
def random_programs(draw):
    """A random endless-loop program: straight-line ALU/memory blocks
    separated by a conditional loop structure."""
    builder = ProgramBuilder("prop")
    builder.li(1, draw(st.integers(1, 50)))  # loop counter
    builder.li(2, 0x100000)                  # memory base
    builder.label("loop")
    body_len = draw(st.integers(1, 12))
    for _ in range(body_len):
        choice = draw(st.integers(0, 4))
        if choice == 0:
            builder.addi(draw(_REG), draw(_REG), draw(_IMM))
        elif choice == 1:
            builder.add(draw(_REG), draw(_REG), draw(_REG))
        elif choice == 2:
            builder.load(draw(_REG), abs(draw(_IMM)), 2)
        elif choice == 3:
            builder.store(draw(_REG), abs(draw(_IMM)), 2)
        else:
            builder.xor(draw(_REG), draw(_REG), draw(_REG))
    builder.addi(2, 2, draw(st.integers(0, 256)))
    builder.subi(1, 1, 1)
    builder.bnez(1, "loop")
    builder.li(1, draw(st.integers(1, 50)))
    builder.br("loop")
    builder.halt()
    return builder.build()


@given(random_programs())
@settings(max_examples=25, deadline=None)
def test_generated_programs_validate_and_run(program):
    assert program.validate()
    machine = Machine(program)
    for _ in range(2000):
        machine.step()
    assert machine.instret == 2000


@given(random_programs())
@settings(max_examples=15, deadline=None)
def test_basic_blocks_partition_program(program):
    blocks = extract_basic_blocks(program)
    covered = []
    for block in blocks:
        covered.extend(range(block.start, block.end))
    assert covered == list(range(len(program)))


@given(random_programs(), st.sampled_from(["none", "stride", "bfetch"]))
@settings(max_examples=10, deadline=None)
def test_timing_core_terminates_with_consistent_accounting(program, pf):
    system = System(Workload("prop", program, {}),
                    SystemConfig(prefetcher=pf))
    result = system.run(3000)
    assert result.instructions >= 3000
    assert result.cycles > 0
    stats = result.data["prefetch"]
    assert stats["useful"] + stats["useless"] <= stats["issued"]
    for level in ("l1d", "l2", "llc"):
        data = result.data[level]
        assert data["hits"] + data["misses"] == data["accesses"]
