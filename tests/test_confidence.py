"""Confidence estimators and path confidence."""

import pytest

from repro.branch import (
    CompositeConfidenceEstimator,
    JRSEstimator,
    PathConfidence,
    SelfCounterEstimator,
    UpDownEstimator,
)


def test_jrs_resets_on_mispredict():
    e = JRSEstimator(entries=64)
    for _ in range(10):
        e.update(0x40, 0, correct=True)
    high = e.probability(0x40, 0)
    e.update(0x40, 0, correct=False)
    assert e.probability(0x40, 0) < high
    assert e.probability(0x40, 0) == pytest.approx(0.70)


def test_jrs_history_distinguishes_contexts():
    e = JRSEstimator(entries=1024)
    for _ in range(10):
        e.update(0x40, 0x1, correct=True)
    assert e.probability(0x40, 0x1) > e.probability(0x40, 0x2)


def test_updown_moves_gradually():
    e = UpDownEstimator(entries=64)
    start = e.probability(0x40)
    e.update(0x40, 0, correct=True)
    assert e.probability(0x40) > start
    for _ in range(20):
        e.update(0x40, 0, correct=False)
    assert e.probability(0x40) == pytest.approx(0.70)


def test_self_counter_tracks_direction_streaks():
    e = SelfCounterEstimator(entries=64)
    for _ in range(10):
        e.update(0x40, 0, correct=True, taken=True)
    high = e.probability(0x40)
    e.update(0x40, 0, correct=True, taken=False)  # direction change
    assert e.probability(0x40) < high


def test_composite_is_mean_of_components():
    c = CompositeConfidenceEstimator(entries=64)
    p = c.probability(0x80, 0)
    parts = (
        c.jrs.probability(0x80, 0)
        + c.updown.probability(0x80, 0)
        + c.selfc.probability(0x80, 0)
    ) / 3.0
    assert p == pytest.approx(parts)


def test_composite_probability_bounds():
    c = CompositeConfidenceEstimator(entries=64)
    for _ in range(100):
        c.update(0x10, 0, correct=True, taken=True)
    assert 0.5 < c.probability(0x10, 0) <= 1.0


def test_composite_storage_fits_2kb_budget():
    bits = CompositeConfidenceEstimator(entries=1024).storage_bits()
    assert bits <= 2 * 8 * 1024


def test_path_confidence_product():
    path = PathConfidence(threshold=0.75)
    path.extend(0.9)
    path.extend(0.9)
    assert path.value == pytest.approx(0.81)
    assert path.confident
    path.extend(0.9)
    assert not path.confident
    assert path.depth == 3


def test_path_confidence_validates_inputs():
    with pytest.raises(ValueError):
        PathConfidence(threshold=0.0)
    path = PathConfidence()
    with pytest.raises(ValueError):
        path.extend(1.5)


def test_path_confidence_depth_at_threshold():
    """At the paper's 0.75 threshold with ~0.97 per-branch confidence the
    lookahead should run roughly 8-10 blocks deep."""
    path = PathConfidence(threshold=0.75)
    while path.confident:
        path.extend(0.97)
    assert 7 <= path.depth <= 11
