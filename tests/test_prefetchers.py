"""Baseline prefetchers: base class, next-n, stride, SMS, perfect, tango."""

import pytest

from repro.isa import Instr, Op, Program
from repro.memory import HierarchyConfig, MemoryHierarchy
from repro.prefetchers import (
    NextNPrefetcher,
    PerfectPrefetcher,
    Prefetcher,
    SMSPrefetcher,
    StridePrefetcher,
    TangoPrefetcher,
)


def drain_addrs(prefetcher):
    out = []
    while True:
        request = prefetcher.queue.pop()
        if request is None:
            return out
        out.append(request[0])


class TestBase:
    def test_noop_hooks(self):
        p = Prefetcher()
        p.on_load(0, 0, True, 0)
        p.on_branch_decode(0, True, 0, 0)
        assert len(p.queue) == 0

    def test_push_dedups_recent_blocks(self):
        p = Prefetcher()
        p.push(0x1000)
        p.push(0x1008)  # same block
        assert len(p.queue) == 1
        assert p.stats.duplicate == 1

    def test_drain_issues_and_counts_duplicates(self):
        p = Prefetcher()
        h = MemoryHierarchy(HierarchyConfig())
        p.push(0x1000)
        p.drain(h, 0, 4)
        assert p.stats.issued == 1
        # push a different address in the same block is deduped at push;
        # force a queue-level duplicate by clearing the recent filter
        p._recent.clear()
        p.push(0x1000)
        p.drain(h, 0, 4)
        assert p.stats.duplicate >= 1

    def test_feedback_accounting_is_disjoint(self):
        p = Prefetcher()
        p.feedback(None, "useful")
        p.feedback(None, "late")
        p.feedback(None, "useless")
        # useful / late / useless are disjoint outcome counters
        assert p.stats.useful == 1
        assert p.stats.late == 1
        assert p.stats.useless == 1
        assert p.stats.resolved == 3
        # accuracy counts demanded (useful + late) over resolved
        assert p.stats.accuracy == pytest.approx(2 / 3)
        assert p.stats.timeliness == pytest.approx(1 / 2)


class TestNextN:
    def test_prefetches_sequential_blocks_on_miss(self):
        p = NextNPrefetcher(n=3)
        p.on_load(0x40, 0x1000, hit=False, now=0)
        assert drain_addrs(p) == [0x1040, 0x1080, 0x10C0]

    def test_no_action_on_hit(self):
        p = NextNPrefetcher(n=3)
        p.on_load(0x40, 0x1000, hit=True, now=0)
        assert len(p.queue) == 0


class TestStride:
    def test_learns_stride_and_bursts_on_miss(self):
        p = StridePrefetcher(entries=64, degree=4)
        base = 0x10000
        addrs = []
        for i in range(6):
            p.on_load(0x100, base + i * 256, hit=False, now=0)
            addrs.extend(drain_addrs(p))
        expected_front = base + 5 * 256 + 256
        assert expected_front in addrs

    def test_does_not_issue_on_hits(self):
        p = StridePrefetcher(entries=64, degree=4)
        for i in range(6):
            p.on_load(0x100, 0x10000 + i * 256, hit=True, now=0)
        assert len(p.queue) == 0

    def test_stride_break_stops_prefetching(self):
        p = StridePrefetcher(entries=64, degree=4)
        for i in range(5):
            p.on_load(0x100, 0x10000 + i * 256, hit=False, now=0)
        drain_addrs(p)
        p._recent.clear()
        p.on_load(0x100, 0x90000, hit=False, now=0)  # wild jump
        assert drain_addrs(p) == []

    def test_zero_stride_never_prefetches(self):
        p = StridePrefetcher(entries=64, degree=4)
        for _ in range(6):
            p.on_load(0x100, 0x10000, hit=False, now=0)
        assert drain_addrs(p) == []

    def test_storage_bits(self):
        assert StridePrefetcher(entries=256).storage_bits() == 256 * 80


class TestSMS:
    def test_pattern_learned_and_replayed(self):
        p = SMSPrefetcher()
        region = 0x100000  # 2KB-aligned
        # generation in region 0: touch blocks 0, 3, 7
        for offset_block in (0, 3, 7):
            p.on_load(0x200, region + offset_block * 64,
                      hit=offset_block != 0, now=0)
        # end the generation via an L1 eviction of a region block
        p.on_l1d_eviction(region, None)
        # same trigger PC+offset in a new region replays blocks 3 and 7
        new_region = 0x200000
        p.on_load(0x200, new_region, hit=False, now=0)
        addrs = drain_addrs(p)
        assert new_region + 3 * 64 in addrs
        assert new_region + 7 * 64 in addrs
        assert new_region not in addrs  # trigger block excluded

    def test_no_replay_without_matching_trigger(self):
        p = SMSPrefetcher()
        region = 0x100000
        p.on_load(0x200, region, hit=False, now=0)
        p.on_l1d_eviction(region, None)
        # different trigger offset -> different PHT key
        p.on_load(0x200, 0x200000 + 5 * 64, hit=False, now=0)
        assert drain_addrs(p) == []

    def test_agt_capacity_commits_victims(self):
        p = SMSPrefetcher()
        for i in range(p.config.agt_entries + 5):
            # vary the trigger offset so displaced generations land in
            # distinct PHT slots
            addr = 0x100000 + i * p.config.region_bytes + (i % 7) * 64
            p.on_load(0x300, addr, hit=False, now=0)
        assert len(p.agt) <= p.config.agt_entries
        assert len(p.pht) >= 5

    def test_stores_train_too(self):
        p = SMSPrefetcher()
        p.on_store(0x400, 0x100000, hit=False, now=0)
        assert len(p.agt) == 1


class TestPerfect:
    def test_marker(self):
        assert PerfectPrefetcher().is_perfect
        assert not SMSPrefetcher().is_perfect


class TestTango:
    def test_branch_directed_ea_history_prefetch(self):
        p = TangoPrefetcher()
        program = Program(
            [
                Instr(Op.BNEZ, ra=1, target=2),   # 0: branch
                Instr(Op.NOP),                    # 1
                Instr(Op.LOAD, rd=2, ra=3, imm=0),  # 2: load in target BB
                Instr(Op.HALT),                   # 3
            ]
        )
        branch, load = program[0], program[2]
        regs = [0] * 32
        # two training rounds establish last EA + delta
        p.on_commit(branch, None, True, program.pc_of(2), regs, 0)
        p.on_commit(load, 0x5000, False, program.pc_of(3), regs, 0)
        p.on_commit(branch, None, True, program.pc_of(2), regs, 0)
        p.on_commit(load, 0x5100, False, program.pc_of(3), regs, 0)
        # decode-time: predicted taken to the same target
        p.on_branch_decode(branch.pc, True, program.pc_of(2), 0)
        addrs = drain_addrs(p)
        assert addrs == [0x5200]  # last EA + learned delta
