"""Analysis modules: variation CDFs, overhead, fetch breakdown, reporting."""

import pytest

from repro.analysis import (
    VariationCDF,
    bfetch_overhead_kb,
    collect_variation,
    fetch_branch_breakdown,
    overhead_table,
    render_cdf,
    render_series,
    render_table,
    sms_overhead_kb,
)
from repro.analysis.overhead import storage_saving_vs_sms
from repro.workloads import build_workload


class TestVariationCDF:
    def test_cdf_monotonic_and_bounded(self):
        cdf = VariationCDF()
        for delta in (0, 64, 128, 5000):
            cdf.add(delta)
        values = cdf.cumulative()
        assert all(0 <= v <= 1 for v in values)
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0)

    def test_overflow_bin(self):
        cdf = VariationCDF(max_blocks=4)
        cdf.add(10_000_000)
        assert cdf.fraction_within(3) == 0.0
        assert cdf.fraction_within(4) == 1.0

    def test_empty_cdf(self):
        assert VariationCDF().cumulative()[0] == 0.0


def test_collect_variation_register_more_stable_than_ea():
    """The paper's Fig. 3 claim: register contents vary far less than
    effective addresses across basic blocks."""
    reg, ea = collect_variation(build_workload("libquantum"),
                                instructions=30_000)
    for window in (1, 3, 12):
        assert reg[window].total > 0 and ea[window].total > 0
    assert reg[1].fraction_within(1) > ea[1].fraction_within(1)


def test_collect_variation_stability_decreases_with_window():
    reg, _ = collect_variation(build_workload("milc"), instructions=30_000)
    assert reg[1].fraction_within(1) >= reg[12].fraction_within(1)


class TestOverhead:
    def test_table1_totals(self):
        _, bf_total, sms_total = overhead_table()
        assert bf_total == pytest.approx(12.84, abs=0.01)
        assert sms_total == pytest.approx(36.57, abs=0.01)

    def test_component_values(self):
        bf = bfetch_overhead_kb()
        assert bf["Branch Trace Cache"] == pytest.approx(2.06, abs=0.01)
        assert bf["Memory History Table"] == pytest.approx(4.5, abs=0.02)
        assert bf["Per-Load Prefetch Filter"] == pytest.approx(2.25, abs=0.01)
        sms = sms_overhead_kb()
        assert sms["Pattern History Table"] == pytest.approx(36.0, abs=0.01)

    def test_headline_saving(self):
        # the paper claims 65% less storage than SMS
        assert storage_saving_vs_sms() == pytest.approx(0.65, abs=0.02)

    def test_overhead_scales_with_entries(self):
        small = bfetch_overhead_kb(brtc_entries=64, mht_entries=64)
        assert small["TOTAL"] < bfetch_overhead_kb()["TOTAL"]


class TestFetchBreakdown:
    def test_fractions_sum_to_one(self):
        class Fake:
            data = {"fetch_branch_hist": [0, 80, 15, 4, 1]}
        breakdown = fetch_branch_breakdown([Fake()])
        assert sum(breakdown[n] for n in range(1, 5)) == pytest.approx(1.0)
        assert breakdown["cumulative_2"] == pytest.approx(0.95)

    def test_empty(self):
        class Fake:
            data = {"fetch_branch_hist": [0, 0, 0, 0, 0]}
        assert fetch_branch_breakdown([Fake()])["cumulative_2"] == 1.0


class TestReporting:
    def test_render_table(self):
        text = render_table("T", [("x", {"a": 1.0})], ["a"])
        assert "== T ==" in text and "1.000" in text

    def test_render_series(self):
        text = render_series("S", [("p1", 2.0), ("p2", 3.0)])
        assert "p1" in text and "3.000" in text

    def test_render_cdf(self):
        cdf = VariationCDF()
        cdf.add(0)
        text = render_cdf("C", {1: cdf})
        assert "1BB" in text

    def test_render_bars(self):
        from repro.analysis.reporting import render_bars
        text = render_bars("B", [("a", 2.0), ("b", 1.0)])
        lines = text.splitlines()
        assert lines[1].count("#") == 2 * lines[2].count("#")

    def test_render_bars_empty_and_zero(self):
        from repro.analysis.reporting import render_bars
        assert render_bars("B", []) == "== B =="
        assert "#" not in render_bars("B", [("a", 0.0)])
