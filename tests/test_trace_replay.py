"""Trace substrate: record once, re-time many, trust nothing.

The headline guarantee (DESIGN.md "Trace substrate"): driving the
timing model off a recorded functional trace produces *byte-identical*
:class:`RunResult` payloads to lockstep functional execution -- for
every catalog prefetcher, on single-core systems and on the shared-LLC
CMP.  A stored trace is never trusted: truncation, corruption, a
version bump or a metadata mismatch all fall back to recording.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cpu.functional import write_regs_of
from repro.sim.cmp import CMPSystem
from repro.sim.config import PREFETCHER_NAMES, SystemConfig
from repro.sim.runner import ExperimentRunner, RunRequest
from repro.sim.system import RunResult, System
from repro.trace.format import TRACE_MAGIC, TraceError, decode_trace
from repro.trace.record import record_trace, trace_meta
from repro.trace.replay import TraceReplaySource
from repro.trace.store import (
    TraceStore,
    clear_memos,
    replay_counters,
    replay_mode,
    replay_source_for,
    reset_counters,
    trace_digest,
)
from repro.workloads.spec import build_workload

STEPS = 12_000


@pytest.fixture(autouse=True)
def _fresh_trace_state(monkeypatch):
    """Isolate every test from process-local memos and the env knob."""
    clear_memos()
    reset_counters()
    monkeypatch.delenv("REPRO_TRACE_REPLAY", raising=False)
    yield
    clear_memos()
    reset_counters()


def _record(benchmark="mcf", steps=STEPS):
    workload = build_workload(benchmark)
    blob, trace = record_trace(workload, steps)
    return workload, blob, trace


def _result(system, budget, prefetcher):
    system.run(budget)
    return RunResult.from_core(
        system.core, system.workload.name, prefetcher).data


# ----------------------------------------------------------------------
# format: roundtrip + rejection


def test_encode_decode_roundtrip():
    workload, blob, trace = _record()
    decoded = decode_trace(blob, write_regs_of(workload.program))
    assert decoded.meta == trace.meta
    assert decoded.records == trace.records
    assert decoded.final_state == trace.final_state


def test_truncated_trace_rejected():
    workload, blob, _trace = _record(steps=2_000)
    reg_of = write_regs_of(workload.program)
    for cut in (0, 3, len(blob) // 2, len(blob) - 1):
        with pytest.raises(TraceError):
            decode_trace(blob[:cut], reg_of)


def test_corrupt_trace_rejected():
    workload, blob, _trace = _record(steps=2_000)
    reg_of = write_regs_of(workload.program)
    # flip one byte in the body (past the header region)
    corrupt = bytearray(blob)
    corrupt[len(blob) - len(blob) // 4] ^= 0xFF
    with pytest.raises(TraceError):
        decode_trace(bytes(corrupt), reg_of)


def test_version_mismatch_rejected():
    workload, blob, _trace = _record(steps=2_000)
    reg_of = write_regs_of(workload.program)
    assert blob[:4] == TRACE_MAGIC
    bumped = blob[:4] + bytes([blob[4] + 1]) + blob[5:]
    with pytest.raises(TraceError):
        decode_trace(bumped, reg_of)


def test_meta_binding_rejected():
    workload, blob, _trace = _record(steps=2_000)
    other = trace_meta(workload, 2_001, 0)
    with pytest.raises(TraceError):
        decode_trace(blob, write_regs_of(workload.program),
                     expect_meta=other)


# ----------------------------------------------------------------------
# byte-identity: replay vs lockstep


@pytest.mark.parametrize("prefetcher", PREFETCHER_NAMES)
def test_replay_identical_single_core(prefetcher):
    workload, _blob, trace = _record()
    config = SystemConfig(prefetcher=prefetcher)
    expected = _result(System(workload, config), STEPS, prefetcher)
    replayed = _result(
        System(workload, config,
               replay=TraceReplaySource(workload, trace)),
        STEPS, prefetcher)
    assert replayed == expected


@pytest.mark.parametrize("prefetcher", ["none", "stride", "sms", "bfetch"])
def test_replay_identical_cmp(prefetcher):
    mix = ["mcf", "libquantum", "soplex", "astar"]
    steps = 6_000
    workloads = [build_workload(name) for name in mix]
    traces = [record_trace(w, steps)[1] for w in workloads]
    config = SystemConfig(prefetcher=prefetcher)
    expected = [r.data for r in CMPSystem(workloads, config).run(steps)]
    replays = [TraceReplaySource(w, t)
               for w, t in zip(workloads, traces)]
    replayed = [r.data for r in
                CMPSystem(workloads, config, replays=replays).run(steps)]
    assert replayed == expected


def test_replay_identical_perceptron_predictor():
    workload, _blob, trace = _record()
    config = SystemConfig(prefetcher="bfetch",
                          branch_predictor="perceptron")
    expected = _result(System(workload, config), STEPS, "bfetch")
    replayed = _result(
        System(workload, config,
               replay=TraceReplaySource(workload, trace)),
        STEPS, "bfetch")
    assert replayed == expected


def test_replay_live_continuation_past_window():
    """A budget beyond the recorded window continues on a real machine
    built from the trailer -- still byte-identical."""
    workload, _blob, trace = _record(steps=4_000)
    config = SystemConfig(prefetcher="stride")
    expected = _result(System(workload, config), STEPS, "stride")
    replayed = _result(
        System(workload, config,
               replay=TraceReplaySource(workload, trace)),
        STEPS, "stride")
    assert replayed == expected


def test_verify_chunk_accepts_faithful_trace():
    workload, _blob, trace = _record(steps=3_000)
    source = TraceReplaySource(workload, trace)
    for _ in range(3_000):
        source.step()
    source.verify_chunk()  # must not raise


def test_verify_chunk_catches_tampered_record():
    workload, _blob, trace = _record(steps=3_000)
    index, taken, ea, value = trace.records[1_500]
    trace.records[1_500] = (index, taken,
                            (ea + 64) if ea is not None else 64, value)
    source = TraceReplaySource(workload, trace)
    for _ in range(3_000):
        source.step()
    with pytest.raises(TraceError):
        source.verify_chunk()


# ----------------------------------------------------------------------
# store: content addressing, fallback-to-record, never trusted


def test_store_roundtrip_and_content_addressing(tmp_path):
    store = TraceStore(str(tmp_path))
    workload = build_workload("mcf")
    trace = store.record(workload, 2_000)
    assert trace.digest == trace_digest(trace.meta)
    path = store.path_for(trace.digest)
    assert os.path.exists(path)
    clear_memos()
    loaded = store.load(workload, 2_000)
    assert loaded is not None
    assert loaded.records == trace.records
    assert store.stats()["entries"] == 1


def test_store_corrupt_file_falls_back_to_recording(tmp_path):
    store = TraceStore(str(tmp_path))
    workload = build_workload("mcf")
    trace = store.record(workload, 2_000)
    path = store.path_for(trace.digest)
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    blob[len(blob) // 2] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))
    clear_memos()
    reset_counters()
    assert store.load(workload, 2_000) is None
    assert replay_counters["fallback"] == 1
    assert not os.path.exists(path)  # corrupt entry evicted
    again = store.get_or_record(workload, 2_000)
    assert again.records == trace.records
    assert replay_counters["recorded"] == 1


def test_store_truncated_file_falls_back(tmp_path):
    store = TraceStore(str(tmp_path))
    workload = build_workload("mcf")
    trace = store.record(workload, 2_000)
    path = store.path_for(trace.digest)
    with open(path, "rb") as handle:
        blob = handle.read()
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 3])
    clear_memos()
    reset_counters()
    assert store.load(workload, 2_000) is None
    assert replay_counters["fallback"] == 1


# ----------------------------------------------------------------------
# runner integration: REPRO_TRACE_REPLAY


def test_replay_mode_parsing(monkeypatch):
    for raw, expected in [("", "off"), ("off", "off"), ("0", "off"),
                          ("auto", "auto"), ("ON", "on")]:
        monkeypatch.setenv("REPRO_TRACE_REPLAY", raw)
        assert replay_mode() == expected
    monkeypatch.setenv("REPRO_TRACE_REPLAY", "junk")
    with pytest.raises(ValueError):
        replay_mode()


def _sweep_requests(steps=4_000):
    return [RunRequest(bench, prefetcher, steps)
            for bench in ("mcf", "libquantum")
            for prefetcher in ("none", "stride", "bfetch")]


def test_runner_auto_records_then_replays(tmp_path, monkeypatch):
    expected = [r.as_dict() for r in
                ExperimentRunner().run_many(_sweep_requests(), jobs=1)]
    reset_counters()
    monkeypatch.setenv("REPRO_TRACE_REPLAY", "auto")
    cache = str(tmp_path / "cache")
    runner = ExperimentRunner(cache_dir=cache)
    first = [r.as_dict() for r in runner.run_many(_sweep_requests(),
                                                  jobs=1)]
    assert first == expected
    assert replay_counters["recorded"] == 2  # one trace per benchmark
    assert replay_counters["replayed"] == 6
    assert replay_counters["lockstep"] == 0
    # a second sweep over new configs replays off the stored traces
    reset_counters()
    clear_memos()
    import shutil
    shutil.rmtree(os.path.join(cache, "single"))
    fresh = ExperimentRunner(cache_dir=cache)
    second = [r.as_dict() for r in fresh.run_many(_sweep_requests(),
                                                  jobs=1)]
    assert second == expected
    assert replay_counters["recorded"] == 0
    assert replay_counters["replayed"] == 6
    assert replay_counters["lockstep"] == 0


def test_runner_mix_replay_identical(tmp_path, monkeypatch):
    mix = ["mcf", "libquantum"]
    expected = [r.as_dict() for r in
                ExperimentRunner().run_mix(mix, "bfetch", 4_000)]
    reset_counters()
    monkeypatch.setenv("REPRO_TRACE_REPLAY", "auto")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = [r.as_dict() for r in runner.run_mix(mix, "bfetch", 4_000)]
    assert got == expected
    assert replay_counters["replayed"] == 1


def test_runner_off_never_touches_traces(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_REPLAY", "off")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    runner.run_single("mcf", "none", 2_000)
    assert not os.path.isdir(os.path.join(str(tmp_path), "ftrace"))
    assert replay_counters["lockstep"] == 1


def test_replay_source_for_on_mode_raises(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_REPLAY", "on")
    workload = build_workload("mcf")
    # unwritable cache dir -> record() cannot persist -> "on" propagates
    blocked = tmp_path / "blocked"
    blocked.write_text("a file, not a directory")
    with pytest.raises(Exception):
        replay_source_for(workload, 2_000,
                          cache_dir=str(blocked / "sub"))


def test_corrupt_result_cache_with_replay_converges(tmp_path, monkeypatch):
    """REPRO_FAULTS corrupt-cache garbles result entries; with replay on
    the re-computation is trace-driven and still lands the clean
    result."""
    expected = ExperimentRunner().run_single("mcf", "stride",
                                             4_000).as_dict()
    monkeypatch.setenv("REPRO_TRACE_REPLAY", "auto")
    monkeypatch.setenv("REPRO_FAULTS", "corrupt-cache:1.0")
    cache = str(tmp_path / "cache")
    first = ExperimentRunner(cache_dir=cache).run_single(
        "mcf", "stride", 4_000).as_dict()
    assert first == expected
    # the corrupt entry is detected on the next probe and recomputed
    monkeypatch.delenv("REPRO_FAULTS")
    clear_memos()
    second = ExperimentRunner(cache_dir=cache).run_single(
        "mcf", "stride", 4_000).as_dict()
    assert second == expected


# ----------------------------------------------------------------------
# determinism across processes


def test_replay_deterministic_across_processes(tmp_path):
    """Recording in one process and replaying in another yields the
    same trace digest and the same result payload."""
    script = r"""
import json, os, sys
sys.path.insert(0, %(src)r)
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
os.environ["REPRO_TRACE_REPLAY"] = "auto"
runner = ExperimentRunner(cache_dir=%(cache)r)
result = runner.run_single("mcf", "bfetch", 4000)
from repro.trace.store import replay_counters
print(json.dumps({"result": result.as_dict(),
                  "counters": replay_counters}))
"""
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    cache = str(tmp_path / "cache")
    outputs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c",
             script % {"src": src, "cache": cache}],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        outputs.append(json.loads(proc.stdout))
    assert outputs[0]["result"] == outputs[1]["result"]
    assert outputs[0]["counters"]["recorded"] == 1
    # second process: trace loaded from disk, nothing recorded
    assert outputs[1]["counters"]["recorded"] == 0
    assert outputs[1]["counters"]["fallback"] == 0


# ----------------------------------------------------------------------
# sanitizer + checkpoint interplay


def test_sanitizer_full_cross_validates_replay():
    from repro.sanitize import Sanitizer

    workload, _blob, trace = _record(steps=6_000)
    system = System(workload, SystemConfig(prefetcher="stride"),
                    replay=TraceReplaySource(workload, trace))
    sanitizer = Sanitizer("full", interval=512)
    system.run(6_000, sanitizer=sanitizer)
    assert sanitizer.checks_run > 0
    assert sanitizer.violations == 0


def test_sanitizer_full_catches_divergent_trace():
    from repro.sanitize import Sanitizer
    from repro.sanitize.errors import SanitizerError

    workload, _blob, trace = _record(steps=6_000)
    index, taken, ea, value = trace.records[100]
    trace.records[100] = (index, taken,
                          (ea + 64) if ea is not None else 64, value)
    system = System(workload, SystemConfig(prefetcher="stride"),
                    replay=TraceReplaySource(workload, trace))
    sanitizer = Sanitizer("full", interval=512)
    with pytest.raises(SanitizerError):
        system.run(6_000, sanitizer=sanitizer)


def test_checkpoint_engine_mismatch_rejected(tmp_path):
    """A lockstep checkpoint must not restore into a replay system (and
    vice versa): the engines store different machine state."""
    from repro.checkpoint import CheckpointError

    workload, _blob, trace = _record(steps=4_000)
    config = SystemConfig(prefetcher="none")
    lockstep = System(workload, config)
    lockstep.run(2_000)
    state = lockstep.snapshot()
    replaying = System(workload, config,
                       replay=TraceReplaySource(workload, trace))
    with pytest.raises(CheckpointError):
        replaying.restore(state)


# ----------------------------------------------------------------------
# cache maintenance (runner.cache_stats / cache_gc)


def test_cache_stats_and_gc(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_REPLAY", "auto")
    cache = str(tmp_path)
    runner = ExperimentRunner(cache_dir=cache)
    runner.run_single("mcf", "stride", 2_000)
    stats = runner.cache_stats()
    assert stats["single"]["entries"] == 1
    assert stats["ftrace"]["entries"] == 1
    assert stats["ftrace"]["bytes"] > 0
    # nothing is old enough yet
    assert runner.cache_gc(3600)["removed"] == 0
    # age everything artificially and collect
    for dirpath, _dirs, files in os.walk(cache):
        for name in files:
            path = os.path.join(dirpath, name)
            os.utime(path, (0, 0))
    summary = runner.cache_gc(60)
    assert summary["removed"] == 2
    assert summary["bytes"] > 0
    stats = runner.cache_stats()
    assert all(block["entries"] == 0 for block in stats.values())
