"""End-to-end System assembly and RunResult contents."""

import pytest

from repro.sim import RunResult, System, SystemConfig
from repro.sim.config import PREFETCHER_NAMES, make_prefetcher
from repro.workloads import build_workload


def test_unknown_prefetcher_rejected():
    with pytest.raises(ValueError):
        SystemConfig(prefetcher="oracle9000")


@pytest.mark.parametrize("name", PREFETCHER_NAMES)
def test_factory_builds_every_prefetcher(name):
    prefetcher = make_prefetcher(SystemConfig(prefetcher=name))
    assert prefetcher.storage_bits() >= 0


def test_run_result_contents():
    system = System(build_workload("gamess"), SystemConfig())
    result = system.run(10_000)
    data = result.as_dict()
    assert data["instructions"] >= 10_000
    assert data["cycles"] > 0
    assert 0 < data["ipc"] < 8
    assert data["workload"] == "gamess"
    assert data["prefetcher"] == "none"
    for key in ("l1d", "l2", "llc", "prefetch", "fetch_branch_hist"):
        assert key in data


def test_run_result_attribute_access():
    result = RunResult({"ipc": 1.5})
    assert result.ipc == 1.5
    with pytest.raises(AttributeError):
        result.nonexistent


def test_bfetch_result_extra_fields():
    system = System(build_workload("libquantum"),
                    SystemConfig(prefetcher="bfetch"))
    result = system.run(15_000)
    assert "mean_lookahead_depth" in result.data
    assert result.data["brtc_hit_rate"] >= 0


def test_systems_are_isolated():
    """Two systems over the same workload must not share memory state."""
    workload = build_workload("mcf")
    a = System(workload, SystemConfig())
    b = System(workload, SystemConfig())
    a.machine.memory[0xDEAD0] = 42
    assert b.machine.memory.get(0xDEAD0) != 42


def test_describe_matches_table2():
    rows = dict(SystemConfig().describe())
    assert "4-wide" in rows["CPU"]
    assert "192-entry ROB" in rows["CPU"]
    assert "64KB 8-way" in rows["L1I & L1D cache"]
    assert "256KB" in rows["L2 cache"]
    assert "2MB/core 16-way" in rows["Shared L3 cache"]
    assert rows["Branch path confidence threshold"] == "0.75"
    assert rows["Per-load filter threshold"] == "3"


def test_prefetcher_improves_memory_bound_benchmark():
    base = System(build_workload("libquantum"), SystemConfig())
    bf = System(build_workload("libquantum"), SystemConfig(prefetcher="bfetch"))
    base_result = base.run(40_000)
    bf_result = bf.run(40_000)
    assert bf_result.ipc > 1.5 * base_result.ipc


def test_perfect_dominates_on_memory_bound():
    base = System(build_workload("milc"), SystemConfig())
    oracle = System(build_workload("milc"), SystemConfig(prefetcher="perfect"))
    assert oracle.run(30_000).ipc > base.run(30_000).ipc


def test_compute_bound_benchmark_insensitive():
    base = System(build_workload("gamess"), SystemConfig())
    bf = System(build_workload("gamess"), SystemConfig(prefetcher="bfetch"))
    ratio = bf.run(30_000).ipc / base.run(30_000).ipc
    assert 0.95 < ratio < 1.1
