"""Observability layer: stats registry, tracer, profiler, and the
stats-correctness satellite fixes (disjoint feedback counters, derived
ratios, block-geometry plumbing, byte-identity with tracing off)."""

import copy
import json
import os
import pickle

import pytest

from repro.memory.stats import PrefetchStats
from repro.obs import (
    Counter,
    Histogram,
    Profiler,
    StatsRegistry,
    TraceConfigError,
    Tracer,
)
from repro.obs.io import atomic_write_text
from repro.obs.trace import parse_trace_spec, validate_event, validate_jsonl
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers import Prefetcher
from repro.sim.config import SystemConfig
from repro.sim.metrics import normalize, weighted_speedup
from repro.sim.system import RunResult, System
from repro.workloads.spec import build_workload


# ----------------------------------------------------------------------
# StatsRegistry


class TestRegistry:
    def test_counter_and_dump_sorted(self):
        reg = StatsRegistry()
        reg.counter("b.second", "desc b")
        counter = reg.counter("a.first", "desc a")
        counter.inc()
        counter.inc(4)
        dump = reg.dump()
        assert list(dump) == ["a.first", "b.second"]
        assert dump["a.first"] == 5

    def test_duplicate_name_rejected(self):
        reg = StatsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.counter("x")

    def test_histogram_overflow_bucket_and_mean(self):
        hist = Histogram("h", buckets=4)
        hist.sample(0)
        hist.sample(1, count=2)
        hist.sample(99)  # lands in the overflow (last) bucket
        assert hist.value[0] == 1
        assert hist.value[1] == 2
        assert hist.value[-1] == 1
        assert hist.total == 4

    def test_ratio_is_lazy_and_guarded(self):
        reg = StatsRegistry()
        numer = Counter("n")
        denom = Counter("d")
        ratio = reg.ratio("r", lambda: numer.value, lambda: denom.value)
        assert ratio.value == 0.0  # 0/0 -> defined as 0.0
        numer.inc(3)
        denom.inc(4)
        assert ratio.value == pytest.approx(0.75)

    def test_adopt_is_a_live_view_and_reset_zeroes_in_place(self):
        reg = StatsRegistry()
        stats = PrefetchStats()
        reg.adopt("pf.test", stats)
        stats.issued += 7
        assert reg.dump()["pf.test.issued"] == 7
        reg.reset()
        assert stats.issued == 0
        stats.issued += 2  # same object still adopted after reset
        assert reg.dump()["pf.test.issued"] == 2

    def test_as_dict_nests_on_dots(self):
        reg = StatsRegistry()
        reg.counter("core.rob.full_stalls")
        reg.counter("core.cycle")
        nested = reg.as_dict()
        assert nested["core"]["rob"]["full_stalls"] == 0
        assert nested["core"]["cycle"] == 0

    def test_format_filters_by_substring(self):
        reg = StatsRegistry()
        reg.counter("mem.l1d.misses", "demand misses")
        reg.counter("core.cycle")
        text = reg.format("l1d")
        assert "mem.l1d.misses" in text
        assert "core.cycle" not in text
        assert "# demand misses" in text


# ----------------------------------------------------------------------
# Tracer


class TestTraceSpec:
    def test_all_expands_to_every_category(self):
        from repro.obs.trace import CATEGORIES
        rates = parse_trace_spec("all")
        assert set(rates) == set(CATEGORIES)
        assert all(rate == 1.0 for rate in rates.values())

    def test_per_category_sampling_rates(self):
        rates = parse_trace_spec("bfetch,cache:0.01")
        assert rates["bfetch"] == 1.0
        assert rates["cache"] == pytest.approx(0.01)

    def test_unknown_category_and_bad_rate_raise(self):
        with pytest.raises(TraceConfigError):
            parse_trace_spec("nonsense")
        with pytest.raises(TraceConfigError):
            parse_trace_spec("cache:0")
        with pytest.raises(TraceConfigError):
            parse_trace_spec("cache:2.0")

    def test_empty_spec_means_off(self):
        assert parse_trace_spec(None) == {}
        assert parse_trace_spec("") == {}


class TestTracer:
    def test_channel_none_when_category_disabled(self):
        tracer = Tracer({"bfetch": 1.0})
        assert tracer.channel("bfetch") is not None
        assert tracer.channel("cache") is None

    def test_events_carry_category_event_and_cycle(self):
        tracer = Tracer({"bfetch": 1.0})
        tracer.channel("bfetch").emit("walk", 42, pc=0x1000, depth=3)
        [event] = tracer.events
        assert event["cat"] == "bfetch"
        assert event["ev"] == "walk"
        assert event["cycle"] == 42
        assert event["pc"] == 0x1000
        assert validate_event(event) == []

    def test_sampling_is_deterministic_error_diffusion(self):
        def emit_series(rate, n=1000):
            tracer = Tracer({"cache": rate})
            channel = tracer.channel("cache")
            for cycle in range(n):
                channel.emit("fill", cycle, addr=cycle * 64)
            return tracer

        a = emit_series(0.1)
        b = emit_series(0.1)
        assert a.to_jsonl() == b.to_jsonl()  # byte-identical
        # error diffusion keeps the count within float rounding of rate*n
        assert abs(len(a.events) - 100) <= 1

    def test_flush_writes_valid_jsonl_atomically(self, tmp_path):
        tracer = Tracer({"feedback": 1.0}, path=str(tmp_path / "t.jsonl"))
        tracer.channel("feedback").emit("outcome", 7, outcome="useful",
                                        addr=0x40)
        out = tracer.flush()
        text = open(out).read()
        assert validate_jsonl(text) == []
        assert json.loads(text.splitlines()[0])["outcome"] == "useful"
        assert not [n for n in os.listdir(str(tmp_path))
                    if n.startswith(".tmp-")]

    def test_from_env_unset_returns_none(self):
        assert Tracer.from_env({}) is None
        assert Tracer.from_env({"REPRO_TRACE": ""}) is None

    def test_from_env_builds_configured_tracer(self):
        tracer = Tracer.from_env({"REPRO_TRACE": "bfetch",
                                  "REPRO_TRACE_FILE": "/tmp/x.jsonl"})
        assert tracer.channel("bfetch") is not None
        assert tracer.path == "/tmp/x.jsonl"

    def test_validate_jsonl_flags_problems(self):
        bad = json.dumps({"cat": "nope", "ev": "x", "cycle": -1}) + "\ngarbage\n"
        problems = validate_jsonl(bad)
        assert any("unknown category" in p for p in problems)
        assert any("cycle" in p for p in problems)
        assert any("unparseable" in p for p in problems)


# ----------------------------------------------------------------------
# Profiler


class TestProfiler:
    def test_sections_accumulate_time_calls_and_items(self):
        prof = Profiler()
        with prof.section("run", items=100):
            pass
        with prof.section("run", items=50):
            pass
        phase = prof.phases["run"]
        assert phase.calls == 2
        assert phase.items == 150
        assert phase.seconds >= 0.0
        assert prof.as_dict()["run"]["items"] == 150
        assert "run" in prof.summary()
        assert "run" in prof.render()


# ----------------------------------------------------------------------
# Disjoint feedback counters + derived ratios


class TestFeedbackDisjoint:
    def test_outcomes_partition_resolved(self):
        p = Prefetcher()
        for outcome in ("useful", "useful", "late", "useless"):
            p.feedback(None, outcome)
        s = p.stats
        assert (s.useful, s.late, s.useless) == (2, 1, 1)
        assert s.resolved == 4
        assert s.accuracy == pytest.approx(3 / 4)
        assert s.timeliness == pytest.approx(2 / 3)

    def test_system_registry_ratios_match_payload(self):
        system = System(build_workload("libquantum"),
                        SystemConfig(prefetcher="stride"))
        result = system.run(8000)
        dump = system.stats.dump()
        pf = result.data["prefetch"]
        demanded = pf["useful"] + pf["late"]
        resolved = demanded + pf["useless"]
        expected = demanded / resolved if resolved else 0.0
        assert dump["pf.stride.accuracy"] == pytest.approx(expected)
        assert dump["core.ipc"] == pytest.approx(result.ipc)
        assert dump["mem.l1d.misses"] == result.data["l1d"]["misses"]


# ----------------------------------------------------------------------
# Block geometry derived from the configured line size


class TestBlockGeometry:
    def test_prefetcher_block_shift_follows_line_size(self):
        p = Prefetcher(block_bytes=32)
        assert p.block_shift == 5
        p.push(0x20)
        p.push(0x3F)  # same 32B block -> deduped at push
        assert len(p.queue) == 1

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ValueError):
            Prefetcher(block_bytes=48)

    def test_system_runs_with_32_byte_lines(self):
        config = SystemConfig(
            prefetcher="bfetch",
            hierarchy=HierarchyConfig(block_bytes=32),
        )
        assert config.core.block_bytes == 32
        system = System(build_workload("libquantum"), config)
        assert system.prefetcher.block_shift == 5
        result = system.run(6000)
        assert result.instructions > 0
        assert result.cycles > 0

    def test_bfetch_delta_learning_uses_configured_shift(self):
        from repro.core.bfetch import BFetchPrefetcher
        pf = BFetchPrefetcher(block_bytes=128)
        assert pf.block_shift == 7
        assert pf.block_bytes == 128


# ----------------------------------------------------------------------
# Byte-identity: observability must not change simulation results


class TestByteIdentity:
    def test_run_result_identical_with_and_without_tracer(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        config = SystemConfig(prefetcher="bfetch")
        plain = System(build_workload("libquantum"), config)
        assert plain.tracer is None
        base = plain.run(6000).as_dict()

        traced_system = System(
            build_workload("libquantum"),
            SystemConfig(prefetcher="bfetch"),
            tracer=Tracer(parse_trace_spec("all")),
        )
        traced = traced_system.run(6000).as_dict()
        assert traced_system.tracer.events  # it really did trace
        assert json.dumps(base, sort_keys=True) == \
            json.dumps(traced, sort_keys=True)


# ----------------------------------------------------------------------
# Metrics hardening + RunResult dunder guard


class TestMetricsErrors:
    def test_weighted_speedup_names_the_offending_benchmark(self):
        with pytest.raises(ValueError, match="leslie3d"):
            weighted_speedup([1.0, 1.0], [1.2, 0.0],
                             benchmarks=["gamess", "leslie3d"])

    def test_weighted_speedup_mismatch_message(self):
        with pytest.raises(ValueError, match="mismatched"):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="benchmark names"):
            weighted_speedup([1.0], [1.0], benchmarks=["a", "b"])

    def test_normalize_names_the_quantity(self):
        with pytest.raises(ValueError, match="baseline IPC"):
            normalize(1.5, 0.0, label="baseline IPC")


class TestRunResultGuard:
    def test_deepcopy_and_pickle_round_trip(self):
        result = RunResult({"workload": "x", "ipc": 1.25})
        clone = copy.deepcopy(result)
        assert clone.as_dict() == result.as_dict()
        revived = pickle.loads(pickle.dumps(result))
        assert revived.ipc == 1.25

    def test_dunder_probe_raises_attribute_error(self):
        result = RunResult({"workload": "x", "__weird__": 1})
        # copy/pickle probe dunders through getattr; the guard must fail
        # fast instead of resolving them from the data dict (or, worse,
        # recursing on a pre-__init__ "data" probe during unpickling)
        with pytest.raises(AttributeError):
            result.__deepcopy__  # noqa: B018 - probing the guard
        with pytest.raises(AttributeError):
            result.nonexistent_key


# ----------------------------------------------------------------------
# batch profiling


class TestBatchProfile:
    def test_run_many_attaches_phase_profile(self, tmp_path):
        from repro.sim.runner import ExperimentRunner, RunRequest
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        runner.run_many([RunRequest("libquantum", "none", 4000)], jobs=1)
        profile = runner.last_report.profile
        assert profile is not None
        assert "probe" in profile.phases
        assert "execute" in profile.phases
        assert profile.phases["execute"].items == 4000
        assert runner.last_report.as_dict()["profile"]["probe"]["calls"] == 1
        # all-hits second batch: no execute phase
        runner.run_many([RunRequest("libquantum", "none", 4000)], jobs=1)
        assert "execute" not in runner.last_report.profile.phases
        assert runner.last_report.hits == 1


# ----------------------------------------------------------------------
# atomic_write_text


class TestAtomicWrite:
    def test_creates_parents_and_leaves_no_debris(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "file.json"
        atomic_write_text(str(target), "{}")
        assert target.read_text() == "{}"
        assert not [n for n in os.listdir(str(target.parent))
                    if n.startswith(".tmp-")]
