"""Experiment runner and result cache."""

import json
import os

import pytest

from repro.sim import ExperimentRunner
from repro.sim.runner import scaled


def cache_files(cache_dir):
    """All cached result files in the sharded cache layout."""
    found = []
    for root, _dirs, files in os.walk(str(cache_dir)):
        found.extend(os.path.join(root, name) for name in files
                     if name.endswith(".json"))
    return found


def test_scaled_respects_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert scaled(100_000) == 50_000
    monkeypatch.setenv("REPRO_SCALE", "4")
    assert scaled(100_000) == 400_000
    monkeypatch.delenv("REPRO_SCALE")
    assert scaled(100_000) == 100_000


def test_scaled_floor(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.000001")
    assert scaled(100_000) == 1000


def test_scaled_rejects_non_numeric(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "fast")
    with pytest.raises(ValueError, match="REPRO_SCALE"):
        scaled(100_000)


def test_scaled_rejects_non_positive(monkeypatch):
    for bad in ("0", "-1", "-0.25"):
        monkeypatch.setenv("REPRO_SCALE", bad)
        with pytest.raises(ValueError, match="REPRO_SCALE must be positive"):
            scaled(100_000)
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert scaled(100_000) == 50_000  # the bad value was not memoised


def test_run_single_cached_on_disk(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_single("gamess", "none", instructions=5_000)
    files = cache_files(tmp_path)
    assert len(files) == 1
    # sharded layout: <cache_dir>/<kind>/<digest prefix>/<file>
    relative = os.path.relpath(files[0], str(tmp_path))
    parts = relative.split(os.sep)
    assert parts[0] == "single" and len(parts) == 3
    second = runner.run_single("gamess", "none", instructions=5_000)
    assert second.as_dict() == first.as_dict()


def test_run_single_disk_cache_survives_new_runner(tmp_path):
    first = ExperimentRunner(cache_dir=str(tmp_path)).run_single(
        "gamess", "none", instructions=5_000
    )
    second = ExperimentRunner(cache_dir=str(tmp_path)).run_single(
        "gamess", "none", instructions=5_000
    )
    assert second.as_dict() == first.as_dict()


def test_cache_distinguishes_configs(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    runner.run_single("gamess", "none", instructions=5_000)
    runner.run_single("gamess", "stride", instructions=5_000)
    assert len(cache_files(tmp_path)) == 2


def test_corrupt_cache_entry_is_discarded_and_recomputed(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_single("gamess", "none", instructions=5_000)
    (path,) = cache_files(tmp_path)
    with open(path, "w") as handle:
        handle.write('{"workload": "gam')  # truncated write
    fresh = ExperimentRunner(cache_dir=str(tmp_path))
    recomputed = fresh.run_single("gamess", "none", instructions=5_000)
    assert recomputed.as_dict() == first.as_dict()
    # the corrupt entry was replaced by a valid enveloped one
    (path,) = cache_files(tmp_path)
    with open(path) as handle:
        entry = json.load(handle)
    assert entry["data"] == first.as_dict()


def test_cache_writes_leave_no_temp_files(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    runner.run_single("gamess", "none", instructions=5_000)
    runner.run_mix(("gamess", "gamess"), instructions=4_000)
    for root, _dirs, files in os.walk(str(tmp_path)):
        for name in files:
            assert name.endswith(".json") and not name.startswith(".tmp")


def test_memo_serves_repeat_lookups_without_disk(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_single("gamess", "none", instructions=5_000)
    for path in cache_files(tmp_path):
        os.unlink(path)  # disk gone; the in-memory memo must serve it
    second = runner.run_single("gamess", "none", instructions=5_000)
    assert second.as_dict() == first.as_dict()


def test_memo_results_are_isolated_copies():
    runner = ExperimentRunner()
    first = runner.run_single("gamess", "none", instructions=5_000)
    first.data["ipc"] = -1.0  # mutate the caller's copy
    second = runner.run_single("gamess", "none", instructions=5_000)
    assert second.ipc != -1.0


def test_config_prefetcher_mismatch_rejected():
    from repro.sim import SystemConfig
    runner = ExperimentRunner()
    with pytest.raises(ValueError):
        runner.run_single("gamess", "stride", 5_000,
                          config=SystemConfig(prefetcher="sms"))


def test_speedup_of_baseline_is_one():
    runner = ExperimentRunner()
    assert runner.speedup("gamess", "none", instructions=5_000) == 1.0


def test_run_mix_cached(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_mix(("gamess", "gamess"), instructions=4_000)
    second = runner.run_mix(("gamess", "gamess"), instructions=4_000)
    assert [r.as_dict() for r in first] == [r.as_dict() for r in second]


def test_foa_map_covers_requested_benchmarks():
    runner = ExperimentRunner()
    foa = runner.foa_map(["gamess", "libquantum"], instructions=5_000)
    assert set(foa) == {"gamess", "libquantum"}
    # the streaming benchmark hammers the LLC far harder
    assert foa["libquantum"] > foa["gamess"]


def test_weighted_speedup_normalized_baseline_is_one():
    runner = ExperimentRunner()
    value = runner.weighted_speedup_normalized(
        ("gamess", "gamess"), "none",
        instructions=4_000, single_instructions=4_000,
    )
    assert value == pytest.approx(1.0)
