"""Experiment runner and result cache."""

import os

import pytest

from repro.sim import ExperimentRunner
from repro.sim.runner import scaled


def test_scaled_respects_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert scaled(100_000) == 50_000
    monkeypatch.setenv("REPRO_SCALE", "4")
    assert scaled(100_000) == 400_000
    monkeypatch.delenv("REPRO_SCALE")
    assert scaled(100_000) == 100_000


def test_scaled_floor(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.000001")
    assert scaled(100_000) == 1000


def test_run_single_cached_on_disk(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_single("gamess", "none", instructions=5_000)
    files = os.listdir(tmp_path)
    assert len(files) == 1
    second = runner.run_single("gamess", "none", instructions=5_000)
    assert second.as_dict() == first.as_dict()


def test_cache_distinguishes_configs(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    runner.run_single("gamess", "none", instructions=5_000)
    runner.run_single("gamess", "stride", instructions=5_000)
    assert len(os.listdir(tmp_path)) == 2


def test_config_prefetcher_mismatch_rejected():
    from repro.sim import SystemConfig
    runner = ExperimentRunner()
    with pytest.raises(ValueError):
        runner.run_single("gamess", "stride", 5_000,
                          config=SystemConfig(prefetcher="sms"))


def test_speedup_of_baseline_is_one():
    runner = ExperimentRunner()
    assert runner.speedup("gamess", "none", instructions=5_000) == 1.0


def test_run_mix_cached(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_mix(("gamess", "gamess"), instructions=4_000)
    second = runner.run_mix(("gamess", "gamess"), instructions=4_000)
    assert [r.as_dict() for r in first] == [r.as_dict() for r in second]


def test_foa_map_covers_requested_benchmarks():
    runner = ExperimentRunner()
    foa = runner.foa_map(["gamess", "libquantum"], instructions=5_000)
    assert set(foa) == {"gamess", "libquantum"}
    # the streaming benchmark hammers the LLC far harder
    assert foa["libquantum"] > foa["gamess"]


def test_weighted_speedup_normalized_baseline_is_one():
    runner = ExperimentRunner()
    value = runner.weighted_speedup_normalized(
        ("gamess", "gamess"), "none",
        instructions=4_000, single_instructions=4_000,
    )
    assert value == pytest.approx(1.0)
