"""Consolidated report generation."""

import os

from repro.analysis.report import (
    EXPERIMENT_INDEX,
    build_report,
    collect_results,
    write_report,
)


def _seed_results(tmp_path, stems):
    for stem in stems:
        with open(os.path.join(str(tmp_path), stem + ".txt"), "w") as f:
            f.write("== %s ==\nvalue 1.0\n" % stem)


def test_collect_results_partitions(tmp_path):
    _seed_results(tmp_path, ["fig08_single", "table1_overhead"])
    present, missing = collect_results(str(tmp_path))
    assert len(present) == 2
    assert len(present) + len(missing) == len(EXPERIMENT_INDEX)


def test_build_report_includes_bodies_and_missing(tmp_path):
    _seed_results(tmp_path, ["fig08_single"])
    report = build_report(str(tmp_path))
    assert "single-threaded speedups" in report
    assert "value 1.0" in report
    assert "Missing:" in report


def test_write_report(tmp_path):
    _seed_results(tmp_path, ["fig08_single", "fig11_useful"])
    out = str(tmp_path / "REPORT.md")
    count = write_report(str(tmp_path), out)
    assert count == 2
    assert os.path.exists(out)


def test_index_covers_every_benchmark_module():
    import glob
    stems = {entry[1] for entry in EXPERIMENT_INDEX}
    bench_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    modules = {
        os.path.basename(path)[len("test_"):-len(".py")]
        for path in glob.glob(os.path.join(bench_dir, "test_*.py"))
    }
    # every bench module archives at least one indexed experiment
    # (module names and archive stems differ; check count parity instead)
    assert len(stems) >= len(modules)
