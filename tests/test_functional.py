"""Functional interpreter semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import HaltError, Machine
from repro.isa import MASK64, assemble


def run(text, memory=None, steps=1000, restart=False):
    machine = Machine(assemble(text), memory or {}, restart_on_halt=restart)
    try:
        for _ in range(steps):
            machine.step()
    except HaltError:
        pass
    return machine


def test_li_add_sub():
    m = run("li r1, 5\nli r2, 7\nadd r3, r1, r2\nsub r4, r2, r1\nhalt")
    assert m.regs[3] == 12
    assert m.regs[4] == 2


def test_load_store_roundtrip():
    m = run("li r1, 0x1000\nli r2, 99\nstore r2, 8(r1)\nload r3, 8(r1)\nhalt")
    assert m.regs[3] == 99
    assert m.memory[0x1008] == 99


def test_load_from_uninitialised_memory_is_zero():
    m = run("li r1, 0x5000\nload r2, 0(r1)\nhalt")
    assert m.regs[2] == 0


def test_zero_register_reads_zero_and_ignores_writes():
    m = run("li r31, 42\nadd r1, r31, r31\nhalt")
    assert m.regs[31] == 0
    assert m.regs[1] == 0


def test_branch_taken_and_not_taken():
    m = run("li r1, 2\nloop: subi r1, r1, 1\nbnez r1, loop\nli r2, 9\nhalt")
    assert m.regs[1] == 0 and m.regs[2] == 9
    # one taken, one not-taken bnez plus the rest
    assert m.instret == 6


def test_bltz_bgez_signed():
    m = run("li r1, -1\nbltz r1, neg\nli r2, 1\nhalt\nneg: li r2, 2\nhalt")
    assert m.regs[2] == 2
    m = run("li r1, 0\nbgez r1, nn\nli r2, 1\nhalt\nnn: li r2, 3\nhalt")
    assert m.regs[2] == 3


def test_jr_indirect():
    # jump to the instruction at index 4 (pc base 0x1000 + 16)
    m = run("li r1, 0x1010\njr r1\nli r2, 1\nhalt\nli r2, 2\nhalt")
    assert m.regs[2] == 2


def test_cmp_ops():
    m = run("li r1, 3\nli r2, 5\ncmplt r3, r1, r2\ncmpeq r4, r1, r2\nhalt")
    assert m.regs[3] == 1 and m.regs[4] == 0


def test_shift_ops_mask_to_64_bits():
    m = run("li r1, 1\nli r2, 70\nsll r3, r1, r2\nsrli r4, r1, 1\nhalt")
    # shift amount is taken mod 64
    assert m.regs[3] == (1 << 6)
    assert m.regs[4] == 0


def test_mul_masks_to_64_bits():
    big = (1 << 40) + 3
    m = run("li r1, %d\nmul r2, r1, r1\nhalt" % big)
    assert m.regs[2] == (big * big) & MASK64


def test_halt_raises_without_restart():
    machine = Machine(assemble("halt"), restart_on_halt=False)
    with pytest.raises(HaltError):
        machine.step()
    assert machine.halted


def test_halt_restarts_when_enabled():
    machine = Machine(assemble("addi r1, r1, 1\nhalt"), restart_on_halt=True)
    for _ in range(6):
        machine.step()
    assert machine.restarts == 3
    assert machine.regs[1] == 3


def test_step_returns_instr_taken_ea():
    machine = Machine(assemble("li r1, 0x100\nload r2, 8(r1)\nbr here\nhere: halt"))
    instr, taken, ea = machine.step()
    assert instr.op.name == "LI" and not taken and ea is None
    instr, taken, ea = machine.step()
    assert ea == 0x108
    instr, taken, ea = machine.step()
    assert taken


def test_run_collects_records():
    machine = Machine(assemble("addi r1, r1, 1\nhalt"), restart_on_halt=False)
    records = machine.run(10)
    assert len(records) == 1  # halt raised on the 2nd step


@given(a=st.integers(-2**31, 2**31 - 1), b=st.integers(-2**31, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_alu_matches_python(a, b):
    m = run(
        "li r1, %d\nli r2, %d\n"
        "add r3, r1, r2\nsub r4, r1, r2\nxor r5, r1, r2\n"
        "cmplt r6, r1, r2\nhalt" % (a, b)
    )
    assert m.regs[3] == a + b
    assert m.regs[4] == a - b
    assert m.regs[5] == (a ^ b) & MASK64
    assert m.regs[6] == (1 if a < b else 0)


@given(addr=st.integers(0, 2**30).map(lambda x: x & ~7),
       value=st.integers(0, MASK64))
@settings(max_examples=40, deadline=None)
def test_store_load_roundtrip_property(addr, value):
    m = run(
        "li r1, %d\nli r2, %d\nstore r2, 0(r1)\nload r3, 0(r1)\nhalt"
        % (addr, value)
    )
    assert m.regs[3] == value & MASK64
