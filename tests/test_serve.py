"""End-to-end job-server tests: the ISSUE acceptance criteria.

* concurrent clients submitting overlapping sweeps get results
  byte-identical to a serial :class:`ExperimentRunner`, and duplicate
  submissions provably coalesce (one job id, compute count below the
  request count);
* an injected worker crash surfaces as a structured job failure while
  the server keeps serving other clients;
* admission control (busy backpressure), cancellation of queued and
  running jobs, event streaming, drain-time stats/trace flush, and the
  cross-job result cache.

All tests run a real server on a background thread (its own asyncio
loop) and talk to it through the blocking stdlib client -- the same
path scripts and the CLI use.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.serve import (
    AdmissionQueue,
    JobTable,
    QueueFull,
    ServeClient,
    ServeError,
)
from repro.serve.server import ServerThread
from repro.sim import ExperimentRunner, RunRequest

BUDGET = 2000
#: budget for jobs that must still be running when we poke at them
#: (~1s of wall clock: wide enough that a handful of client round
#: trips never race the blocker's completion, even under GIL pressure)
SLOW_BUDGET = 250_000


def _client(thread, timeout=60):
    host, port = thread.address
    return ServeClient(host, port, timeout=timeout)


def _wait_running(client, job_id, timeout=60.0):
    """Poll status until the job is running (deterministic, unlike
    waiting on stream events -- a late subscription can miss the
    ``started`` event and only wake on completion)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        state = client.status(job_id)["state"]
        if state == "running":
            return
        assert state == "queued", "job went terminal early: %s" % state
        time.sleep(0.005)
    raise AssertionError("job %s never started" % job_id)


# ----------------------------------------------------------------------
# acceptance: identity + coalescing under concurrent clients


class TestConcurrentClients(object):
    def test_sweeps_match_serial_runner_and_coalesce(self, tmp_path):
        benchmarks = ["libquantum", "mcf"]
        prefetchers = ["none", "stride"]
        serial = ExperimentRunner(cache_dir=str(tmp_path / "serial-cache"))
        expected_results, _report = serial.run_batch(
            [RunRequest(b, p, BUDGET)
             for b in benchmarks for p in prefetchers]
        )
        expected = [result.as_dict() for result in expected_results]

        with ServerThread(cache_dir=str(tmp_path / "server-cache"),
                          max_concurrent=1) as thread:
            # occupy the single worker slot so the duplicate sweeps
            # below are all admitted while the first is still live
            with _client(thread) as blocker_client:
                blocker = blocker_client.submit(
                    "astar", "none", instructions=SLOW_BUDGET
                )
                _wait_running(blocker_client, blocker["job_id"])

                tickets = {}
                payloads = {}
                errors = []

                def worker(slot):
                    try:
                        with _client(thread) as client:
                            ticket = client.submit_sweep(
                                benchmarks, prefetchers,
                                instructions=BUDGET,
                            )
                            tickets[slot] = ticket
                            reply = client.result(ticket["job_id"],
                                                  wait=True)
                            payloads[slot] = reply["result"]
                    except Exception as exc:  # surfaced below
                        errors.append(exc)

                workers = [threading.Thread(target=worker, args=(slot,))
                           for slot in range(4)]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join(timeout=180)
                assert not errors

                # every client saw results byte-identical to the serial
                # reference engine
                for slot in range(4):
                    assert payloads[slot] == expected

                # provable coalescing: one job id across all four
                # submissions, three of which were deduplicated
                ids = {tickets[slot]["job_id"] for slot in range(4)}
                assert len(ids) == 1
                coalesced = [tickets[slot]["coalesced"]
                             for slot in range(4)]
                assert sorted(coalesced) == [False, True, True, True]

                blocker_client.result(blocker["job_id"], wait=True)
                stats = blocker_client.statz()
        # 4 sweeps x 4 runs + 1 blocker run requested; only 4 + 1 computed
        assert stats["serve.runs.requested"] == 17
        assert stats["serve.runs.computed"] == 5
        assert stats["serve.jobs.coalesced"] == 3
        assert stats["serve.runs.computed"] < stats["serve.runs.requested"]


# ----------------------------------------------------------------------
# acceptance: injected crash -> structured failure, server stays up


class TestCrashInjection(object):
    def test_crash_surfaces_structured_failure(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:1.0:seed=7")
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          max_concurrent=1) as thread:
            with _client(thread) as client:
                # retries=0: the first-attempt crash is fatal and must
                # surface as a structured job failure
                ticket = client.submit("libquantum", "stride",
                                       instructions=BUDGET, retries=0)
                with pytest.raises(ServeError) as info:
                    client.result(ticket["job_id"], wait=True)
                assert info.value.code == "simulation-error"
                failure = info.value.data
                assert failure["state"] == "failed"
                assert failure["error"]["code"] == "simulation-error"
                assert failure["error"]["attempts"] >= 1

                # ... while the server keeps serving: a retried job on
                # the same faulty substrate converges (crash fires only
                # on the first attempt)
                assert client.ping()["type"] == "pong"
                ticket2 = client.submit("mcf", "none",
                                        instructions=BUDGET, retries=2)
                reply = client.result(ticket2["job_id"], wait=True)
                assert reply["state"] == "done"
                assert reply["result"][0]["instructions"] == BUDGET

                stats = client.statz()
        assert stats["serve.jobs.failed"] == 1
        assert stats["serve.jobs.completed"] == 1
        assert stats["serve.runs.retries"] >= 1


# ----------------------------------------------------------------------
# admission control and cancellation


class TestAdmissionAndCancel(object):
    def test_backpressure_and_queued_cancel(self, tmp_path):
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          max_concurrent=1, high_water=1) as thread:
            with _client(thread) as client:
                blocker = client.submit("astar", "none",
                                        instructions=SLOW_BUDGET)
                _wait_running(client, blocker["job_id"])

                queued = client.submit("mcf", "none", instructions=BUDGET)
                assert client.status(queued["job_id"])["state"] == "queued"

                # the queue is at its high-water mark: typed busy error
                with pytest.raises(ServeError) as info:
                    client.submit("libquantum", "none",
                                  instructions=BUDGET)
                assert info.value.code == "busy"

                # cancelling the queued job frees admission capacity
                reply = client.cancel(queued["job_id"])
                assert reply["type"] == "cancelled"
                assert (client.status(queued["job_id"])["state"]
                        == "cancelled")
                outcome = client.result(queued["job_id"], wait=True)
                assert outcome["state"] == "cancelled"

                admitted = client.submit("libquantum", "none",
                                         instructions=BUDGET)
                assert client.result(admitted["job_id"],
                                     wait=True)["state"] == "done"
                assert client.result(blocker["job_id"],
                                     wait=True)["state"] == "done"
                stats = client.statz()
        assert stats["serve.jobs.rejected_busy"] == 1
        assert stats["serve.jobs.cancelled"] == 1

    def test_cancel_running_job_cooperatively(self, tmp_path):
        with ServerThread(cache_dir=str(tmp_path / "cache"),
                          max_concurrent=1) as thread:
            with _client(thread) as client:
                ticket = client.submit_sweep(
                    ["astar", "bzip2", "soplex", "mcf"],
                    ["none", "stride"],
                    instructions=20_000,
                )
                job_id = ticket["job_id"]
                # wait until at least one run has completed (so the
                # cancel provably leaves checkpointed work behind) but
                # well before all eight are done
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    snap = client.status(job_id)
                    if snap["done"] >= 1:
                        break
                    assert snap["state"] in ("queued", "running")
                    time.sleep(0.005)
                assert snap["done"] >= 1
                reply = client.cancel(job_id)
                assert reply["type"] == "cancelling"
                outcome = client.result(job_id, wait=True)
                assert outcome["state"] == "cancelled"
                # cancelled work is checkpointed in the result cache:
                # resubmitting resumes (some hits) instead of restarting
                again = client.submit_sweep(
                    ["astar", "bzip2", "soplex", "mcf"],
                    ["none", "stride"],
                    instructions=20_000,
                )
                done = client.result(again["job_id"], wait=True)
                assert done["state"] == "done"
                assert len(done["result"]) == 8
                assert done["batch"]["hits"] >= 1


# ----------------------------------------------------------------------
# streaming, cache reuse, drain


class TestLifecycle(object):
    def test_stream_sequence_and_terminal_replay(self, tmp_path):
        with ServerThread(cache_dir=str(tmp_path / "cache")) as thread:
            with _client(thread) as client:
                ticket = client.submit_sweep(
                    ["libquantum"], ["none", "stride"],
                    instructions=BUDGET,
                )
                job_id = ticket["job_id"]
                events = list(client.stream(job_id))
                assert events, "stream yielded no events"
                assert events[-1]["ev"] == "done"
                seqs = [event["seq"] for event in events]
                assert seqs == sorted(seqs)
                assert len(set(seqs)) == len(seqs)
                for event in events:
                    assert event["job_id"] == job_id
                    if event["ev"] == "progress":
                        assert 0 <= event["done"] <= event["total"]
                # streaming a terminal job replays its terminal event
                replay = list(client.stream(job_id))
                assert [event["ev"] for event in replay] == ["done"]

    def test_resubmission_after_completion_hits_cache(self, tmp_path):
        with ServerThread(cache_dir=str(tmp_path / "cache")) as thread:
            with _client(thread) as client:
                first = client.submit("libquantum", "stride",
                                      instructions=BUDGET)
                reply1 = client.result(first["job_id"], wait=True)
                second = client.submit("libquantum", "stride",
                                       instructions=BUDGET)
                # not coalesced (the first job is terminal): a fresh job
                # served from the shared result cache
                assert second["coalesced"] is False
                assert second["job_id"] != first["job_id"]
                reply2 = client.result(second["job_id"], wait=True)
                assert reply2["result"] == reply1["result"]
                assert reply2["batch"]["hits"] == 1
                assert reply2["batch"]["misses"] == 0
                stats = client.statz()
        assert stats["serve.runs.cache_hits"] == 1
        assert stats["serve.runs.computed"] == 1
        assert 0 < stats["serve.cache.hit_ratio"] < 1

    def test_drain_flushes_stats_and_trace(self, tmp_path):
        stats_path = tmp_path / "serve-stats.json"
        trace_path = tmp_path / "serve-trace.jsonl"
        thread = ServerThread(cache_dir=str(tmp_path / "cache"),
                              stats_path=str(stats_path),
                              trace_path=str(trace_path))
        thread.start()
        try:
            with _client(thread) as client:
                ticket = client.submit("libquantum", "none",
                                       instructions=BUDGET)
                client.result(ticket["job_id"], wait=True)
        finally:
            thread.stop()
        stats = json.loads(stats_path.read_text())
        assert stats["serve.jobs.completed"] == 1
        assert stats["serve.runs.computed"] == 1
        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        assert events
        assert all(event["cat"] == "serve" for event in events)
        evs = {event["ev"] for event in events}
        assert "done" in evs


# ----------------------------------------------------------------------
# queue / table units (no sockets)


class TestAdmissionQueueUnit(object):
    def _jobs(self, table, count, priority=0):
        return [
            table.new_job("key-%d-%d" % (priority, i), "single",
                          {"policy": {}}, [None], priority=priority)
            for i in range(count)
        ]

    def test_priority_then_fifo_order(self):
        async def body():
            table = JobTable()
            queue = AdmissionQueue(high_water=8)
            low = self._jobs(table, 2, priority=0)
            high = self._jobs(table, 1, priority=5)
            for job in low + high:
                queue.push(job)
            order = [await queue.pop() for _ in range(3)]
            return [job.id for job in order], \
                [job.id for job in high + low]

        got, want = asyncio.run(body())
        assert got == want

    def test_high_water_rejects(self):
        async def body():
            table = JobTable()
            queue = AdmissionQueue(high_water=2)
            jobs = self._jobs(table, 3)
            queue.push(jobs[0])
            queue.push(jobs[1])
            with pytest.raises(QueueFull) as info:
                queue.push(jobs[2])
            assert info.value.depth == 2
            # popping frees capacity
            await queue.pop()
            queue.push(jobs[2])
            return len(queue)

        assert asyncio.run(body()) == 2

    def test_lazy_cancel_skipped_at_pop(self):
        async def body():
            table = JobTable()
            queue = AdmissionQueue(high_water=8)
            jobs = self._jobs(table, 3)
            for job in jobs:
                queue.push(job)
            jobs[0].cancel_requested = True
            queue.discard(jobs[0])
            assert len(queue) == 2
            popped = await queue.pop()
            return popped.id, jobs[1].id

        got, want = asyncio.run(body())
        assert got == want

    def test_close_wakes_pop_with_none(self):
        async def body():
            queue = AdmissionQueue(high_water=2)
            waiter = asyncio.create_task(queue.pop())
            await asyncio.sleep(0)
            queue.close()
            return await asyncio.wait_for(waiter, timeout=5)

        assert asyncio.run(body()) is None


class TestJobTableUnit(object):
    def test_coalescing_index_and_retention(self):
        table = JobTable(retain=2)
        jobs = [
            table.new_job("k%d" % i, "single", {}, [None])
            for i in range(3)
        ]
        assert table.find_active("k0") is jobs[0]
        for job in jobs:
            job.mark_terminal("done")
            table.finish(job)
        # terminal jobs leave the coalescing index...
        assert table.find_active("k0") is None
        # ...and retention keeps only the newest two
        assert table.get(jobs[0].id) is None
        assert table.get(jobs[1].id) is jobs[1]
        assert table.get(jobs[2].id) is jobs[2]

    def test_forget_rolls_back_admission(self):
        table = JobTable()
        job = table.new_job("k", "single", {}, [None])
        table.forget(job)
        assert table.get(job.id) is None
        assert table.find_active("k") is None
