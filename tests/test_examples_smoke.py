"""Every example script must at least run to completion (tiny budgets)."""

import os
import subprocess
import sys

import pytest

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script, *args):
    return subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, script), *args],
        capture_output=True, text=True, timeout=600,
    )


@pytest.mark.parametrize("script,args", [
    ("quickstart.py", ("gamess", "8000")),
    ("figure2_kernel.py", ()),
    ("design_space.py", ("gromacs",)),
    ("trace_workflow.py", ("gromacs", "8000")),
    ("prefetcher_zoo.py", ("gamess", "8000")),
])
def test_example_runs(script, args):
    result = _run(script, *args)
    assert result.returncode == 0, result.stderr[-800:]
    assert result.stdout.strip()


def test_cmp_example_runs():
    result = _run("cmp_contention.py", "gamess", "gamess")
    assert result.returncode == 0, result.stderr[-800:]
    assert "wspeedup" in result.stdout
