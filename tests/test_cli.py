"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "libquantum" in out and "bfetch" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "65% less storage" in out


def test_run(capsys):
    assert main(["run", "gamess", "none", "-n", "5000"]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out


def test_compare(capsys):
    assert main(["compare", "gamess", "-n", "5000",
                 "--prefetchers", "stride"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_mix(capsys):
    assert main(["mix", "gamess", "gamess", "-n", "4000",
                 "--prefetchers", "none", "bfetch"]) == 0
    out = capsys.readouterr().out
    assert "normalized" in out


def test_rejects_unknown_benchmark():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "doom", "none"])


def test_rejects_unknown_prefetcher():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "gamess", "oracle"])


def test_rejects_nonpositive_instructions():
    parser = build_parser()
    for argv in (["run", "gamess", "none", "-n", "0"],
                 ["run", "gamess", "none", "-n", "-5"],
                 ["run", "gamess", "none", "-n", "lots"],
                 ["check", "gamess", "none", "-n", "0"],
                 ["run", "gamess", "none", "--checkpoint-every", "0"],
                 ["run", "gamess", "none", "-j", "0"]):
        with pytest.raises(SystemExit):
            parser.parse_args(argv)


def test_check_clean(capsys):
    assert main(["check", "gamess", "bfetch", "-n", "5000"]) == 0
    out = capsys.readouterr().out
    assert "sanitizer: clean" in out
    assert "ipc" in out


def test_check_detects_injected_corruption(capsys):
    assert main(["check", "gamess", "bfetch", "-n", "20000",
                 "--inject-at", "1200", "--interval", "500"]) == 1
    err = capsys.readouterr().err
    assert "sanitizer violation" in err
    assert "first bad cycle" in err


def test_run_with_checkpointing(tmp_path, capsys):
    import os

    ckpt_dir = str(tmp_path / "ckpts")
    try:
        # cmd_run funnels the flags into the REPRO_CKPT_* environment
        # (inherited by pool workers); pop them afterwards so no other
        # test inherits checkpointing by accident
        assert main(["run", "gamess", "none", "-n", "5000",
                     "--checkpoint-every", "500",
                     "--checkpoint-dir", ckpt_dir]) == 0
    finally:
        os.environ.pop("REPRO_CKPT_DIR", None)
        os.environ.pop("REPRO_CKPT_EVERY", None)
    out = capsys.readouterr().out
    assert "ipc" in out
    # run completed, so its checkpoint was cleared
    assert not any(name.endswith(".ckpt.json")
                   for name in os.listdir(ckpt_dir))
