"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "libquantum" in out and "bfetch" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "65% less storage" in out


def test_run(capsys):
    assert main(["run", "gamess", "none", "-n", "5000"]) == 0
    out = capsys.readouterr().out
    assert "ipc" in out


def test_compare(capsys):
    assert main(["compare", "gamess", "-n", "5000",
                 "--prefetchers", "stride"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_mix(capsys):
    assert main(["mix", "gamess", "gamess", "-n", "4000",
                 "--prefetchers", "none", "bfetch"]) == 0
    out = capsys.readouterr().out
    assert "normalized" in out


def test_rejects_unknown_benchmark():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "doom", "none"])


def test_rejects_unknown_prefetcher():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "gamess", "oracle"])
