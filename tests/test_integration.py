"""Cross-module integration invariants.

These run whole systems and check the accounting identities that must
hold regardless of workload or prefetcher.
"""

import pytest

from repro.sim import System, SystemConfig
from repro.workloads import build_workload

WORKLOADS = ("libquantum", "mcf", "milc", "sjeng")
PREFETCHERS = ("none", "nextn", "stride", "sms", "tango", "bfetch")


@pytest.fixture(scope="module")
def results():
    out = {}
    for bench in WORKLOADS:
        for prefetcher in PREFETCHERS:
            system = System(build_workload(bench),
                            SystemConfig(prefetcher=prefetcher))
            out[(bench, prefetcher)] = system.run(15_000)
    return out


def test_ipc_identity(results):
    for result in results.values():
        assert result.ipc == pytest.approx(
            result.instructions / result.cycles
        )


def test_prefetch_accounting_identity(results):
    """Resolved prefetches never exceed issued ones."""
    for result in results.values():
        stats = result.data["prefetch"]
        # outcomes are disjoint: every resolved prefetch is exactly one of
        # useful / late / useless, and none resolve without being issued
        resolved = stats["useful"] + stats["late"] + stats["useless"]
        assert resolved <= stats["issued"]


def test_cache_hits_plus_misses_equals_accesses(results):
    for result in results.values():
        for level in ("l1d", "l2", "llc"):
            stats = result.data[level]
            assert stats["hits"] + stats["misses"] == stats["accesses"]


def test_l1_fills_bounded_by_misses_and_prefetches(results):
    for result in results.values():
        l1 = result.data["l1d"]
        assert l1["prefetch_useful"] + l1["prefetch_useless"] <= \
            l1["prefetch_fills"]


def test_branch_counts_consistent(results):
    for result in results.values():
        assert result.data["mispredicts"] <= result.data["cond_branches"] + 1
        assert result.data["cond_branches"] <= result.data["branches"]


def test_prefetchers_never_corrupt_architectural_state(results):
    """Same workload must retire the same instruction mix under every
    prefetcher (prefetching is microarchitectural only)."""
    for bench in WORKLOADS:
        branch_counts = {
            results[(bench, pf)].data["branches"] for pf in PREFETCHERS
        }
        assert len(branch_counts) == 1, bench


def test_prefetching_never_catastrophically_slows(results):
    """A sane prefetcher should not halve performance."""
    for bench in WORKLOADS:
        base = results[(bench, "none")].ipc
        for prefetcher in PREFETCHERS:
            assert results[(bench, prefetcher)].ipc > 0.55 * base


def test_dram_traffic_increases_with_prefetching(results):
    """Prefetchers can only add DRAM traffic, never remove demand."""
    for bench in ("libquantum", "milc"):
        base = results[(bench, "none")].data["dram_accesses"]
        for prefetcher in ("sms", "bfetch"):
            assert results[(bench, prefetcher)].data["dram_accesses"] >= \
                0.9 * base
