"""Additional kernel-generator behaviours: wrap-around, ballast, switch."""

import random

import pytest

from repro.cpu import Machine
from repro.workloads import Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.patterns import (
    PERSISTENT_REGS,
    R_ACC,
    R_SEED,
    R_W0,
    R_W1,
    R_W2,
    emit_multistream,
    emit_region,
    emit_stream,
)


def _finish(body, pro, name="k"):
    body.br("outer")
    body.halt()
    final = ProgramBuilder(name)
    for reg, value in ((R_ACC, 0), (R_SEED, 1), (R_W0, 1), (R_W1, 2),
                       (R_W2, 3)):
        final.li(reg, value)
    for reg, value in pro:
        final.li(reg, value)
    final.append_builder(body)
    return Workload(name, final.build(), {})


def test_persistent_stream_wraps_at_region_end():
    pro = []
    body = ProgramBuilder("w")
    body.label("outer")
    # 4 elems x 64B per lap through a 512B region: wraps every other lap
    emit_stream(body, 0x10000, elems=4, stride=64,
                pos_reg=PERSISTENT_REGS[0], size=512, prologue=pro)
    workload = _finish(body, pro)
    machine = Machine(workload.program)
    for _ in range(2000):
        machine.step()
    pos = machine.regs[PERSISTENT_REGS[0]]
    assert 0x10000 <= pos <= 0x10000 + 512 + 64


def test_ballast_emits_requested_work():
    plain = ProgramBuilder("a")
    plain.label("outer")
    emit_stream(plain, 0x1000, elems=8, work=0)
    loaded = ProgramBuilder("b")
    loaded.label("outer")
    emit_stream(loaded, 0x1000, elems=8, work=6)
    assert len(loaded.instrs) == len(plain.instrs) + 6


def test_multistream_rejects_bad_counts():
    body = ProgramBuilder("m")
    with pytest.raises(ValueError):
        emit_multistream(body, [], elems=10)
    with pytest.raises(ValueError):
        emit_multistream(body, [(0x1000, 8)] * 5, elems=10)


def test_multistream_mixed_persistent_and_scratch():
    pro = []
    body = ProgramBuilder("m")
    body.label("outer")
    emit_multistream(
        body,
        [(0x10000, 64, PERSISTENT_REGS[0], 1 << 20), (0x20000, 8)],
        elems=16, prologue=pro,
    )
    workload = _finish(body, pro)
    machine = Machine(workload.program)
    for _ in range(3000):
        machine.step()
    assert machine.regs[PERSISTENT_REGS[0]] > 0x10000


def test_region_kernel_touches_all_offsets():
    pro = []
    body = ProgramBuilder("r")
    body.label("outer")
    offsets = [0, 128, 320]
    emit_region(body, 0x40000, region_bytes=512, offsets=offsets,
                regions=8)
    workload = _finish(body, pro)
    machine = Machine(workload.program)
    touched = set()
    for _ in range(400):
        instr, taken, ea = machine.step()
        if instr.is_load and ea is not None:
            touched.add(ea % 512)
    assert set(offsets) <= touched


def test_persistent_walk_reg_validated():
    body = ProgramBuilder("x")
    with pytest.raises(ValueError):
        emit_stream(body, 0x1000, 4, pos_reg=5, size=1024, prologue=[])
