"""Property-style fuzz tests for the textual assembler and the
programmatic builder.

The contract under test (DESIGN.md section 7): *every* rejection of a
malformed program is a typed error -- :class:`AssemblerError` or
:class:`ProgramError`, both ``ValueError`` subclasses -- never a deep
traceback (``TypeError``/``IndexError``/``KeyError``/``AttributeError``)
out of the guts of the parser or validator.  The fuzzers are seeded,
so failures reproduce exactly.
"""

import random

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Instr
from repro.isa.opcodes import Op
from repro.isa.program import Program, ProgramError
from repro.workloads.builder import ProgramBuilder

# the only exception types an invalid program may surface
TYPED = (AssemblerError, ProgramError, ValueError)

_VALID_KERNEL = """\
start:  li    r1, 100
loop:   load  r2, 8(r3)        ; stream
        add   r4, r4, r2
        addi  r3, r3, 8
        subi  r1, r1, 1
        bnez  r1, loop
        halt
"""

# token soup skewed towards *almost*-valid fragments: real mnemonics,
# registers just outside the file, malformed memory operands, stray
# punctuation, giant and non-numeric immediates
_TOKENS = [
    "load", "store", "add", "sub", "mul", "addi", "subi", "li", "mov",
    "beqz", "bnez", "bltz", "bgez", "br", "jr", "halt", "nop", "cmplt",
    "slli", "frobnicate",
    "r0", "r1", "r15", "r31", "r32", "r-1", "r", "rx", "x5",
    "0", "1", "-8", "100", "0x10", "0xg", "9999999999999999",
    "8(r3)", "-16(r31)", "(r3)", "8(r40)", "8(x3)", "8(r3", "r3)",
    "loop", "loop:", "loop::", "1bad:", ",", ",,", ":", ";", "# note",
]


def _soup(rng, max_lines=8, max_tokens=6):
    lines = []
    for _ in range(rng.randrange(0, max_lines)):
        count = rng.randrange(0, max_tokens)
        lines.append(" ".join(rng.choice(_TOKENS) for _ in range(count)))
    return "\n".join(lines)


def test_assembler_fuzz_token_soup():
    """Random token soup either assembles or raises a typed error."""
    rng = random.Random(0x5EED)
    rejected = assembled = 0
    for _ in range(500):
        text = _soup(rng)
        try:
            program = assemble(text)
        except TYPED:
            rejected += 1
            continue
        assembled += 1
        assert len(program) > 0
    # the soup must actually exercise the error paths, not dodge them
    assert rejected > 100


def test_assembler_fuzz_mutated_kernel():
    """Byte-level mutations of a valid kernel never escape TYPED."""
    rng = random.Random(0xBF)
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789 ,():;#\n-"
    for _ in range(500):
        text = list(_VALID_KERNEL)
        for _ in range(rng.randrange(1, 6)):
            pos = rng.randrange(len(text))
            text[pos] = rng.choice(alphabet)
        try:
            assemble("".join(text))
        except TYPED:
            pass


def test_assembler_errors_carry_line_numbers():
    """Every AssemblerError names the offending source line."""
    bad = [
        "li r1",                      # operand count
        "load r2, 8(r40)",            # register out of range
        "load r2, banana",            # malformed memory operand
        "frobnicate r1, r2",          # unknown mnemonic
        "addi r1, r2, 0xgg",          # bad immediate
        "bnez r1, nowhere\nhalt",     # undefined label
        "li rx, 5",                   # bad register token
    ]
    for text in bad:
        with pytest.raises(AssemblerError) as excinfo:
            assemble(text)
        assert "line " in str(excinfo.value)


def test_assembler_rejects_empty_program():
    with pytest.raises(ProgramError):
        assemble("")
    with pytest.raises(ProgramError):
        assemble("; nothing but comments\n# here either")


_REG_CHOICES = [-3, -1, 0, 1, 7, 15, 30, 31, 32, 40, 99, "r5", 2.5, True]
_IMM_CHOICES = [0, 1, -8, 64, 10**9, "8", 1.5, None]


def _random_builder(rng):
    """Emit a random instruction sequence, valid and invalid alike."""
    builder = ProgramBuilder(name="fuzz")
    defined = []

    def reg():
        # mostly-valid registers so a healthy fraction of programs builds
        if rng.random() < 0.8:
            return rng.randrange(0, 32)
        return rng.choice(_REG_CHOICES)

    def imm_value():
        if rng.random() < 0.8:
            return rng.randrange(-64, 1024)
        return rng.choice(_IMM_CHOICES)

    for _ in range(rng.randrange(1, 12)):
        roll = rng.random()
        rd = reg()
        ra = reg()
        rb = reg()
        imm = imm_value()
        if roll < 0.15:
            label = builder.unique("blk")
            builder.label(label)
            defined.append(label)
        if roll < 0.3:
            builder.add(rd, ra, rb)
        elif roll < 0.45:
            builder.addi(rd, ra, imm)
        elif roll < 0.55:
            builder.li(rd, imm)
        elif roll < 0.7:
            builder.load(rd, imm, ra)
        elif roll < 0.8:
            builder.store(rb, imm, ra)
        elif roll < 0.9:
            target = (rng.choice(defined) if defined and rng.random() < 0.6
                      else rng.choice(["nowhere", 3, -1, 2.5]))
            builder.bnez(ra, target)
        else:
            builder.nop()
    if rng.random() < 0.8:
        builder.halt()
    return builder


def test_builder_fuzz_random_programs():
    """Random builder programs either validate or raise a typed error."""
    rng = random.Random(0xB1D)
    rejected = built = 0
    for _ in range(500):
        builder = _random_builder(rng)
        try:
            program = builder.build()
        except TYPED:
            rejected += 1
            continue
        built += 1
        # build() validates, so everything that survives is well-formed
        for instr in program.instrs:
            for reg in (instr.rd, instr.ra, instr.rb):
                assert reg is None or 0 <= reg < 32
            if instr.target is not None:
                assert 0 <= instr.target < len(program)
    assert rejected > 100
    assert built > 10


def test_program_fuzz_raw_targets():
    """Raw Program construction rejects junk targets with ProgramError."""
    for target in ("nowhere", -1, 10, 1.5, True, [0]):
        instrs = [Instr(Op.BR, target=target), Instr(Op.HALT)]
        with pytest.raises(ProgramError):
            Program(instrs, labels={"here": 0})


def test_program_validate_rejects_junk_fields():
    """validate() rejects junk register/immediate payloads, typed."""
    bad_instrs = [
        Instr(Op.ADD, rd="r1", ra=1, rb=2),
        Instr(Op.ADD, rd=1, ra=True, rb=2),
        Instr(Op.LI, rd=1, imm="five"),
        Instr(Op.LI, rd=1, imm=2.5),
        Instr(Op.LOAD, rd=1, ra=64, imm=0),
    ]
    for instr in bad_instrs:
        with pytest.raises(ProgramError):
            Program([instr, Instr(Op.HALT)]).validate()


def test_builder_duplicate_labels_are_typed():
    builder = ProgramBuilder()
    builder.label("top")
    with pytest.raises(ValueError):
        builder.label("top")
    other = ProgramBuilder()
    other.label("top")
    other.halt()
    builder.halt()
    with pytest.raises(ValueError):
        builder.append_builder(other)
