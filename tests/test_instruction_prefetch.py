"""B-Fetch-I: instruction prefetching along the predicted path."""

import pytest

from repro.core import BFetchConfig
from repro.sim import System, SystemConfig
from repro.workloads import Workload
from repro.workloads.builder import ProgramBuilder
from repro.workloads.patterns import (
    R_ACC,
    R_B1,
    R_SEED,
    R_W0,
    R_W1,
    R_W2,
    emit_bigcode,
)


def build_bigcode(blocks=256, body=80, iters=100):
    bodyb = ProgramBuilder("bigcode")
    bodyb.label("outer")
    emit_bigcode(bodyb, iters, blocks=blocks, body_instrs=body)
    bodyb.br("outer")
    bodyb.halt()
    final = ProgramBuilder("bigcode")
    for reg, value in ((R_ACC, 0), (R_SEED, 1), (R_W0, 1), (R_W1, 2),
                       (R_W2, 3), (R_B1, 0x2000000)):
        final.li(reg, value)
    final.append_builder(bodyb)
    return Workload("bigcode", final.build(), {})


@pytest.fixture(scope="module")
def bigcode():
    return build_bigcode()


def test_bigcode_footprint_exceeds_l1i(bigcode):
    assert len(bigcode.program) * 4 > 64 * 1024


def test_bigcode_pressures_l1i(bigcode):
    system = System(bigcode, SystemConfig())
    system.core.run(60_000)
    stats = system.hierarchy.l1i.stats
    assert stats.misses > 300


def test_bfetch_i_fills_l1i(bigcode):
    config = SystemConfig(
        prefetcher="bfetch",
        bfetch=BFetchConfig(instruction_prefetch=True),
    )
    system = System(bigcode, config)
    system.core.run(60_000)
    assert system.hierarchy.l1i.stats.prefetch_fills > 100


def test_bfetch_i_covers_ifetch_misses_and_speeds_up(bigcode):
    def run(instr_prefetch):
        config = SystemConfig(
            prefetcher="bfetch",
            bfetch=BFetchConfig(instruction_prefetch=instr_prefetch),
        )
        system = System(bigcode, config)
        system.core.run(60_000)
        return system

    plain = run(False)
    bfetch_i = run(True)
    assert plain.hierarchy.l1i.stats.prefetch_fills == 0
    assert bfetch_i.hierarchy.l1i.stats.prefetch_useful > 50
    # fewer demand I-misses and at least parity performance
    assert bfetch_i.hierarchy.l1i.stats.misses < \
        plain.hierarchy.l1i.stats.misses
    assert bfetch_i.core.ipc >= plain.core.ipc


def test_instruction_prefetch_off_by_default():
    assert not BFetchConfig().instruction_prefetch


def test_data_side_results_unchanged_by_flag_on_data_workload():
    from repro.workloads import build_workload
    workload = build_workload("libquantum")

    def ipc(flag):
        config = SystemConfig(
            prefetcher="bfetch",
            bfetch=BFetchConfig(instruction_prefetch=flag),
        )
        system = System(workload, config)
        system.core.run(20_000)
        return system.core.ipc

    # tiny code footprint: the flag must be essentially free
    assert ipc(True) == pytest.approx(ipc(False), rel=0.1)
