"""Cache replacement policies."""

import pytest

from repro.memory import Cache, make_policy
from repro.memory.replacement import (
    LRUPolicy,
    PACManPolicy,
    RandomPolicy,
    SRRIPPolicy,
)


def make_cache(policy):
    return Cache("t", 4 * 64, 4, 64, policy=policy)  # one set of 4 ways


def test_factory():
    assert isinstance(make_policy("lru"), LRUPolicy)
    assert isinstance(make_policy("pacman"), PACManPolicy)
    with pytest.raises(ValueError):
        make_policy("belady")


def test_lru_policy_matches_inline_fast_path():
    explicit = make_cache(LRUPolicy())
    inline = make_cache(None)
    sequence = [0, 1, 2, 3, 0, 4, 1, 5, 2, 6]
    for cache in (explicit, inline):
        for block in sequence:
            if cache.access(block * 64, 0) is None:
                cache.fill(block * 64)
    for block in range(7):
        assert explicit.contains(block * 64) == inline.contains(block * 64)


def test_random_policy_deterministic_with_seed():
    def run():
        cache = make_cache(RandomPolicy(seed=7))
        for block in range(20):
            cache.fill(block * 64)
        return sorted(b for s in cache.sets for b in s)
    assert run() == run()


def test_srrip_protects_rereferenced_lines():
    cache = make_cache(SRRIPPolicy())
    for block in range(4):
        cache.fill(block * 64)
    cache.access(0, 0)  # promote block 0 to RRPV 0
    cache.fill(4 * 64)  # someone must go -- not block 0
    assert cache.contains(0)


def test_pacman_evicts_prefetches_before_demand_lines():
    cache = make_cache(PACManPolicy())
    cache.fill(0 * 64)                     # demand
    cache.fill(1 * 64, prefetched=True)    # distant insertion
    cache.fill(2 * 64)
    cache.fill(3 * 64)
    cache.fill(4 * 64)                     # one victim needed
    assert not cache.contains(1 * 64)      # the prefetch went first
    assert cache.contains(0)


def test_pacman_promoted_prefetch_survives():
    cache = make_cache(PACManPolicy())
    cache.fill(1 * 64, prefetched=True)
    cache.access(1 * 64, 0)  # demand touch promotes it
    for block in (2, 3, 4, 5):
        cache.fill(block * 64)
    assert cache.contains(1 * 64)


def test_llc_policy_flows_through_hierarchy_config():
    from repro.memory import HierarchyConfig
    llc = HierarchyConfig(llc_policy="pacman").make_llc(2)
    assert isinstance(llc.policy, PACManPolicy)
    assert HierarchyConfig().make_llc(1).policy is None  # inline LRU


def test_policy_occupancy_bounded():
    for name in ("lru", "random", "srrip", "pacman"):
        cache = make_cache(make_policy(name))
        for block in range(50):
            cache.fill(block * 64)
        assert cache.occupancy() == 4
