"""B-Fetch engine behaviour on small hand-written kernels."""

import pytest

from repro.core import BFetchConfig, BFetchPrefetcher, bb_hash
from repro.isa import assemble
from repro.sim import System, SystemConfig
from repro.workloads import Workload


def run_system(text, prefetcher="bfetch", instructions=20_000, memory=None,
               bfetch=None):
    workload = Workload("unit", assemble(text), memory or {})
    config = SystemConfig(prefetcher=prefetcher, bfetch=bfetch)
    system = System(workload, config)
    system.core.run(instructions)
    return system


STREAM = """
        li   r8, 0x100000
outer:  li   r16, 200
loop:   load r1, 0(r8)
        add  r4, r4, r1
        addi r8, r8, 64
        subi r16, r16, 1
        bnez r16, loop
        br   outer
        halt
"""


def test_stream_learns_offset_and_loopdelta():
    system = run_system(STREAM)
    pf = system.prefetcher
    slots = [
        slot
        for entry in pf.mht.table
        if entry is not None
        for slot in entry.slots
        if slot.valid and slot.regidx == 8
    ]
    assert slots, "MHT never learned the stream's base register"
    assert any(slot.loopdelta == 64 for slot in slots)


def test_stream_brtc_links_loop_branch_to_itself():
    system = run_system(STREAM)
    pf = system.prefetcher
    program = system.workload.program
    bnez_pc = program.pc_of(program.labels["loop"] + 4)
    loop_pc = program.pc_of(program.labels["loop"])
    h = bb_hash(bnez_pc, True, loop_pc)
    step = pf.brtc.lookup(h, bnez_pc & 0xFFFFFFFF)
    assert step is not None
    end_pc, taken_target = step
    assert end_pc == bnez_pc and taken_target == loop_pc


def test_stream_prefetches_are_useful():
    system = run_system(STREAM)
    pf = system.prefetcher
    assert pf.stats.issued > 100
    # demanded = useful + late now that the outcome counters are disjoint
    assert pf.stats.useful + pf.stats.late > 0.8 * pf.stats.issued
    assert pf.walks > 0
    assert pf.mean_lookahead_depth > 2


def test_stream_speedup_over_baseline():
    base = run_system(STREAM, prefetcher="none")
    bf = run_system(STREAM)
    assert bf.core.ipc > 1.5 * base.core.ipc


PATTERN = """
        li   r8, 0x200000
outer:  li   r16, 150
loop:   load r1, 0(r8)
        load r2, 64(r8)
        load r3, 128(r8)
        add  r4, r4, r1
        addi r8, r8, 512
        subi r16, r16, 1
        bnez r16, loop
        br   outer
        halt
"""


def test_same_register_block_pattern_learned():
    system = run_system(PATTERN)
    pf = system.prefetcher
    slots = [
        slot
        for entry in pf.mht.table
        if entry is not None
        for slot in entry.slots
        if slot.valid and slot.regidx == 8 and slot.pospatt
    ]
    assert slots
    # loads at +64 and +128 from the primary: pattern bits 0 and 1
    assert slots[0].pospatt & 0b11 == 0b11


def test_pattern_prefetch_can_be_disabled():
    cfg = BFetchConfig(pattern_prefetch=False)
    system = run_system(PATTERN, bfetch=cfg)
    pf = system.prefetcher
    for entry in pf.mht.table:
        if entry is None:
            continue
        for slot in entry.slots:
            assert slot.pospatt == 0 and slot.negpatt == 0


def test_filter_disabled_issues_more_candidates():
    gated = run_system(STREAM)
    open_cfg = BFetchConfig(use_filter=False)
    ungated = run_system(STREAM, bfetch=open_cfg)
    assert ungated.prefetcher.filtered == 0
    assert gated.prefetcher.candidates > 0


def test_unrepresentable_offset_invalidates_slot():
    pf = BFetchPrefetcher(BFetchConfig(offset_bits=8))
    # offsets beyond +-127 cannot be stored
    assert pf.config.offset_limit == 127


def test_lookahead_requires_attach():
    pf = BFetchPrefetcher()
    with pytest.raises(RuntimeError):
        pf.on_branch_decode(0x1000, True, 0x2000, 0)


HASHY = """
        li   r8, 0x900000
outer:  li   r16, 300
loop:   li   r2, 1103515245
        mul  r20, r20, r2
        addi r20, r20, 12345
        srli r1, r20, 8
        andi r1, r1, 0x7ff8
        add  r12, r8, r1
        load r3, 0(r12)
        add  r4, r4, r3
        subi r16, r16, 1
        bnez r16, loop
        br   outer
        halt
"""


def test_unstable_offsets_never_become_candidates():
    """A load whose address is hash-computed bears no stable relation to
    any register at the branch; the offset-stability hysteresis must keep
    it out of the prefetch stream (this is what keeps B-Fetch quiet on
    gamess/sjeng-class code)."""
    system = run_system(HASHY, instructions=30_000)
    pf = system.prefetcher
    unstable = [
        slot
        for entry in pf.mht.table
        if entry is not None
        for slot in entry.slots
        if slot.regidx == 12
    ]
    assert unstable, "the hash-computed load never trained"
    assert all(slot.stable == 0 for slot in unstable)
    assert pf.stats.useless < 20


def test_stable_offsets_reconfirm_and_issue():
    system = run_system(STREAM)
    pf = system.prefetcher
    slots = [
        slot
        for entry in pf.mht.table
        if entry is not None
        for slot in entry.slots
        if slot.valid and slot.regidx == 8
    ]
    assert any(slot.stable >= 2 for slot in slots)


BRANCHY = """
        li   r9, 0x300000
        li   r12, 0x400000
outer:  li   r16, 100
loop:   load r5, 0(r9)
        bnez r5, big
        addi r12, r12, 64
        br   join
big:    addi r12, r12, 320
join:   load r1, 0(r12)
        add  r4, r4, r1
        addi r9, r9, 8
        subi r16, r16, 1
        bnez r16, loop
        li   r12, 0x400000
        br   outer
        halt
"""


def test_branchy_offsets_stable_per_direction():
    memory = {}
    for i in range(100):
        memory[0x300000 + i * 8] = 1 if i % 5 else 0
    system = run_system(BRANCHY, memory=memory)
    pf = system.prefetcher
    offsets = {
        slot.offset
        for entry in pf.mht.table
        if entry is not None
        for slot in entry.slots
        if slot.valid and slot.regidx == 12
    }
    assert offsets, "walk register never learned"
    # at least one path-specific offset was learned and prefetches flowed
    assert pf.stats.issued > 0


def test_storage_bits_scale_with_config():
    small = BFetchPrefetcher(BFetchConfig.sized(64)).storage_bits()
    default = BFetchPrefetcher(BFetchConfig()).storage_bits()
    big = BFetchPrefetcher(BFetchConfig.sized(512)).storage_bits()
    assert small < default < big
