"""Trace capture and replay."""

import pytest

from repro.cpu import Machine
from repro.cpu.trace import TraceReplay, capture_trace, save_trace
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload("gromacs")


def test_capture_has_header_and_records(workload):
    text = capture_trace(workload, 500)
    lines = text.splitlines()
    assert lines[0].startswith("#repro-trace v1")
    assert len(lines) == 501


def test_replay_matches_live_execution(workload):
    text = capture_trace(workload, 2000)
    replay = TraceReplay(workload.program, text)
    live = Machine(workload.program, dict(workload.memory))
    for _ in range(2000):
        r_instr, r_taken, r_ea = replay.step()
        l_instr, l_taken, l_ea = live.step()
        assert r_instr is l_instr
        assert r_taken == l_taken
        assert r_ea == l_ea
    assert replay.exhausted


def test_replay_rejects_wrong_program(workload):
    text = capture_trace(workload, 100)
    other = build_workload("libquantum")
    with pytest.raises(ValueError):
        TraceReplay(other.program, text)


def test_replay_rejects_garbage(workload):
    with pytest.raises(ValueError):
        TraceReplay(workload.program, "not a trace")


def test_exhausted_raises(workload):
    replay = TraceReplay(workload.program, capture_trace(workload, 10))
    for _ in range(10):
        replay.step()
    with pytest.raises(StopIteration):
        replay.step()


def test_save_and_load_roundtrip(tmp_path, workload):
    path = str(tmp_path / "trace.txt")
    count = save_trace(path, workload, 300)
    assert count == 300
    replay = TraceReplay.load(workload.program, path)
    instr, taken, ea = replay.step()
    assert instr is workload.program.instrs[instr.index]


def test_replay_drives_timing_core(workload):
    """A miss-driven prefetcher A/B run on a frozen trace."""
    from repro.branch import BranchTargetBuffer, CompositeConfidenceEstimator
    from repro.branch.tournament import TournamentPredictor
    from repro.cpu.ooo import OutOfOrderCore
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.prefetchers import StridePrefetcher

    text = capture_trace(workload, 3000)
    replay = TraceReplay(workload.program, text)
    core = OutOfOrderCore(
        replay,
        MemoryHierarchy(),
        TournamentPredictor(),
        CompositeConfidenceEstimator(),
        BranchTargetBuffer(),
        StridePrefetcher(),
    )
    cycles = core.run(2500)
    assert core.retired >= 2500
    assert cycles > 0
