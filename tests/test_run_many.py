"""Parallel batch API: determinism, cache-aware scheduling, key identity."""

import itertools

import pytest

from repro.sim import ExperimentRunner, RunRequest, SystemConfig
from repro.sim.runner import default_jobs

BENCHES = ("gamess", "libquantum", "mcf")
BUDGET = 4_000


def _requests(benches=BENCHES, prefetchers=("none", "stride")):
    return [
        RunRequest(bench, prefetcher, BUDGET)
        for bench in benches
        for prefetcher in prefetchers
    ]


def test_run_many_matches_serial_byte_identical(tmp_path):
    serial = ExperimentRunner()
    expected = [
        serial.run_single(r.benchmark, r.prefetcher, r.instructions)
        for r in _requests()
    ]
    parallel = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
    got = parallel.run_many(_requests(), jobs=4)
    assert [r.as_dict() for r in got] == [r.as_dict() for r in expected]


def test_run_many_without_cache_dir(tmp_path):
    runner = ExperimentRunner()  # no disk cache at all
    results = runner.run_many(_requests(benches=("gamess",)), jobs=2)
    assert [r.prefetcher for r in results] == ["none", "stride"]
    assert all(r.instructions == BUDGET for r in results)


def test_run_many_serial_path_equivalent(tmp_path):
    a = ExperimentRunner(cache_dir=str(tmp_path / "a"))
    b = ExperimentRunner(cache_dir=str(tmp_path / "b"))
    jobs1 = a.run_many(_requests(), jobs=1)
    jobs4 = b.run_many(_requests(), jobs=4)
    assert [r.as_dict() for r in jobs1] == [r.as_dict() for r in jobs4]


def test_run_many_respects_repro_jobs_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    assert default_jobs() == 2
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    results = runner.run_many(_requests(benches=("gamess",)))
    assert len(results) == 2
    monkeypatch.setenv("REPRO_JOBS", "two")
    with pytest.raises(ValueError, match="REPRO_JOBS"):
        default_jobs()


def test_repro_jobs_rejects_non_positive(monkeypatch):
    for bad in ("0", "-4"):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(ValueError, match="REPRO_JOBS must be a positive"):
            default_jobs()


def test_run_many_rejects_non_positive_jobs():
    runner = ExperimentRunner()
    with pytest.raises(ValueError, match="jobs must be a positive"):
        runner.run_many([RunRequest("gamess", "none", BUDGET)], jobs=0)


def test_run_many_deduplicates_identical_requests():
    runner = ExperimentRunner()
    request = RunRequest("gamess", "none", BUDGET)
    results = runner.run_many([request, request, request], jobs=1)
    dicts = [r.as_dict() for r in results]
    assert dicts[0] == dicts[1] == dicts[2]
    # each caller gets an isolated copy, not a shared alias
    results[0].data["ipc"] = -1.0
    assert results[1].ipc != -1.0


def test_run_many_served_from_warm_cache_without_pool(tmp_path, monkeypatch):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_many(_requests(), jobs=1)
    # poison the execution path: any recompute would now blow up
    import repro.sim.runner as runner_mod

    def _boom(*args, **kwargs):
        raise AssertionError("cache-aware scheduling dispatched a hit")

    monkeypatch.setattr(runner_mod, "_execute_single", _boom)
    warm = ExperimentRunner(cache_dir=str(tmp_path))
    second = warm.run_many(_requests(), jobs=4)
    assert [r.as_dict() for r in second] == [r.as_dict() for r in first]


def test_sweep_shape_and_baseline_sharing(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    baselines, table = runner.sweep(
        ("gamess", "libquantum"), ("stride",), instructions=BUDGET, jobs=2
    )
    assert set(baselines) == {"gamess", "libquantum"}
    assert set(table["gamess"]) == {"stride"}
    for bench in baselines:
        assert baselines[bench].prefetcher == "none"
        assert table[bench]["stride"].workload == bench


# ----------------------------------------------------------------------
# cache-key identity


def test_config_key_round_trips():
    config = SystemConfig(prefetcher="bfetch", width=2, bp_scale=0.5)
    assert config.key() == config.key()
    rebuilt = SystemConfig(prefetcher="bfetch", width=2, bp_scale=0.5)
    assert rebuilt.key() == config.key()


def test_distinct_configs_never_collide():
    variants = [
        SystemConfig(),
        SystemConfig(width=2),
        SystemConfig(rob_entries=96),
        SystemConfig(bp_scale=0.5),
        SystemConfig(prefetcher="stride"),
        SystemConfig(prefetcher="stride", stride_degree=4),
        SystemConfig(prefetcher="nextn", nextn_degree=8),
        SystemConfig(branch_predictor="perceptron"),
    ]
    keys = [v.key() for v in variants]
    for (i, a), (j, b) in itertools.combinations(enumerate(keys), 2):
        assert a != b, "configs %d and %d collide" % (i, j)


def test_distinct_bfetch_configs_never_collide():
    from repro.core.config import BFetchConfig

    variants = [
        SystemConfig(prefetcher="bfetch"),
        SystemConfig(prefetcher="bfetch",
                     bfetch=BFetchConfig(brtc_entries=128)),
        SystemConfig(prefetcher="bfetch",
                     bfetch=BFetchConfig(path_confidence_threshold=0.5)),
        SystemConfig(prefetcher="bfetch", bfetch=BFetchConfig(use_filter=False)),
        SystemConfig(prefetcher="bfetch",
                     bfetch=BFetchConfig(instruction_prefetch=True)),
    ]
    keys = [v.key() for v in variants]
    assert len(set(keys)) == len(keys)


def test_cache_key_includes_variant():
    runner = ExperimentRunner(cache_dir=None)
    base = runner._single_payload("gamess", 5000, SystemConfig(), 0)
    variant = runner._single_payload("gamess", 5000, SystemConfig(), 3)
    assert runner._memo_key("single", base) != runner._memo_key(
        "single", variant
    )
