"""Memory-system scenario tests: multi-level interactions under load."""

from repro.memory import Cache, HierarchyConfig, MemoryHierarchy


def test_llc_warming_by_sibling_core_changes_latency_class():
    cfg = HierarchyConfig()
    llc = cfg.make_llc(2)
    dram = cfg.make_dram()
    a = MemoryHierarchy(cfg, llc=llc, dram=dram)
    b = MemoryHierarchy(cfg, llc=llc, dram=dram)
    cold, _ = a.load(0x500000, now=0)
    warm, _ = b.load(0x500000, now=10_000)
    assert warm < cold
    assert warm == cfg.l1_latency + cfg.l2_latency + cfg.llc_latency


def test_llc_pollution_by_sibling_core():
    """A streaming core evicts a quiet core's LLC-resident data."""
    cfg = HierarchyConfig(llc_size_per_core=64 * 1024, llc_assoc=4)
    llc = cfg.make_llc(1)
    dram = cfg.make_dram()
    quiet = MemoryHierarchy(cfg, llc=llc, dram=dram)
    noisy = MemoryHierarchy(cfg, llc=llc, dram=dram)
    quiet.load(0x100000, now=0)
    # the streamer pushes several LLC's worth of blocks through
    for i in range(4 * 1024):
        noisy.load(0x800000 + i * 64, now=100 + i)
    # the quiet core's block fell out of the shared LLC (still in its
    # private L1/L2 though)
    assert not llc.contains(0x100000)


def test_prefetch_traffic_bounded_demand_penalty():
    """Demand misses issued after a prefetch burst pay at most ~one
    transfer of queueing."""
    cfg = HierarchyConfig()
    h = MemoryHierarchy(cfg)
    for i in range(20):
        h.prefetch(0x900000 + i * 64, now=0)
    latency, _ = h.load(0xA00000, now=0)
    base = (cfg.l1_latency + cfg.l2_latency + cfg.llc_latency
            + cfg.dram_latency)
    assert latency <= base + cfg.dram_cycles_per_transfer + 1


def test_mshr_pressure_vs_capacity():
    fat = MemoryHierarchy(HierarchyConfig(mshr_entries=32))
    thin = MemoryHierarchy(HierarchyConfig(mshr_entries=2))
    fat_latencies = [fat.load(0xB00000 + i * 64, 0)[0] for i in range(8)]
    thin_latencies = [thin.load(0xB00000 + i * 64, 0)[0] for i in range(8)]
    assert sum(thin_latencies) > sum(fat_latencies)


def test_l2_keeps_blocks_evicted_from_l1():
    cfg = HierarchyConfig(l1d_size=2 * 64, l1d_assoc=2)
    h = MemoryHierarchy(cfg)
    h.load(0, now=0)
    h.load(64, now=1)
    h.load(128, now=2)  # evicts block 0 from the tiny L1
    assert not h.l1d.contains(0)
    latency, hit = h.load(0, now=1000)
    assert not hit
    assert latency == cfg.l1_latency + cfg.l2_latency


def test_prefetched_line_upgrade_path():
    """L2-resident data prefetched into L1 arrives with a short ready
    horizon; DRAM-resident data with a long one."""
    h = MemoryHierarchy(HierarchyConfig())
    h.l2.fill(0xC00000)
    h.prefetch(0xC00000, now=0)
    near = h.l1d.lookup(0xC00000).ready
    h.prefetch(0xD00000, now=0)
    far = h.l1d.lookup(0xD00000).ready
    assert near < far


def test_cache_set_isolation():
    cache = Cache("t", 8 * 64, 2, 64)  # 4 sets x 2 ways
    # fill set 0 heavily; set 1 lines must survive
    cache.fill(1 * 64)
    for i in range(10):
        cache.fill(i * 4 * 64)
    assert cache.contains(1 * 64)
