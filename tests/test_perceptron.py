"""Perceptron branch predictor."""

import pytest

from repro.branch import PerceptronPredictor


def test_learns_biased_branch():
    p = PerceptronPredictor(entries=64)
    for _ in range(50):
        p.update(0x100, True)
    assert p.predict(0x100)


def test_learns_history_correlation():
    """taken iff the previous outcome was not-taken (period-2 pattern)."""
    p = PerceptronPredictor(entries=64, history_bits=8)
    for i in range(400):
        p.update(0x200, i % 2 == 0)
    correct = 0
    for i in range(40):
        taken = i % 2 == 0
        correct += p.predict(0x200) == taken
        p.update(0x200, taken)
    assert correct >= 38


def test_learns_xor_of_history_bits():
    """A pattern linear in history (parity of position) that a 2-bit
    counter scheme cannot capture but a perceptron can."""
    p = PerceptronPredictor(entries=64, history_bits=8)
    outcomes = [True, True, False, False] * 200
    for taken in outcomes:
        p.update(0x300, taken)
    correct = 0
    for i, taken in enumerate([True, True, False, False] * 10):
        correct += p.predict(0x300) == taken
        p.update(0x300, taken)
    assert correct >= 36


def test_weights_saturate():
    p = PerceptronPredictor(entries=16, history_bits=4, weight_bits=4)
    for _ in range(1000):
        p.update(0x40, True)
    weights = p.weights[(0x40 >> 2) & 15]
    assert all(abs(w) <= p.weight_limit for w in weights)


def test_speculative_lookup_side_effect_free():
    p = PerceptronPredictor(entries=64)
    for _ in range(20):
        p.update(0x500, True)
    snapshot = [list(w) for w in p.weights]
    history = p.history
    p.predict(0x500, history=0xABC)
    assert p.history == history
    assert [list(w) for w in p.weights] == snapshot


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        PerceptronPredictor(entries=100)


def test_storage_accounting():
    p = PerceptronPredictor(entries=512, history_bits=24, weight_bits=8)
    assert p.storage_bits() == 512 * 25 * 8 + 24


def test_system_config_integration():
    from repro.sim import SystemConfig
    config = SystemConfig(branch_predictor="perceptron")
    predictor = config.make_predictor()
    assert predictor.name == "perceptron"
    with pytest.raises(ValueError):
        SystemConfig(branch_predictor="psychic")
