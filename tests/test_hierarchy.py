"""Memory hierarchy: stacked latencies, MSHRs, prefetch semantics, DRAM."""

import pytest

from repro.memory import DramModel, HierarchyConfig, MemoryHierarchy


def make(**kwargs):
    return MemoryHierarchy(HierarchyConfig(**kwargs))


def test_latency_stack_cold_then_warm():
    h = make()
    cfg = h.config
    latency, hit = h.load(0x10000, now=0)
    assert not hit
    assert latency >= cfg.l1_latency + cfg.l2_latency + cfg.llc_latency + \
        cfg.dram_latency
    latency, hit = h.load(0x10000, now=1000)
    assert hit and latency == cfg.l1_latency


def test_l2_hit_latency():
    h = make()
    h.l2.fill(0x20000)
    latency, hit = h.load(0x20000, now=0)
    assert not hit
    assert latency == h.config.l1_latency + h.config.l2_latency


def test_llc_hit_latency():
    h = make()
    h.llc.fill(0x30000)
    latency, hit = h.load(0x30000, now=0)
    assert latency == (h.config.l1_latency + h.config.l2_latency
                       + h.config.llc_latency)
    # fill path installed it into L2 as well
    assert h.l2.contains(0x30000)


def test_mshr_limit_serialises_demand_misses():
    h = make(mshr_entries=2, dram_latency=100, dram_cycles_per_transfer=0)
    latencies = [h.load(0x100000 + i * 64, now=0)[0] for i in range(4)]
    # first two fit in MSHRs; the next two wait for a free slot
    assert latencies[0] < latencies[2]
    assert latencies[1] < latencies[3]


def test_prefetch_fills_with_future_ready_time():
    h = make()
    assert h.prefetch(0x40000, now=0, meta=7)
    line = h.l1d.lookup(0x40000)
    assert line.prefetched and line.meta == 7 and line.ready > 0


def test_prefetch_duplicate_rejected():
    h = make()
    assert h.prefetch(0x40000, now=0)
    assert not h.prefetch(0x40000, now=1)


def test_late_prefetch_partially_hides_latency():
    h = make()
    h.prefetch(0x50000, now=0)
    line = h.l1d.lookup(0x50000)
    ready = line.ready
    latency, hit = h.load(0x50000, now=ready - 10)
    assert hit
    assert latency == 10 + h.config.l1_latency
    assert h.l1d.stats.late_hits == 1


def test_timely_prefetch_is_l1_hit():
    h = make()
    h.prefetch(0x60000, now=0)
    ready = h.l1d.lookup(0x60000).ready
    latency, hit = h.load(0x60000, now=ready + 5)
    assert hit and latency == h.config.l1_latency
    assert h.l1d.stats.prefetch_useful == 1


def test_feedback_outcomes():
    outcomes = []
    h = make()
    h.pf_feedback = lambda meta, outcome: outcomes.append((meta, outcome))
    h.prefetch(0x70000, now=0, meta=1)
    ready = h.l1d.lookup(0x70000).ready
    h.load(0x70000, now=ready + 1)
    assert outcomes == [(1, "useful")]
    h.prefetch(0x70040, now=0, meta=2)
    h.load(0x70040, now=1)
    assert outcomes[-1] == (2, "late")


def test_useless_feedback_on_eviction():
    outcomes = []
    h = make(l1d_size=2 * 64, l1d_assoc=2)
    h.pf_feedback = lambda meta, outcome: outcomes.append((meta, outcome))
    h.prefetch(0, now=0, meta=9)
    h.load(64, now=0)
    h.load(128, now=0)
    assert (9, "useless") in outcomes


def test_oracle_access_does_not_touch_dram():
    h = make()
    before = h.dram.accesses
    for i in range(10):
        h.access_oracle(0x80000 + i * 64, now=0)
    assert h.dram.accesses == before
    assert h.l1d.contains(0x80000)


def test_ifetch_uses_l1i():
    h = make()
    first = h.ifetch(0x1000, now=0)
    second = h.ifetch(0x1000, now=100)
    assert first > second == h.config.l1_latency


def test_store_allocates():
    h = make()
    h.store(0x90000, now=0)
    assert h.l1d.contains(0x90000)


def test_store_marks_dirty_and_eviction_counts_writeback():
    h = make(l1d_size=2 * 64, l1d_assoc=2)
    h.store(0, now=0)
    assert h.l1d.lookup(0).dirty
    h.load(64, now=0)
    h.load(128, now=0)  # evicts the dirty line
    assert h.l1d.stats.writebacks == 1


def test_clean_evictions_are_not_writebacks():
    h = make(l1d_size=2 * 64, l1d_assoc=2)
    for block in (0, 64, 128):
        h.load(block, now=0)
    assert h.l1d.stats.writebacks == 0


class TestDram:
    def test_serialises_transfers(self):
        dram = DramModel(latency=100, cycles_per_transfer=5)
        l1 = dram.access(0)
        l2 = dram.access(0)
        assert l1 == 100
        assert l2 == 105  # waits for the channel

    def test_queue_delay(self):
        dram = DramModel(latency=100, cycles_per_transfer=5)
        dram.access(0)
        assert dram.queue_delay(0) == 5
        assert dram.queue_delay(100) == 0

    def test_reset(self):
        dram = DramModel()
        dram.access(0)
        dram.reset()
        assert dram.accesses == 0 and dram.next_free == 0

    def test_demand_priority_over_prefetch_backlog(self):
        """A demand transfer waits at most one transfer slot behind a
        pile of queued prefetches."""
        dram = DramModel(latency=100, cycles_per_transfer=5)
        for _ in range(10):
            dram.access(0, demand=False)  # 50 cycles of prefetch backlog
        latency = dram.access(0, demand=True)
        assert latency <= 100 + 5

    def test_prefetch_queues_behind_everything(self):
        dram = DramModel(latency=100, cycles_per_transfer=5)
        dram.access(0, demand=True)
        latency = dram.access(0, demand=False)
        assert latency == 105

    def test_demand_transfers_serialise_with_each_other(self):
        dram = DramModel(latency=100, cycles_per_transfer=5)
        first = dram.access(0, demand=True)
        second = dram.access(0, demand=True)
        assert second == first + 5

    def test_prefetch_counter(self):
        dram = DramModel()
        dram.access(0, demand=False)
        dram.access(0, demand=True)
        assert dram.prefetch_accesses == 1
        assert dram.accesses == 2


def test_shared_llc_between_hierarchies():
    cfg = HierarchyConfig()
    llc = cfg.make_llc(2)
    dram = cfg.make_dram()
    h1 = MemoryHierarchy(cfg, llc=llc, dram=dram)
    h2 = MemoryHierarchy(cfg, llc=llc, dram=dram)
    h1.load(0xA0000, now=0)
    # the second core's miss now hits in the shared LLC
    latency, hit = h2.load(0xA0000, now=1000)
    assert not hit
    assert latency == cfg.l1_latency + cfg.l2_latency + cfg.llc_latency
