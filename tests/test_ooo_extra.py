"""Additional timing-core behaviours around branches and fetch groups."""

from repro.isa import assemble
from repro.sim import System, SystemConfig
from repro.workloads import Workload


def build(text, memory=None, **kwargs):
    return System(Workload("unit", assemble(text), memory or {}),
                  SystemConfig(**kwargs))


UNCOND = """
outer:  addi r1, r1, 1
        br   mid
        halt
mid:    addi r2, r2, 1
        br   outer
        halt
"""


def test_unconditional_branches_never_mispredict():
    system = build(UNCOND)
    system.core.run(10_000)
    assert system.core.mispredicts == 0
    assert system.core.branches > 1000
    assert system.core.cond_branches == 0


def test_unconditional_branches_train_confidence():
    system = build(UNCOND)
    system.core.run(5_000)
    program = system.workload.program
    br_pc = program.pc_of(1)
    # repeated always-taken branches should look highly confident
    assert system.confidence.probability(br_pc, 0) > 0.9


def test_taken_branch_ends_fetch_group():
    system = build(UNCOND)
    system.core.run(10_000)
    hist = system.core.fetch_branch_hist
    # each group contains exactly one (taken) branch
    assert hist[1] > 0
    assert hist[2] == hist[3] == hist[4] == 0


NEVER_TAKEN = """
outer:  addi r1, r1, 1
        bnez r31, outer
        addi r2, r2, 1
        bnez r31, outer
        addi r3, r3, 1
        br   outer
        halt
"""


def test_never_taken_separators_learned():
    system = build(NEVER_TAKEN)
    system.core.run(10_000)
    # bnez on the zero register is never taken; after warmup the
    # tournament predictor nails it
    assert system.core.mispredict_rate < 0.01
    # multiple not-taken branches can share a fetch group
    assert system.core.fetch_branch_hist[2] > 0


def test_bfetch_walks_through_not_taken_separators():
    system = build(NEVER_TAKEN, prefetcher="bfetch")
    system.core.run(20_000)
    pf = system.prefetcher
    assert pf.walks > 100
    assert pf.brtc.hit_rate > 0.5
    # the walk steps through both not-taken separators; it may stop at
    # the unconditional back-edge (whose direction the predictor never
    # trains), so the mean depth sits between 2 and 3
    assert pf.mean_lookahead_depth > 2


def test_ifetch_miss_stalls_fetch_once():
    system = build(UNCOND)
    system.core.run(1_000)
    assert system.hierarchy.l1i.stats.misses >= 1
    # after warmup the tiny program is fully L1I resident
    before = system.hierarchy.l1i.stats.misses
    system.core.budget += 1_000
    system.core.done = False
    now = system.core.cycle
    while not system.core.done:
        now = system.core.step_cycle(now)
    assert system.hierarchy.l1i.stats.misses == before
