"""Front-end configs and the batch kernel: cleanly ineligible.

The SoA batch kernel transcribes the frontend-free fetch loop into
columns; FTQ run-ahead state has no lane representation.  The contract
is *graceful* ineligibility: ``REPRO_BATCH=auto`` silently serves
front-end runs on the scalar path (recording a named fallback reason),
``REPRO_BATCH=on`` refuses loudly, and the payloads are identical
either way.
"""

import pytest

from repro.batch import (
    BatchIneligible,
    BatchKernel,
    batch_counters,
    batchable,
    fallback_reasons,
    reset_batch_counters,
)
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner, RunRequest
from repro.sim.system import System
from repro.trace.store import clear_memos, reset_counters
from repro.workloads.spec import build_workload

FRONTEND_REASON = "decoupled front end is enabled"
STEPS = 2_500


@pytest.fixture(autouse=True)
def _fresh_batch_state(monkeypatch):
    clear_memos()
    reset_counters()
    reset_batch_counters()
    monkeypatch.delenv("REPRO_BATCH", raising=False)
    monkeypatch.delenv("REPRO_TRACE_REPLAY", raising=False)
    yield
    clear_memos()
    reset_counters()
    reset_batch_counters()


def _ftq_config():
    return SystemConfig(prefetcher="none", frontend="ftq",
                        iprefetcher="fdip")


def _requests(steps=STEPS):
    return [RunRequest(bench, "none", steps, _ftq_config())
            for bench in ("nginx", "mcf")]


def test_batchable_names_the_frontend_gate():
    system = System(build_workload("nginx"), _ftq_config())
    assert batchable(system, STEPS) == FRONTEND_REASON
    with pytest.raises(BatchIneligible, match="front end"):
        BatchKernel().add_lane(system, STEPS)


def test_frontend_gate_fires_before_replay_gate():
    """The named reason must be the front end, not the (also missing)
    replay source -- callers diagnosing fallbacks see the real cause."""
    system = System(build_workload("nginx"), _ftq_config())
    assert system.replay is None
    assert batchable(system, STEPS) == FRONTEND_REASON


def test_auto_mode_falls_back_scalar_with_named_reason(tmp_path,
                                                       monkeypatch):
    expected = [r.as_dict() for r in
                ExperimentRunner().run_many(_requests(), jobs=1)]
    reset_batch_counters()
    monkeypatch.setenv("REPRO_BATCH", "auto")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = [r.as_dict() for r in runner.run_many(_requests(), jobs=1)]
    assert got == expected
    assert batch_counters["lanes"] == 0
    assert batch_counters["fallback"] == len(_requests())
    assert fallback_reasons == {FRONTEND_REASON: len(_requests())}


def test_on_mode_raises_batch_ineligible(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BATCH", "on")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    with pytest.raises(BatchIneligible, match="front end"):
        runner.run_many(_requests(), jobs=1)


def test_mixed_batch_serves_eligible_lanes_only(tmp_path, monkeypatch):
    """Off-mode lanes still go through the kernel when a front-end
    request rides in the same batch."""
    requests = _requests() + [RunRequest("mcf", "bfetch", STEPS)]
    expected = [r.as_dict() for r in
                ExperimentRunner().run_many(requests, jobs=1)]
    reset_batch_counters()
    monkeypatch.setenv("REPRO_BATCH", "auto")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = [r.as_dict() for r in runner.run_many(requests, jobs=1)]
    assert got == expected
    assert batch_counters["lanes"] == 1
    assert fallback_reasons == {FRONTEND_REASON: len(_requests())}


def test_reset_clears_fallback_reasons():
    from repro.batch import record_fallback
    record_fallback("some reason")
    assert fallback_reasons == {"some reason": 1}
    assert batch_counters["fallback"] == 1
    reset_batch_counters()
    assert fallback_reasons == {}
    assert batch_counters["fallback"] == 0
