"""Set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import Cache


def make(size=4096, assoc=4, block=64, listeners=None):
    return Cache("test", size, assoc, block, eviction_listeners=listeners)


def test_miss_then_hit():
    cache = make()
    assert cache.access(0x1000) is None
    cache.fill(0x1000)
    assert cache.access(0x1000) is not None
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_block_granularity():
    cache = make()
    cache.fill(0x1000)
    assert cache.access(0x103F) is not None  # same 64B block
    assert cache.access(0x1040) is None      # next block


def test_lru_eviction_order():
    cache = make(size=4 * 64, assoc=4, block=64)  # one set of 4 ways
    addrs = [i * 64 for i in range(4)]
    for addr in addrs:
        cache.fill(addr)
    cache.access(addrs[0])  # refresh way 0
    cache.fill(4 * 64)      # evicts LRU = addrs[1]
    assert cache.contains(addrs[0])
    assert not cache.contains(addrs[1])


def test_fill_refreshes_existing_line_without_eviction():
    cache = make(size=4 * 64, assoc=4)
    for i in range(4):
        cache.fill(i * 64)
    evicted = cache.fill(0)  # already resident
    assert evicted is None
    assert cache.occupancy() == 4


def test_eviction_listener_invoked_with_address_and_line():
    events = []
    cache = make(size=2 * 64, assoc=2,
                 listeners=[lambda addr, line: events.append((addr, line))])
    cache.fill(0, prefetched=True, meta=0x2A)
    cache.fill(64)
    cache.fill(128)
    assert len(events) == 1
    addr, line = events[0]
    assert addr == 0
    assert line.prefetched and line.meta == 0x2A


def test_useless_prefetch_counted_on_eviction():
    cache = make(size=2 * 64, assoc=2)
    cache.fill(0, prefetched=True)
    cache.fill(64)
    cache.fill(128)  # evicts the unused prefetch
    assert cache.stats.prefetch_useless == 1


def test_used_prefetch_not_counted_useless():
    cache = make(size=2 * 64, assoc=2)
    cache.fill(0, prefetched=True)
    line = cache.access(0)
    line.used = True
    cache.fill(64)
    cache.fill(128)
    assert cache.stats.prefetch_useless == 0


def test_invalidate():
    cache = make()
    cache.fill(0x1000)
    cache.invalidate(0x1000)
    assert not cache.contains(0x1000)


def test_flush():
    cache = make()
    for i in range(10):
        cache.fill(i * 64)
    cache.flush()
    assert cache.occupancy() == 0


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache("bad", 1000, 4, 64)
    with pytest.raises(ValueError):
        Cache("bad", 4096, 4, 60)


def test_ready_time_carried_on_prefetch_fill():
    cache = make()
    cache.fill(0x2000, now=10, prefetched=True, ready=50)
    line = cache.lookup(0x2000)
    assert line.ready == 50


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 31)), max_size=200))
@settings(max_examples=40, deadline=None)
def test_matches_reference_lru_model(ops):
    """The cache must behave exactly like a per-set LRU reference model."""
    cache = make(size=4 * 64 * 2, assoc=4, block=64)  # 2 sets, 4 ways
    reference = {0: [], 1: []}  # set index -> MRU-last list of blocks
    for is_fill, block in ops:
        addr = block * 64
        set_index = block & 1
        lru = reference[set_index]
        if is_fill:
            cache.fill(addr)
            if block in lru:
                lru.remove(block)
                lru.append(block)
            else:
                if len(lru) == 4:
                    lru.pop(0)
                lru.append(block)
        else:
            hit = cache.access(addr) is not None
            assert hit == (block in lru)
            if hit:
                lru.remove(block)
                lru.append(block)
    for set_index, lru in reference.items():
        for block in lru:
            assert cache.contains(block * 64)
