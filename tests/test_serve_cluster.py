"""Cluster-tier tests: remote nodes, cache peers, stealing, partitions.

The acceptance bar is the repo's standing rule lifted to multiple
hosts -- recovery must be *byte-identical*, not merely "successful":

* a 2-node cluster under sustained ``host-kill`` + ``cache-peer-corrupt``
  chaos completes a sweep with zero lost jobs, every result equal to the
  serial :meth:`ExperimentRunner.run_batch` reference;
* killing the last node mid-run degrades the cluster to the local fleet
  (typed gauge + transition counter) and the job still completes;
* a ``host-partition`` node finishes its in-flight shard into its local
  cache, reconnects, and the job converges;
* work stealing duplicates a straggler's shard and stays byte-identical
  (first write wins in the content-addressed cache);
* every cache entry crossing a peer socket is verified against its
  integrity envelope in both directions.

Plus socket-light unit coverage for rendezvous placement, peer-server
eviction, shard planning, the steal age gate, replay-on-reconnect and
the client's transparent reconnect-and-resend.
"""

import asyncio
import json
import os
import socket
import threading
import time

import pytest

from repro.resilience.envelope import wrap_envelope
from repro.resilience.faults import FaultPlan, parse_faults
from repro.serve import ServeClient, ServeError, protocol
from repro.serve.cluster import (
    CachePeerServer,
    ClusterSupervisor,
    PeerSet,
    parse_hostport,
    rendezvous_rank,
    spawn_node,
)
from repro.serve.cluster.cas import _valid_relpath
from repro.serve.jobs import Job
from repro.serve.metrics import ServeMetrics
from repro.serve.server import ServerThread
from repro.sim import ExperimentRunner, RunRequest
from repro.sim.runner import CACHE_VERSION

BUDGET = 2000
#: budget for shards that must still be running when we steal them
SLOW_BUDGET = 300_000


def _client(thread, timeout=120):
    host, port = thread.address
    return ServeClient(host, port, timeout=timeout)


def _entry(tag="x"):
    """A valid (relpath, envelope text) cache entry pair."""
    payload = {"benchmark": "mcf", "tag": tag, "ipc": 1.25}
    text = json.dumps(wrap_envelope(payload, CACHE_VERSION),
                      sort_keys=True)
    name = "single-%s.json" % (tag * 8)[:16]
    return "single/%s/%s" % (tag[:1] * 2, name), text


def _wait(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# rendezvous placement + entry-path hygiene


class TestPlacementUnits(object):
    def test_rendezvous_rank_is_deterministic_and_total(self):
        peers = [("10.0.0.%d" % n, 7000 + n) for n in range(5)]
        first = rendezvous_rank("single/ab/x.json", peers)
        again = rendezvous_rank("single/ab/x.json", list(reversed(peers)))
        assert first == again                  # order-independent
        assert sorted(first) == sorted(peers)  # a permutation, no drops
        other = rendezvous_rank("single/cd/y.json", peers)
        assert sorted(other) == sorted(peers)

    def test_different_entries_spread_across_peers(self):
        peers = [("host%d" % n, 7000) for n in range(4)]
        tops = {
            rendezvous_rank("single/%02d/e.json" % n, peers)[0]
            for n in range(32)
        }
        assert len(tops) > 1   # HRW actually distributes

    def test_valid_relpath_rejects_escapes(self):
        assert _valid_relpath("single/ab/single-ab.json")
        for bad in ("", None, "/etc/passwd", "../up.json",
                    "single/../../up.json", "single//x.json",
                    "a\\b.json", 7):
            assert not _valid_relpath(bad)

    def test_parse_hostport(self):
        assert parse_hostport("127.0.0.1:7861") == ("127.0.0.1", 7861)
        with pytest.raises(ValueError):
            parse_hostport("no-port")
        with pytest.raises(ValueError):
            parse_hostport(":7861")


# ----------------------------------------------------------------------
# the cluster fault verbs


class TestClusterFaultVerbs(object):
    def test_grammar_accepts_cluster_verbs(self):
        specs = parse_faults(
            "host-kill:0.3:seed=1,host-partition:0.5:seed=2,"
            "cache-peer-corrupt:0.2:seed=3"
        )
        assert set(specs) == {"host-kill", "host-partition",
                              "cache-peer-corrupt"}
        assert specs["host-kill"].prob == 0.3

    def test_lethal_host_verbs_fire_first_attempt_only(self):
        plan = FaultPlan(parse_faults("host-kill:1.0,host-partition:1.0"))
        assert plan.should_host_kill("j1#s0|start", attempt=0)
        assert not plan.should_host_kill("j1#s0|start", attempt=1)
        assert plan.should_host_partition("j1#s0|t1", attempt=0)
        assert not plan.should_host_partition("j1#s0|t1", attempt=2)

    def test_peer_corrupt_fires_once_per_key(self):
        plan = FaultPlan(parse_faults("cache-peer-corrupt:1.0"))
        assert plan.peer_corrupt_payload("single/aa/e.json") is not None
        # the re-fetch after detection must see the clean entry
        assert plan.peer_corrupt_payload("single/aa/e.json") is None
        assert plan.peer_corrupt_payload("single/bb/f.json") is not None

    def test_decisions_are_deterministic_across_plans(self):
        spec = "host-kill:0.5:seed=9"
        keys = ["j1#s%d|start" % n for n in range(20)]
        one = [FaultPlan(parse_faults(spec)).should_host_kill(k)
               for k in keys]
        two = [FaultPlan(parse_faults(spec)).should_host_kill(k)
               for k in keys]
        assert one == two
        assert any(one) and not all(one)


# ----------------------------------------------------------------------
# cache-peer tier: replication, integrity, eviction


class TestCachePeerTier(object):
    def test_put_get_roundtrip_verifies_envelopes(self, tmp_path):
        server = CachePeerServer(str(tmp_path / "peer-a"))
        server.start()
        try:
            peers = PeerSet(peers=[server.address], replicas=1)
            rel, text = _entry("a")
            assert peers.store(rel, text) == 1
            found = peers.fetch(rel)
            assert found is not None
            got_text, payload = found
            assert got_text == text           # byte-identical transit
            assert payload["tag"] == "a"
            assert peers.snapshot()["hits"] == 1
            # the entry landed on disk at its content address
            assert os.path.isfile(os.path.join(str(tmp_path / "peer-a"),
                                               rel))
        finally:
            server.stop()

    def test_put_rejects_garbage_and_bad_paths(self, tmp_path):
        server = CachePeerServer(str(tmp_path / "peer"))
        server.start()
        try:
            peers = PeerSet(peers=[server.address], replicas=1)
            rel, _text = _entry("b")
            # never trust the wire: a pusher without a valid envelope
            # must not be persisted
            assert peers.store(rel, "not json at all") == 0
            assert peers.store(
                rel, json.dumps({"v": CACHE_VERSION, "sha": "0" * 40,
                                 "data": {"forged": True}})
            ) == 0
            assert server.counters["put_rejects"] >= 2
            assert not os.path.exists(
                os.path.join(str(tmp_path / "peer"), rel))
            # path escapes are rejected with a typed error frame
            with socket.create_connection(server.address,
                                          timeout=5.0) as conn:
                reader, writer = conn.makefile("rb"), conn.makefile("wb")
                protocol.write_frame_blocking(
                    writer, {"type": "cache-get", "path": "../../etc"})
                reply = protocol.read_frame_blocking(reader)
            assert reply["type"] == "error"
            assert reply["code"] == "bad-request"
        finally:
            server.stop()

    def test_fetch_skips_corrupt_replica_and_recovers(self, tmp_path):
        servers = [CachePeerServer(str(tmp_path / ("peer-%d" % n)))
                   for n in range(2)]
        for server in servers:
            server.start()
        try:
            addrs = [server.address for server in servers]
            peers = PeerSet(peers=addrs, replicas=2)
            rel, text = _entry("c")
            assert peers.store(rel, text) == 2   # both replicas hold it
            # rot the first-ranked replica on disk, out-of-band
            first = rendezvous_rank(rel, addrs)[0]
            victim = servers[addrs.index(first)]
            with open(os.path.join(victim.cache_dir, rel), "w") as fh:
                fh.write('{"v": %d, "sha": "bad", "data": {}}'
                         % CACHE_VERSION)
            found = peers.fetch(rel)
            assert found is not None             # second replica saved it
            assert found[0] == text
            snap = peers.snapshot()
            assert snap["corrupt"] == 1
            assert snap["hits"] == 1
        finally:
            for server in servers:
                server.stop()

    def test_injected_peer_corruption_is_detected(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS",
                           "cache-peer-corrupt:1.0:seed=5")
        server = CachePeerServer(str(tmp_path / "peer"))
        server.start()
        try:
            peers = PeerSet(peers=[server.address], replicas=1)
            rel, text = _entry("d")
            assert peers.store(rel, text) == 1
            # first fetch: the verb corrupts the served entry; the
            # envelope check catches it and the single replica is dry
            assert peers.fetch(rel) is None
            assert peers.snapshot()["corrupt"] == 1
            assert server.counters["corrupt_served"] == 1
            # the verb fires once per key: the re-fetch is clean
            found = peers.fetch(rel)
            assert found is not None and found[0] == text
        finally:
            server.stop()

    def test_eviction_is_deterministic_and_bounded(self, tmp_path):
        server = CachePeerServer(str(tmp_path / "peer"), max_entries=2)
        server.start()
        try:
            peers = PeerSet(peers=[server.address], replicas=1)
            rels = []
            for tag in ("e", "f", "g", "h"):
                rel, text = _entry(tag)
                rels.append(rel)
                assert peers.store(rel, text) == 1
                os.utime(os.path.join(server.cache_dir, rel),
                         (100 + len(rels), 100 + len(rels)))
            # bound holds; the two oldest (by mtime, relpath) are gone
            remaining = {
                rel for rel in rels
                if os.path.exists(os.path.join(server.cache_dir, rel))
            }
            assert remaining == set(rels[-2:])
            assert server.counters["evictions"] == 2
        finally:
            server.stop()


# ----------------------------------------------------------------------
# shard planning + steal policy (no sockets, no subprocesses)


def _bare_supervisor(**kwargs):
    kwargs.setdefault("cache_dir", None)
    kwargs.setdefault("local_workers", 0)
    return ClusterSupervisor(**kwargs)


def _job(n_requests, job_id="j1"):
    requests = [RunRequest("mcf", "none", BUDGET, None, variant)
                for variant in range(n_requests)]
    return Job(job_id, "key-%s" % job_id, "sweep", {}, requests)


class TestShardPlanning(object):
    def test_fixed_shard_size_slices_contiguously(self):
        supervisor = _bare_supervisor(shard_tasks=3)
        shards = supervisor._plan_shards(_job(8))
        assert [shard.id for shard in shards] == ["j1#s0", "j1#s1",
                                                 "j1#s2"]
        assert [shard.indices for shard in shards] == [
            [0, 1, 2], [3, 4, 5], [6, 7],
        ]
        # every request appears in exactly one shard, in order
        flat = [i for shard in shards for i in shard.indices]
        assert flat == list(range(8))
        assert all(len(shard.requests) == len(shard.indices)
                   for shard in shards)

    def test_auto_size_caps_at_max_shard_tasks(self):
        from repro.serve.cluster.supervisor import MAX_SHARD_TASKS

        supervisor = _bare_supervisor()
        shards = supervisor._plan_shards(_job(4 * MAX_SHARD_TASKS))
        assert all(len(shard.requests) <= MAX_SHARD_TASKS
                   for shard in shards)

    def test_shard_keys_are_deterministic(self):
        supervisor = _bare_supervisor(shard_tasks=2)
        one = [s.key for s in supervisor._plan_shards(_job(5))]
        two = [s.key for s in supervisor._plan_shards(_job(5))]
        assert one == two == ["key-j1#s0", "key-j1#s1", "key-j1#s2"]

    def test_steal_picks_only_aged_stragglers(self):
        supervisor = _bare_supervisor(shard_tasks=1, steal_min_age=0.5)
        job = _job(3)
        s0, s1, s2 = supervisor._plan_shards(job)
        now = time.monotonic()
        active = {
            "t0": {"sid": s0.id, "shard": s0, "t0": now - 2.0},
            "t1": {"sid": s1.id, "shard": s1, "t0": now - 1.0},
            "t2": {"sid": s2.id, "shard": s2, "t0": now},  # too young
        }
        # oldest aged straggler wins
        assert supervisor._pick_steal(active, set()) is s0
        # a shard already done is not a victim
        assert supervisor._pick_steal(active, {s0.id}) is s1
        # a shard already running twice is not stolen again
        active["t3"] = {"sid": s1.id, "shard": s1, "t0": now - 1.5}
        assert supervisor._pick_steal(active, {s0.id}) is None
        # nothing old enough -> no steal at all
        young = {"t2": active["t2"]}
        assert supervisor._pick_steal(young, set()) is None


# ----------------------------------------------------------------------
# cluster supervisor with local members only (asyncio, subprocesses)


class TestClusterSupervisorLocal(object):
    def _run(self, supervisor, job):
        async def scenario():
            await supervisor.start()
            try:
                loop = asyncio.get_running_loop()
                return await supervisor.run_job(loop, job)
            finally:
                await supervisor.shutdown()

        return asyncio.run(scenario())

    def test_sharded_local_run_is_byte_identical(self, tmp_path):
        requests = [RunRequest(bench, prefetcher, BUDGET)
                    for bench in ("libquantum", "mcf")
                    for prefetcher in ("none", "stride", "bfetch")]
        job = Job("j1", "k1", "sweep", {}, requests)
        supervisor = ClusterSupervisor(
            cache_dir=str(tmp_path / "cluster-cache"), local_workers=2,
            beat_interval=0.25, shard_tasks=2,
        )
        results, report = self._run(supervisor, job)
        assert all(result is not None for result in results)
        serial = ExperimentRunner(cache_dir=str(tmp_path / "ref-cache"))
        want, _ = serial.run_batch(requests)
        assert json.dumps(results, sort_keys=True) \
            == json.dumps([r.as_dict() for r in want], sort_keys=True)
        assert report.get("misses", 0) + report.get("hits", 0) \
            >= len(requests)

    def test_work_stealing_duplicates_straggler_byte_identical(
            self, tmp_path):
        # shard 0 is a straggler (big budget); with one-task shards the
        # fast member drains the sheet, then steals the straggler once
        # it has aged past the gate.  First write wins in the cache, so
        # the duplicated execution must stay byte-identical.
        requests = [RunRequest("mcf", "none", SLOW_BUDGET, None, 0)] + [
            RunRequest("libquantum", "none", BUDGET, None, variant)
            for variant in range(3)
        ]
        job = Job("j1", "k1", "sweep", {}, requests)
        metrics = ServeMetrics()
        supervisor = ClusterSupervisor(
            cache_dir=str(tmp_path / "cluster-cache"), local_workers=2,
            beat_interval=0.25, shard_tasks=1, steal_min_age=0.1,
            metrics=metrics,
        )
        results, _report = self._run(supervisor, job)
        assert metrics.value("cluster.steals") >= 1
        serial = ExperimentRunner(cache_dir=str(tmp_path / "ref-cache"))
        want, _ = serial.run_batch(requests)
        assert json.dumps(results, sort_keys=True) \
            == json.dumps([r.as_dict() for r in want], sort_keys=True)

    def test_replay_pulls_completed_entries_from_node_cache(
            self, tmp_path):
        # a reconnecting node's hello lists digests it completed while
        # dark; the coordinator must pull the ones it lacks through the
        # cache-peer tier into its own store
        node_cache = str(tmp_path / "node-cache")
        rel_new, text_new = _entry("n")
        rel_old, text_old = _entry("o")
        node_peer = CachePeerServer(node_cache)
        node_peer.start()
        peers = PeerSet(peers=[node_peer.address], replicas=1)
        assert peers.store(rel_new, text_new) == 1
        assert peers.store(rel_old, text_old) == 1

        metrics = ServeMetrics()
        supervisor = ClusterSupervisor(
            cache_dir=str(tmp_path / "coord-cache"), local_workers=0,
            metrics=metrics,
        )
        # the coordinator already holds rel_old -- only rel_new replays
        with open(os.path.join(node_cache, rel_old)) as fh:
            old_text = fh.read()
        target = os.path.join(str(tmp_path / "coord-cache"), rel_old)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        with open(target, "w") as fh:
            fh.write(old_text)

        class _Handle(object):
            peer_addr = node_peer.address

        async def scenario():
            supervisor._loop = asyncio.get_running_loop()
            await supervisor._replay_completed(
                _Handle(), [rel_new, rel_old, "../evil.json"])

        try:
            asyncio.run(scenario())
        finally:
            node_peer.stop()
            if supervisor.peer_server is not None:
                supervisor.peer_server.stop()
        replayed = os.path.join(str(tmp_path / "coord-cache"), rel_new)
        assert os.path.isfile(replayed)
        with open(replayed) as fh:
            assert fh.read() == text_new
        assert metrics.value("cluster.replayed") == 1

    def test_degraded_gauge_without_nodes(self):
        supervisor = _bare_supervisor()
        assert supervisor.degraded() == 1
        assert supervisor.live_count() == 0


# ----------------------------------------------------------------------
# full integration: coordinator + real node subprocesses


def _node_env(faults=None):
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def _wait_nodes(client, n, timeout=20.0):
    def up():
        fleet = client.fleet()
        return fleet.get("mode") == "cluster" \
            and len(fleet.get("nodes") or []) >= n
    assert _wait(up, timeout=timeout), \
        "nodes never joined: %r" % (client.fleet(),)


class TestClusterIntegration(object):
    def test_two_node_chaos_lossless_byte_identical(self, tmp_path,
                                                    monkeypatch):
        # nodes run under host-kill + peer-corrupt chaos; the
        # coordinator (and its local worker) stays clean, so every
        # shard a dying node drops is requeued and completed
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults = "host-kill:0.4:seed=3,cache-peer-corrupt:0.3:seed=4"
        benchmarks = ["libquantum", "mcf", "sjeng"]
        prefetchers = ["none", "bfetch"]
        procs = []
        with ServerThread(cache_dir=str(tmp_path / "coord-cache"),
                          cluster=True, workers=1, beat_interval=0.25,
                          shard_tasks=1,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                procs = [
                    spawn_node(thread.address,
                               cache_dir=str(tmp_path / ("node%d" % n)),
                               node_id="chaos-%d" % n,
                               env=_node_env(faults))
                    for n in range(2)
                ]
                try:
                    _wait_nodes(client, 2)
                    ticket = client.submit_sweep(benchmarks, prefetchers,
                                                 instructions=BUDGET)
                    reply = client.result(ticket["job_id"], wait=True)
                    assert reply["state"] == "done"
                    stats = client.statz()
                finally:
                    for proc in procs:
                        proc.kill()
                        proc.wait()
        assert stats["serve.cluster.nodes_joined"] >= 2
        assert stats["serve.jobs.completed"] == 1
        serial = ExperimentRunner(cache_dir=str(tmp_path / "ref-cache"))
        want, _ = serial.run_batch(
            [RunRequest(bench, prefetcher, BUDGET)
             for bench in benchmarks for prefetcher in prefetchers]
        )
        assert json.dumps(reply["result"], sort_keys=True) \
            == json.dumps([r.as_dict() for r in want], sort_keys=True)

    def test_total_node_loss_degrades_but_completes(self, tmp_path,
                                                    monkeypatch):
        # the node dies on its first shard (host-kill:1.0); the cluster
        # must record the degraded transition and finish on the local
        # fleet -- total node loss is a slowdown, never a wedge
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with ServerThread(cache_dir=str(tmp_path / "coord-cache"),
                          cluster=True, workers=1, beat_interval=0.25,
                          shard_tasks=1,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                proc = spawn_node(
                    thread.address,
                    cache_dir=str(tmp_path / "node-cache"),
                    node_id="doomed",
                    env=_node_env("host-kill:1.0:seed=1"),
                )
                try:
                    _wait_nodes(client, 1)
                    assert client.statz()["serve.cluster.degraded"] == 0
                    ticket = client.submit_sweep(
                        ["libquantum", "mcf"], ["none", "stride"],
                        instructions=BUDGET,
                    )
                    reply = client.result(ticket["job_id"], wait=True)
                    assert reply["state"] == "done"
                    stats = client.statz()
                    fleet = client.fleet()
                finally:
                    proc.kill()
                    proc.wait()
        assert proc.returncode is not None
        assert stats["serve.cluster.nodes_lost"] >= 1
        assert stats["serve.cluster.degraded_transitions"] >= 1
        assert stats["serve.cluster.degraded"] == 1
        assert fleet["degraded"] == 1
        assert stats["serve.cluster.requeues"] >= 1
        serial = ExperimentRunner(cache_dir=str(tmp_path / "ref-cache"))
        want, _ = serial.run_batch(
            [RunRequest(bench, prefetcher, BUDGET)
             for bench in ("libquantum", "mcf")
             for prefetcher in ("none", "stride")]
        )
        assert json.dumps(reply["result"], sort_keys=True) \
            == json.dumps([r.as_dict() for r in want], sort_keys=True)

    def test_partitioned_node_reconnects_and_job_converges(
            self, tmp_path, monkeypatch):
        # host-partition drops the coordinator link at the first shard
        # boundary; the node keeps computing into its own cache and
        # redials, while the coordinator requeues the shard locally
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with ServerThread(cache_dir=str(tmp_path / "coord-cache"),
                          cluster=True, workers=1, beat_interval=0.25,
                          shard_tasks=1,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                proc = spawn_node(
                    thread.address,
                    cache_dir=str(tmp_path / "node-cache"),
                    node_id="flaky",
                    env=_node_env("host-partition:1.0:seed=2"),
                )
                try:
                    _wait_nodes(client, 1)
                    ticket = client.submit_sweep(
                        ["libquantum", "mcf"], ["none"],
                        instructions=BUDGET,
                    )
                    reply = client.result(ticket["job_id"], wait=True)
                    assert reply["state"] == "done"
                    # partitions are first-attempt-only, so the node
                    # comes back and is re-adopted
                    _wait_nodes(client, 1)
                    stats = client.statz()
                finally:
                    proc.kill()
                    proc.wait()
        assert stats["serve.cluster.nodes_lost"] >= 1
        assert stats["serve.cluster.nodes_joined"] >= 2  # re-adopted
        serial = ExperimentRunner(cache_dir=str(tmp_path / "ref-cache"))
        want, _ = serial.run_batch(
            [RunRequest(bench, "none", BUDGET)
             for bench in ("libquantum", "mcf")]
        )
        assert json.dumps(reply["result"], sort_keys=True) \
            == json.dumps([r.as_dict() for r in want], sort_keys=True)

    def test_fleet_endpoint_renders_node_rows(self, tmp_path,
                                              monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        with ServerThread(cache_dir=str(tmp_path / "coord-cache"),
                          cluster=True, workers=1, beat_interval=0.25,
                          heartbeat_interval=0) as thread:
            with _client(thread) as client:
                proc = spawn_node(
                    thread.address,
                    cache_dir=str(tmp_path / "node-cache"),
                    node_id="shown", env=_node_env(),
                )
                try:
                    _wait_nodes(client, 1)
                    ticket = client.submit("mcf", "none",
                                           instructions=BUDGET)
                    client.result(ticket["job_id"], wait=True)
                    fleet = client.fleet()
                finally:
                    proc.kill()
                    proc.wait()
        assert fleet["mode"] == "cluster"
        assert fleet["degraded"] in (0, 1)
        rows = fleet["nodes"]
        assert len(rows) == 1
        row = rows[0]
        assert row["node"] == "shown"
        for field in ("host", "state", "rtt_ms", "jobs_done", "steals",
                      "peer_hit_rate"):
            assert field in row, "missing %r in node row %r" % (field,
                                                                row)
        # the CLI table renders these rows without blowing up
        from repro.cli import _print_fleet

        _print_fleet(fleet)


# ----------------------------------------------------------------------
# client: transparent reconnect + idempotent resubmit


class _FlakyServer(object):
    """Accepts connections; drops the first N requests without a reply."""

    def __init__(self, drops=1):
        self.drops = drops
        self.requests = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.address = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            reader = conn.makefile("rb")
            writer = conn.makefile("wb")
            try:
                while True:
                    frame = protocol.read_frame_blocking(reader)
                    if frame is None:
                        break
                    self.requests.append(frame)
                    if self.drops > 0:
                        self.drops -= 1
                        break        # slam the connection, no reply
                    protocol.write_frame_blocking(
                        writer, {"type": "pong"})
            except (OSError, protocol.ProtocolError):
                pass
            finally:
                # close the makefile handles too, or the client sees a
                # stalled-but-open socket instead of a clean EOF
                for handle in (reader, writer):
                    try:
                        handle.close()
                    except OSError:
                        pass
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                conn.close()

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass


class TestClientReconnect(object):
    def test_dropped_connection_is_retried_once_transparently(self):
        server = _FlakyServer(drops=1)
        try:
            client = ServeClient(*server.address, timeout=5.0)
            reply = client.ping()
            assert reply["type"] == "pong"
            assert client.reconnects == 1
            # the resend carried the identical frame (idempotent)
            assert len(server.requests) == 2
            assert server.requests[0] == server.requests[1]
            client.close()
        finally:
            server.close()

    def test_second_drop_propagates_not_loops(self):
        server = _FlakyServer(drops=5)
        try:
            client = ServeClient(*server.address, timeout=5.0)
            with pytest.raises(ServeError) as info:
                client.ping()
            assert info.value.code == "connection"
            # exactly one bounded resend: two requests hit the wire
            assert len(server.requests) == 2
            assert client.reconnects == 1
            client.close()
        finally:
            server.close()

    def test_unreachable_server_raises_typed_connection_error(self):
        sock = socket.create_server(("127.0.0.1", 0))
        host, port = sock.getsockname()
        sock.close()                     # nobody is listening here now
        client = ServeClient(host, port, timeout=0.5)
        with pytest.raises(ServeError) as info:
            client.ping()
        assert info.value.code == "connection"
