"""Chip-multiprocessor simulation."""

import pytest

from repro.sim import CMPSystem, SystemConfig
from repro.workloads import build_workload


def make_cmp(names, prefetcher="none"):
    return CMPSystem([build_workload(n) for n in names],
                     SystemConfig(prefetcher=prefetcher))


def test_requires_workloads():
    with pytest.raises(ValueError):
        CMPSystem([])


def test_two_core_run_returns_per_core_results():
    cmp_system = make_cmp(["gamess", "libquantum"])
    results = cmp_system.run(8_000)
    assert len(results) == 2
    assert {r.workload for r in results} == {"gamess", "libquantum"}
    for result in results:
        assert result.instructions == 8_000
        assert result.cycles > 0


def test_llc_scales_with_core_count():
    two = make_cmp(["gamess", "gamess"])
    four = make_cmp(["gamess"] * 4)
    assert four.llc.size_bytes == 2 * two.llc.size_bytes


def test_shared_llc_contention_slows_memory_bound_app():
    solo_cfg = SystemConfig()
    from repro.sim import System
    solo = System(build_workload("milc"), solo_cfg)
    solo_result = solo.run(15_000)

    paired = make_cmp(["milc", "libquantum"])
    paired_results = paired.run(15_000)
    milc_multi = next(r for r in paired_results if r.workload == "milc")
    # sharing LLC + DRAM with a streaming app must not speed milc up
    assert milc_multi.ipc <= solo_result.ipc * 1.02


def test_fast_core_keeps_running_until_all_finish():
    cmp_system = make_cmp(["gamess", "milc"])
    results = cmp_system.run(10_000)
    fast = next(r for r in results if r.workload == "gamess")
    # the compute-bound core retired extra instructions while waiting
    assert fast.data["total_retired"] >= fast.instructions


def test_deterministic():
    a = make_cmp(["milc", "libquantum"]).run(8_000)
    b = make_cmp(["milc", "libquantum"]).run(8_000)
    assert [r.cycles for r in a] == [r.cycles for r in b]


def test_prefetching_helps_in_cmp():
    base = make_cmp(["libquantum", "sphinx"]).run(10_000)
    pf = make_cmp(["libquantum", "sphinx"], prefetcher="bfetch").run(10_000)
    assert sum(r.ipc for r in pf) > sum(r.ipc for r in base)
