"""Textual assembler."""

import pytest

from repro.isa import AssemblerError, Op, assemble


def test_assembles_loop():
    program = assemble(
        """
        start:  li    r1, 3
        loop:   load  r2, 8(r3)     ; payload
                add   r4, r4, r2
                addi  r3, r3, 8
                subi  r1, r1, 1
                bnez  r1, loop
                halt
        """
    )
    assert len(program) == 7
    assert program.labels == {"start": 0, "loop": 1}
    assert program[5].target == 1
    load = program[1]
    assert load.op == Op.LOAD and load.rd == 2 and load.ra == 3 and load.imm == 8


def test_forward_reference():
    program = assemble("br end\nnop\nend: halt")
    assert program[0].target == 2


def test_hex_immediates_and_negative_displacement():
    program = assemble("li r1, 0xC8\nload r2, -16(r5)\nhalt")
    assert program[0].imm == 0xC8
    assert program[1].imm == -16


def test_store_operand_order():
    program = assemble("store r7, 24(r2)\nhalt")
    store = program[0]
    assert store.op == Op.STORE and store.rb == 7 and store.ra == 2
    assert store.imm == 24


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError):
        assemble("frobnicate r1, r2\nhalt")


def test_bad_register():
    with pytest.raises(AssemblerError):
        assemble("addi r42, r1, 1\nhalt")


def test_undefined_label():
    with pytest.raises(AssemblerError):
        assemble("br nowhere\nhalt")


def test_wrong_operand_count():
    with pytest.raises(AssemblerError):
        assemble("add r1, r2\nhalt")


def test_bad_memory_operand():
    with pytest.raises(AssemblerError):
        assemble("load r1, r2\nhalt")


def test_comments_and_blank_lines_ignored():
    program = assemble("# leading comment\n\nnop ; trailing\nhalt")
    assert len(program) == 2


def test_multiple_labels_one_line():
    program = assemble("a: b: nop\nbr a\nhalt")
    assert program.labels["a"] == 0 and program.labels["b"] == 0
