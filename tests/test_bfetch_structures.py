"""B-Fetch structures: ARF, BrTC, MHT, per-load filter, hashing."""

import pytest

from repro.core import (
    AlternateRegisterFile,
    BranchTraceCache,
    MemoryHistoryTable,
    PerLoadFilter,
    bb_hash,
    load_pc_hash,
)


class TestHashing:
    def test_direction_changes_hash(self):
        assert bb_hash(0x1000, True, 0x2000) != bb_hash(0x1000, False, 0x2000)

    def test_target_changes_hash(self):
        assert bb_hash(0x1000, True, 0x2000) != bb_hash(0x1000, True, 0x2040)

    def test_hash_is_32_bit(self):
        assert 0 <= bb_hash(0xFFFFFFFFFFFF, True, 0xFFFFFFFF) < (1 << 32)

    def test_load_pc_hash_is_10_bit(self):
        for pc in (0x1000, 0xDEADBEEF, 0x7FFFFFFC):
            assert 0 <= load_pc_hash(pc) < 1024

    def test_deterministic(self):
        assert bb_hash(0x1234, True, 0x5678) == bb_hash(0x1234, True, 0x5678)


class TestARF:
    def test_write_visible_after_ready_time(self):
        arf = AlternateRegisterFile(delay=0)
        arf.write(3, 42, seq=1, ready_time=10)
        arf.sync(5)
        assert arf.read(3) == 0
        arf.sync(10)
        assert arf.read(3) == 42

    def test_delay_added(self):
        arf = AlternateRegisterFile(delay=5)
        arf.write(3, 42, seq=1, ready_time=10)
        arf.sync(12)
        assert arf.read(3) == 0
        arf.sync(15)
        assert arf.read(3) == 42

    def test_youngest_writer_wins_out_of_order_completion(self):
        arf = AlternateRegisterFile()
        arf.write(3, 1, seq=1, ready_time=100)  # old slow write
        arf.write(3, 2, seq=2, ready_time=10)   # young fast write
        arf.sync(10)
        assert arf.read(3) == 2
        arf.sync(100)
        # the stale older write must not overwrite the younger one
        assert arf.read(3) == 2

    def test_out_of_order_drain_no_head_of_line_blocking(self):
        arf = AlternateRegisterFile()
        arf.write(1, 11, seq=1, ready_time=1000)
        arf.write(2, 22, seq=2, ready_time=5)
        arf.sync(5)
        assert arf.read(2) == 22

    def test_storage_matches_table1(self):
        assert AlternateRegisterFile().storage_bits() == 32 * 40  # 0.156KB


class TestBrTC:
    def test_update_lookup(self):
        brtc = BranchTraceCache(entries=64)
        h = bb_hash(0x100, True, 0x200)
        brtc.update(h, 0x100, end_branch_pc=0x240, taken_target=0x300)
        assert brtc.lookup(h, 0x100) == (0x240, 0x300)

    def test_tag_mismatch_misses(self):
        brtc = BranchTraceCache(entries=64)
        h = bb_hash(0x100, True, 0x200)
        brtc.update(h, 0x100, 0x240, 0x300)
        assert brtc.lookup(h, 0x104) is None

    def test_none_target_does_not_clobber_known_target(self):
        brtc = BranchTraceCache(entries=64)
        h = bb_hash(0x100, True, 0x200)
        brtc.update(h, 0x100, 0x240, 0x300)
        brtc.update(h, 0x100, 0x240, None)  # not-taken indirect observed
        assert brtc.lookup(h, 0x100) == (0x240, 0x300)

    def test_hit_rate(self):
        brtc = BranchTraceCache(entries=64)
        h = bb_hash(0x100, True, 0x200)
        brtc.lookup(h, 0x100)
        brtc.update(h, 0x100, 0x240, 0x300)
        brtc.lookup(h, 0x100)
        assert brtc.hit_rate == pytest.approx(0.5)


class TestMHT:
    def test_allocate_and_lookup(self):
        mht = MemoryHistoryTable(entries=64, reg_slots=3)
        h = bb_hash(0x100, True, 0x200)
        entry = mht.get_or_allocate(h, 0x100)
        slot = entry.slot_for(5, allocate=True)
        slot.offset = 64
        slot.valid = True
        found = mht.lookup(h, 0x100)
        assert found is entry
        assert found.slot_for(5, allocate=False).offset == 64

    def test_tag_conflict_replaces(self):
        mht = MemoryHistoryTable(entries=1, reg_slots=3)
        a = mht.get_or_allocate(5, 0x100)
        b = mht.get_or_allocate(5, 0x200)
        assert b is not a
        assert mht.lookup(5, 0x100) is None

    def test_slot_capacity_round_robin(self):
        mht = MemoryHistoryTable(entries=4, reg_slots=2)
        entry = mht.get_or_allocate(0, 0x100)
        entry.slot_for(1, allocate=True)
        entry.slot_for(2, allocate=True)
        entry.slot_for(3, allocate=True)  # displaces slot for reg 1
        assert entry.slot_for(1, allocate=False) is None
        assert entry.slot_for(2, allocate=False) is not None
        assert len(entry.slots) == 2

    def test_storage_matches_table1(self):
        # 128 entries x 287 bits = 4.48KB (Table I: 4.5KB)
        bits = MemoryHistoryTable(entries=128, reg_slots=3).storage_bits()
        assert bits == 128 * 287


class TestPerLoadFilter:
    def test_new_loads_allowed(self):
        f = PerLoadFilter()
        assert f.allow(17)

    def test_useless_feedback_blocks(self):
        f = PerLoadFilter(probe_interval=10_000)
        for _ in range(10):
            f.update(17, useful=False)
        assert not f.allow(17)

    def test_useful_feedback_restores(self):
        f = PerLoadFilter(probe_interval=10_000)
        for _ in range(10):
            f.update(17, useful=False)
        for _ in range(10):
            f.update(17, useful=True)
        assert f.allow(17)

    def test_probe_lets_blocked_loads_recover(self):
        f = PerLoadFilter(probe_interval=4)
        for _ in range(10):
            f.update(17, useful=False)
        decisions = [f.allow(17) for _ in range(12)]
        assert any(decisions)  # probes got through
        assert decisions.count(True) == f.probes

    def test_counters_saturate(self):
        f = PerLoadFilter()
        for _ in range(100):
            f.update(17, useful=True)
        assert f.confidence(17) == 3 * f.max_count

    def test_storage_matches_table1(self):
        # 3 tables x 2048 x 3 bits = 2.25KB
        assert PerLoadFilter().storage_bits() == 3 * 2048 * 3
