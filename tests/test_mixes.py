"""FOA-based multiprogrammed mix selection."""

import pytest

from repro.workloads import select_mixes
from repro.workloads.mixes import foa_from_result


def _foa(names, values):
    return dict(zip(names, values))


NAMES = ["a", "b", "c", "d", "e", "f"]


def test_highest_contention_pair_first():
    foa = _foa(NAMES, [0.9, 0.8, 0.1, 0.1, 0.05, 0.01])
    mixes = select_mixes(foa, size=2, count=3)
    assert mixes[0] == ("a", "b")


def test_requested_count_returned():
    foa = _foa(NAMES, [0.6, 0.5, 0.4, 0.3, 0.2, 0.1])
    assert len(select_mixes(foa, size=2, count=5)) == 5
    assert len(select_mixes(foa, size=4, count=5)) == 5


def test_mix_members_are_distinct():
    foa = _foa(NAMES, [0.6, 0.5, 0.4, 0.3, 0.2, 0.1])
    for mix in select_mixes(foa, size=4, count=6):
        assert len(set(mix)) == 4


def test_appearance_cap_enforces_diversity():
    foa = _foa(NAMES, [10.0, 9.0, 0.1, 0.1, 0.1, 0.1])
    mixes = select_mixes(foa, size=2, count=5, max_appearances=2)
    from collections import Counter
    uses = Counter(name for mix in mixes for name in mix)
    assert uses["a"] <= 2 and uses["b"] <= 2


def test_deterministic():
    foa = _foa(NAMES, [0.6, 0.5, 0.4, 0.3, 0.2, 0.1])
    assert select_mixes(foa, 2, 7) == select_mixes(foa, 2, 7)


def test_invalid_size():
    foa = _foa(NAMES, [1] * 6)
    with pytest.raises(ValueError):
        select_mixes(foa, size=0)
    with pytest.raises(ValueError):
        select_mixes(foa, size=7)


def test_foa_from_result():
    class FakeResult:
        data = {"cycles": 1000, "llc": {"accesses": 250}}
    assert foa_from_result(FakeResult()) == 0.25


def test_foa_zero_cycles():
    class FakeResult:
        data = {"cycles": 0, "llc": {"accesses": 0}}
    assert foa_from_result(FakeResult()) == 0.0
