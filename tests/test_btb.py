"""Branch target buffer."""

import pytest

from repro.branch import BranchTargetBuffer


def test_miss_then_hit():
    btb = BranchTargetBuffer(entries=64)
    assert btb.lookup(0x400) is None
    btb.update(0x400, 0x1234)
    assert btb.lookup(0x400) == 0x1234
    assert btb.hits == 1 and btb.misses == 1


def test_last_target_prediction_updates():
    btb = BranchTargetBuffer(entries=64)
    btb.update(0x400, 0x1000)
    btb.update(0x400, 0x2000)
    assert btb.lookup(0x400) == 0x2000


def test_index_conflicts_evict():
    btb = BranchTargetBuffer(entries=16, tag_bits=20)
    btb.update(0x100, 0xAAAA)
    conflicting = 0x100 + 16 * 4  # same slot, different tag
    btb.update(conflicting, 0xBBBB)
    assert btb.lookup(0x100) is None


def test_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=100)


def test_storage_bits():
    assert BranchTargetBuffer(entries=64, tag_bits=16).storage_bits() == \
        64 * (16 + 32)
