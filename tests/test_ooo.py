"""Out-of-order timing core."""

from repro.isa import assemble
from repro.sim import System, SystemConfig
from repro.workloads import Workload


def build_system(text, memory=None, **config_kwargs):
    workload = Workload("unit", assemble(text), memory or {})
    return System(workload, SystemConfig(**config_kwargs))


COMPUTE = """
outer:  li   r16, 100
loop:   addi r1, r1, 1
        addi r2, r2, 1
        addi r3, r3, 1
        subi r16, r16, 1
        bnez r16, loop
        br   outer
        halt
"""

SERIAL = """
outer:  li   r16, 100
loop:   addi r1, r1, 1
        addi r1, r1, 1
        addi r1, r1, 1
        subi r16, r16, 1
        bnez r16, loop
        br   outer
        halt
"""


def test_ipc_bounded_by_width():
    system = build_system(COMPUTE, width=4)
    system.core.run(20_000)
    assert 0.5 < system.core.ipc <= 4.0


def test_wider_pipeline_is_faster_on_parallel_code():
    narrow = build_system(COMPUTE, width=2)
    wide = build_system(COMPUTE, width=8)
    narrow.core.run(20_000)
    wide.core.run(20_000)
    assert wide.core.ipc > narrow.core.ipc


def test_serial_chain_limits_ipc_regardless_of_width():
    system = build_system(SERIAL, width=8)
    system.core.run(20_000)
    # 3 serially dependent adds per 5 instructions: IPC caps near 5/3
    assert system.core.ipc < 2.2


def test_determinism():
    a = build_system(COMPUTE)
    b = build_system(COMPUTE)
    a.core.run(15_000)
    b.core.run(15_000)
    assert a.core.cycle == b.core.cycle
    assert a.core.retired == b.core.retired


MISPREDICT = """
        li   r9, 0x500000
outer:  li   r16, 200
loop:   load r5, 0(r9)
        bnez r5, skip
        addi r1, r1, 1
skip:   addi r9, r9, 8
        subi r16, r16, 1
        bnez r16, loop
        li   r9, 0x500000
        br   outer
        halt
"""


def test_unpredictable_branches_cost_cycles():
    import random
    rng = random.Random(3)
    noisy = {0x500000 + i * 8: rng.randrange(2) for i in range(200)}
    steady = {0x500000 + i * 8: 1 for i in range(200)}
    sys_noisy = build_system(MISPREDICT, memory=noisy)
    sys_steady = build_system(MISPREDICT, memory=steady)
    sys_noisy.core.run(20_000)
    sys_steady.core.run(20_000)
    assert sys_noisy.core.mispredict_rate > sys_steady.core.mispredict_rate
    assert sys_noisy.core.ipc < sys_steady.core.ipc


def test_memory_latency_limits_ipc():
    stream = """
        li   r8, 0x600000
outer:  li   r16, 100
loop:   load r1, 0(r8)
        addi r8, r8, 64
        subi r16, r16, 1
        bnez r16, loop
        br   outer
        halt
"""
    system = build_system(stream)
    system.core.run(20_000)
    assert system.core.ipc < 1.0
    assert system.hierarchy.dram.accesses > 100


def test_rob_size_matters_under_misses():
    stream = """
        li   r8, 0x700000
outer:  li   r16, 100
loop:   load r1, 0(r8)
        add  r2, r2, r1
        addi r8, r8, 64
        subi r16, r16, 1
        bnez r16, loop
        br   outer
        halt
"""
    small = build_system(stream, rob_entries=16)
    big = build_system(stream, rob_entries=192)
    small.core.run(20_000)
    big.core.run(20_000)
    assert big.core.ipc >= small.core.ipc


def test_fetch_branch_histogram_populated():
    system = build_system(COMPUTE)
    system.core.run(10_000)
    hist = system.core.fetch_branch_hist
    assert sum(hist[1:]) > 0
    # narrow loops: essentially never 3+ branches per fetch group
    branch_cycles = sum(hist[1:])
    assert (hist[1] + hist[2]) / branch_cycles > 0.99


def test_budget_respected():
    system = build_system(COMPUTE)
    cycles = system.core.run(5_000)
    assert system.core.retired >= 5_000
    assert system.core.retired <= 5_000 + 4  # at most one extra group
    assert cycles == system.core.cycle
