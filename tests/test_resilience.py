"""Chaos suite: the fault-tolerant sweep engine under injected failure.

The invariant proven here is the one the paper's per-load filter applies
to bad prefetches -- suppress the bad, keep the good: under injected
worker crashes, hangs and cache corruption, ``run_many`` must still
complete and produce results *byte-identical* to a fault-free serial
run, and an interrupted sweep must resume from the cache without
recomputing completed entries.
"""

import json
import os

import pytest

import repro.sim.runner as runner_mod
from repro.resilience import (
    FailurePolicy,
    FaultPlan,
    InjectedCrash,
    SimulationError,
    backoff_schedule,
    get_fault_plan,
    parse_faults,
)
from repro.sim import ExperimentRunner, RunRequest
from repro.sim.runner import _execute_single, _payload_sha

BENCHES = ("gamess", "libquantum", "mcf")
BUDGET = 3_000


def _requests(benches=BENCHES, prefetchers=("none", "stride")):
    return [
        RunRequest(bench, prefetcher, BUDGET)
        for bench in benches
        for prefetcher in prefetchers
    ]


def _clean_expected(monkeypatch):
    """Fault-free serial reference results for ``_requests()``."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reference = ExperimentRunner()
    return [r.as_dict() for r in reference.run_many(_requests(), jobs=1)]


def _fast_policy(**overrides):
    """Retry policy with near-zero backoff so chaos tests stay quick."""
    defaults = dict(retries=4, backoff_base=0.001, backoff_max=0.01,
                    max_pool_rebuilds=8, poll_interval=0.02)
    defaults.update(overrides)
    return FailurePolicy(**defaults)


def cache_files(cache_dir):
    found = []
    for root, _dirs, files in os.walk(str(cache_dir)):
        found.extend(os.path.join(root, name) for name in files
                     if name.endswith(".json"))
    return found


# ----------------------------------------------------------------------
# fault grammar + plan determinism


def test_parse_faults_grammar():
    specs = parse_faults("crash:0.1:seed=7,hang:0.05:dur=1.5,"
                         "corrupt-cache:0.25")
    assert set(specs) == {"crash", "hang", "corrupt-cache"}
    assert specs["crash"].prob == 0.1 and specs["crash"].seed == 7
    assert specs["hang"].dur == 1.5
    assert specs["corrupt-cache"].seed == 0


@pytest.mark.parametrize("bad", [
    "crash",                      # missing probability
    "crash:lots",                 # non-numeric probability
    "crash:1.5",                  # out of range
    "meteor:0.5",                 # unknown kind
    "crash:0.5:dur",              # malformed option
    "crash:0.5:speed=9",          # unknown option
    "crash:0.5,crash:0.1",        # duplicate kind
])
def test_parse_faults_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_faults(bad)


def test_fault_plan_deterministic_and_attempt_gated():
    always = FaultPlan(parse_faults("crash:1.0,hang:1.0"))
    assert always.should_crash("task-a", attempt=0)
    assert not always.should_crash("task-a", attempt=1)  # first try only
    assert always.should_hang("task-a", attempt=0)
    never = FaultPlan(parse_faults("crash:0.0"))
    assert not never.should_crash("task-a", attempt=0)
    # probabilistic decisions are a pure function of (seed, kind, key)
    a = FaultPlan(parse_faults("crash:0.5:seed=3"))
    b = FaultPlan(parse_faults("crash:0.5:seed=3"))
    keys = ["task-%d" % i for i in range(64)]
    decisions = [a.should_crash(key) for key in keys]
    assert decisions == [b.should_crash(key) for key in keys]
    assert any(decisions) and not all(decisions)
    # a different seed gives a different (but still deterministic) draw
    c = FaultPlan(parse_faults("crash:0.5:seed=4"))
    assert decisions != [c.should_crash(key) for key in keys]


def test_corrupt_cache_fires_once_per_key():
    plan = FaultPlan(parse_faults("corrupt-cache:1.0"))
    assert plan.corrupt_payload("/cache/x.json") is not None
    assert plan.corrupt_payload("/cache/x.json") is None  # once per key
    assert plan.corrupt_payload("/cache/y.json") is not None


def test_get_fault_plan_tracks_environment(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    assert not get_fault_plan().active
    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0:seed=99")
    plan = get_fault_plan()
    assert plan.active and plan.should_crash("anything")
    assert get_fault_plan() is plan  # memoised on the raw string
    monkeypatch.delenv("REPRO_FAULTS")
    assert not get_fault_plan().active


# ----------------------------------------------------------------------
# policy + deterministic backoff


def test_failure_policy_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_RETRIES", "5")
    monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.5")
    monkeypatch.setenv("REPRO_ON_ERROR", "skip")
    policy = FailurePolicy.from_env()
    assert (policy.retries, policy.task_timeout, policy.on_error) == \
        (5, 1.5, "skip")
    # explicit arguments win over the environment
    override = FailurePolicy.from_env(retries=1, on_error="serial")
    assert (override.retries, override.on_error) == (1, "serial")
    assert override.task_timeout == 1.5


@pytest.mark.parametrize("name,value", [
    ("REPRO_RETRIES", "many"),
    ("REPRO_TASK_TIMEOUT", "soon"),
    ("REPRO_ON_ERROR", "explode"),
])
def test_failure_policy_rejects_bad_env(monkeypatch, name, value):
    monkeypatch.setenv(name, value)
    with pytest.raises(ValueError, match=name):
        FailurePolicy.from_env()


def test_failure_policy_validates_fields():
    with pytest.raises(ValueError):
        FailurePolicy(retries=-1)
    with pytest.raises(ValueError):
        FailurePolicy(task_timeout=0)
    with pytest.raises(ValueError):
        FailurePolicy(on_error="panic")
    with pytest.raises(ValueError):
        FailurePolicy(max_pool_rebuilds=-2)


def test_backoff_schedule_deterministic_and_bounded():
    policy = FailurePolicy(retries=6, backoff_base=0.1, backoff_factor=2.0,
                           backoff_max=1.0, jitter=0.5, seed=42)
    schedule = backoff_schedule(policy, "task-key")
    assert schedule == backoff_schedule(policy, "task-key")  # deterministic
    assert len(schedule) == 6
    # exponential growth up to the cap, jitter bounded at +50%
    for attempt, delay in enumerate(schedule):
        base = min(0.1 * 2.0 ** attempt, 1.0)
        assert base <= delay <= base * 1.5
    # a different task de-synchronises (different jitter draw)
    assert schedule != backoff_schedule(policy, "other-task")
    # a different seed reshuffles the jitter
    reseeded = FailurePolicy(retries=6, backoff_base=0.1,
                             backoff_factor=2.0, backoff_max=1.0,
                             jitter=0.5, seed=43)
    assert schedule != backoff_schedule(reseeded, "task-key")


# ----------------------------------------------------------------------
# chaos: injected faults converge to clean results


def test_injected_crash_pool_recovers(tmp_path, monkeypatch):
    expected = _clean_expected(monkeypatch)
    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0:seed=11")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = runner.run_many(_requests(), jobs=2, policy=_fast_policy())
    assert [r.as_dict() for r in got] == expected
    report = runner.last_report
    assert report.crashes >= 1
    assert report.pool_rebuilds >= 1
    assert report.retries >= 1
    assert not report.failures


def test_injected_hang_times_out_and_recovers(tmp_path, monkeypatch):
    expected = _clean_expected(monkeypatch)[:2]  # gamess none/stride
    monkeypatch.setenv("REPRO_FAULTS", "hang:1.0:dur=1.2:seed=12")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = runner.run_many(
        _requests(benches=("gamess",)), jobs=2,
        policy=_fast_policy(task_timeout=0.3),
    )
    assert [r.as_dict() for r in got] == expected
    report = runner.last_report
    assert report.timeouts >= 2          # both first attempts hung
    assert report.pool_rebuilds >= 1     # every worker slot was abandoned
    assert not report.failures


def test_injected_crash_serial_inprocess(monkeypatch):
    expected = _clean_expected(monkeypatch)
    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0:seed=13")
    runner = ExperimentRunner()
    got = runner.run_many(_requests(), jobs=1, policy=_fast_policy())
    assert [r.as_dict() for r in got] == expected
    report = runner.last_report
    assert report.errors >= len(_requests()) // 2  # one InjectedCrash each
    assert report.retries >= 1
    assert not report.failures


def test_chaos_mixed_faults_byte_identical(tmp_path, monkeypatch):
    """The acceptance invariant: >=10% crash + hang + corrupt-cache."""
    expected = _clean_expected(monkeypatch)
    monkeypatch.setenv(
        "REPRO_FAULTS",
        "crash:0.5:seed=7,hang:0.34:dur=1.0:seed=21,"
        "corrupt-cache:0.6:seed=3",
    )
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = runner.run_many(
        _requests(), jobs=2, policy=_fast_policy(task_timeout=0.4)
    )
    assert [r.as_dict() for r in got] == expected
    assert runner.last_report.eventful
    assert not runner.last_report.failures
    # some cache entries were corrupted on write; a fresh runner detects
    # the corruption, recomputes, and still converges byte-identically
    fresh = ExperimentRunner(cache_dir=str(tmp_path))
    again = fresh.run_many(
        _requests(), jobs=2, policy=_fast_policy(task_timeout=0.4)
    )
    assert [r.as_dict() for r in again] == expected
    # and by now every entry on disk verifies, so a third pass is all hits
    final = ExperimentRunner(cache_dir=str(tmp_path))
    third = final.run_many(_requests(), jobs=2, policy=_fast_policy())
    assert [r.as_dict() for r in third] == expected
    assert final.last_report.hits == len(_requests())
    assert final.last_report.misses == 0


def test_serial_degradation_after_pool_keeps_dying(tmp_path, monkeypatch):
    expected = _clean_expected(monkeypatch)
    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0:seed=14")
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    got = runner.run_many(
        _requests(), jobs=2, policy=_fast_policy(max_pool_rebuilds=0)
    )
    assert [r.as_dict() for r in got] == expected
    report = runner.last_report
    assert report.pool_rebuilds == 1       # the rebuild that tripped the cap
    assert report.degradations >= 1        # remaining batch ran in-process
    assert not report.failures


# ----------------------------------------------------------------------
# save-as-completed + resume


def test_save_as_completed_persists_before_raise(tmp_path, monkeypatch):
    """A late failure must not lose the results that already finished."""
    real = _execute_single

    def flaky(benchmark, *args, **kwargs):
        if benchmark == "mcf":
            raise RuntimeError("injected terminal failure")
        return real(benchmark, *args, **kwargs)

    monkeypatch.setattr(runner_mod, "_execute_single", flaky)
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    policy = FailurePolicy(retries=0, backoff_base=0.0)
    with pytest.raises(SimulationError) as excinfo:
        runner.run_many(
            [RunRequest("gamess", "none", BUDGET),
             RunRequest("libquantum", "none", BUDGET),
             RunRequest("mcf", "none", BUDGET)],
            jobs=1, policy=policy,
        )
    assert excinfo.value.request.benchmark == "mcf"
    # the two completed runs were persisted the moment they finished
    assert len(cache_files(tmp_path)) == 2
    assert runner.last_report.failures


def test_on_error_skip_returns_none_slot(tmp_path, monkeypatch):
    real = _execute_single

    def flaky(benchmark, *args, **kwargs):
        if benchmark == "mcf":
            raise RuntimeError("injected terminal failure")
        return real(benchmark, *args, **kwargs)

    monkeypatch.setattr(runner_mod, "_execute_single", flaky)
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    policy = FailurePolicy(retries=1, backoff_base=0.0, on_error="skip")
    results = runner.run_many(
        [RunRequest("gamess", "none", BUDGET),
         RunRequest("mcf", "none", BUDGET),
         RunRequest("libquantum", "none", BUDGET)],
        jobs=1, policy=policy,
    )
    assert results[0] is not None and results[2] is not None
    assert results[1] is None
    report = runner.last_report
    assert report.skipped == 1
    assert report.retries == 1           # one retry was attempted first
    assert len(report.failures) == 1
    assert report.failures[0].request.benchmark == "mcf"


def test_on_error_serial_runs_failed_task_inprocess(tmp_path, monkeypatch):
    """Pool-side failures fall back to one in-process execution."""
    real = _execute_single

    def flaky(benchmark, *args, **kwargs):
        if benchmark == "mcf" and kwargs.get("attempt", 0) == 0:
            raise RuntimeError("fails on the first attempt only")
        return real(benchmark, *args, **kwargs)

    monkeypatch.setattr(runner_mod, "_execute_single", flaky)
    expected = _clean_expected(monkeypatch)
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    policy = FailurePolicy(retries=0, backoff_base=0.0, on_error="serial")
    got = runner.run_many(_requests(), jobs=2, policy=policy)
    assert [r.as_dict() for r in got] == expected
    assert runner.last_report.degradations >= 1
    assert not runner.last_report.failures


def test_interrupted_sweep_resumes_from_cache(tmp_path, monkeypatch):
    """A killed-then-restarted sweep must not recompute finished entries."""
    all_requests = _requests()
    first_half, second_half = all_requests[:3], all_requests[3:]
    ExperimentRunner(cache_dir=str(tmp_path)).run_many(first_half, jobs=1)
    assert len(cache_files(tmp_path)) == 3

    real = _execute_single
    executed = []

    def counting(benchmark, prefetcher, *args, **kwargs):
        executed.append((benchmark, prefetcher))
        return real(benchmark, prefetcher, *args, **kwargs)

    monkeypatch.setattr(runner_mod, "_execute_single", counting)
    resumed = ExperimentRunner(cache_dir=str(tmp_path))
    results = resumed.run_many(all_requests, jobs=1)
    assert all(result is not None for result in results)
    # only the second half was simulated; the rest came from the cache
    assert sorted(executed) == sorted(
        (r.benchmark, r.prefetcher) for r in second_half
    )
    report = resumed.last_report
    assert report.hits == len(first_half)
    assert report.misses == len(second_half)


def test_keyboard_interrupt_propagates_serial(monkeypatch):
    def interrupt(*args, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(runner_mod, "_execute_single", interrupt)
    runner = ExperimentRunner()
    with pytest.raises(KeyboardInterrupt):
        runner.run_many([RunRequest("gamess", "none", BUDGET)], jobs=1)


def test_keyboard_interrupt_propagates_pool(tmp_path, monkeypatch):
    """Ctrl-C mid-batch shuts the pool down and re-raises."""
    def interrupt(self, path, data, memo_key=None):
        raise KeyboardInterrupt

    monkeypatch.setattr(ExperimentRunner, "_save", interrupt)
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    with pytest.raises(KeyboardInterrupt):
        runner.run_many(_requests(benches=("gamess", "mcf")), jobs=2)


# ----------------------------------------------------------------------
# cache integrity envelope


def test_cache_entries_carry_integrity_envelope(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    result = runner.run_single("gamess", "none", instructions=BUDGET)
    (path,) = cache_files(tmp_path)
    with open(path) as handle:
        entry = json.load(handle)
    assert set(entry) == {"v", "sha", "data"}
    assert entry["v"] == runner_mod.CACHE_VERSION
    assert entry["data"] == result.as_dict()
    assert entry["sha"] == _payload_sha(entry["data"])


def test_tampered_entry_detected_and_recomputed(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_single("gamess", "none", instructions=BUDGET)
    (path,) = cache_files(tmp_path)
    with open(path) as handle:
        entry = json.load(handle)
    entry["data"]["ipc"] = 999.0  # tamper without fixing the digest
    with open(path, "w") as handle:
        json.dump(entry, handle)
    fresh = ExperimentRunner(cache_dir=str(tmp_path))
    results = fresh.run_many([RunRequest("gamess", "none", BUDGET)], jobs=1)
    assert results[0].as_dict() == first.as_dict()  # not the wrong result
    assert fresh.last_report.cache_corruptions == 1


def test_stale_envelope_version_detected(tmp_path):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_single("gamess", "none", instructions=BUDGET)
    (path,) = cache_files(tmp_path)
    with open(path) as handle:
        entry = json.load(handle)
    entry["v"] = 1  # pretend a stale pre-v2 writer produced this file
    with open(path, "w") as handle:
        json.dump(entry, handle)
    fresh = ExperimentRunner(cache_dir=str(tmp_path))
    fresh.run_many([RunRequest("gamess", "none", BUDGET)], jobs=1)
    assert fresh.last_report.cache_corruptions == 1
    with open(path) as handle:  # rewritten as a valid current entry
        assert json.load(handle)["data"] == first.as_dict()


def test_legacy_bare_entry_still_served(tmp_path, monkeypatch):
    runner = ExperimentRunner(cache_dir=str(tmp_path))
    first = runner.run_single("gamess", "none", instructions=BUDGET)
    (path,) = cache_files(tmp_path)
    with open(path, "w") as handle:  # rewrite as a pre-envelope entry
        json.dump(first.as_dict(), handle)

    def boom(*args, **kwargs):
        raise AssertionError("legacy entry was recomputed")

    monkeypatch.setattr(runner_mod, "_execute_single", boom)
    fresh = ExperimentRunner(cache_dir=str(tmp_path))
    served = fresh.run_single("gamess", "none", instructions=BUDGET)
    assert served.as_dict() == first.as_dict()


# ----------------------------------------------------------------------
# in-process crash faults raise (not exit), keeping run_single safe


def test_inprocess_crash_fault_is_exception(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0:seed=15")
    plan = get_fault_plan()
    with pytest.raises(InjectedCrash):
        plan.inject_execution_faults("some-task", attempt=0)


def test_run_single_retries_through_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    clean = ExperimentRunner().run_single("gamess", "none",
                                          instructions=BUDGET)
    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0:seed=16")
    runner = ExperimentRunner(policy=_fast_policy())
    survived = runner.run_single("gamess", "none", instructions=BUDGET)
    assert survived.as_dict() == clean.as_dict()


# ----------------------------------------------------------------------
# CLI plumbing


def test_cli_resilience_flags_parse():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["compare", "gamess", "--retries", "3", "--task-timeout", "2.5",
         "--on-error", "serial"]
    )
    assert (args.retries, args.task_timeout, args.on_error) == \
        (3, 2.5, "serial")


def test_cli_compare_survives_chaos(monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_FAULTS", "crash:1.0:seed=17")
    assert main(["compare", "gamess", "-n", "4000",
                 "--prefetchers", "stride",
                 "--retries", "4", "-j", "2"]) == 0
    captured = capsys.readouterr()
    assert "speedup" in captured.out
    assert "[resilience]" in captured.err  # the BatchReport was surfaced
