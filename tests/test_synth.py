"""User-defined synthetic workloads."""

import pytest

from repro.sim import System, SystemConfig
from repro.workloads.synth import KERNELS, synthesize


def test_every_kernel_synthesizes_and_runs():
    phases = [
        {"kernel": "stream", "elems": 100, "stride": 64,
         "footprint_mb": 1},
        {"kernel": "multistream", "strides": (64, 128), "elems": 50},
        {"kernel": "region", "regions": 40},
        {"kernel": "pointer_chase", "nodes": 64, "hops": 50},
        {"kernel": "gather", "elems": 50},
        {"kernel": "branchy", "elems": 50, "footprint_mb": 1},
        {"kernel": "compute", "iters": 30},
        {"kernel": "matrix", "rows": 4, "cols": 8},
        {"kernel": "hot", "size_bytes": 4096, "iters": 30},
    ]
    workload = synthesize("allkernels", phases, seed=3)
    system = System(workload, SystemConfig(prefetcher="bfetch"))
    result = system.run(20_000)
    assert result.ipc > 0


def test_unknown_kernel_rejected():
    with pytest.raises(ValueError):
        synthesize("bad", [{"kernel": "teleport"}])


def test_empty_phases_rejected():
    with pytest.raises(ValueError):
        synthesize("empty", [])


def test_deterministic_per_seed():
    spec = [{"kernel": "pointer_chase", "nodes": 32, "hops": 20}]
    a = synthesize("x", spec, seed=1)
    b = synthesize("x", spec, seed=1)
    c = synthesize("x", spec, seed=2)
    assert a.memory == b.memory
    assert a.memory != c.memory


def test_persistent_register_exhaustion():
    phases = [{"kernel": "stream", "elems": 10, "footprint_mb": 1}] * 7
    with pytest.raises(ValueError):
        synthesize("greedy", phases)


def test_docstring_example_builds():
    workload = synthesize(
        "mydb",
        phases=[
            {"kernel": "stream", "elems": 200, "stride": 64, "work": 8,
             "footprint_mb": 4},
            {"kernel": "pointer_chase", "nodes": 256, "hops": 100,
             "spread": 8},
            {"kernel": "branchy", "elems": 100, "bias": 0.9,
             "step_taken": 256, "step_not": 64, "footprint_mb": 2},
            {"kernel": "compute", "iters": 50},
        ],
        seed=7,
    )
    assert workload.program.validate()


def test_kernel_list_is_exported():
    assert "stream" in KERNELS and "bigcode" in KERNELS
