"""Property-based tests on core structures' invariants."""

from hypothesis import given, settings, strategies as st

from repro.branch import PathConfidence
from repro.core import (
    AlternateRegisterFile,
    BranchTraceCache,
    MemoryHistoryTable,
    PerLoadFilter,
    bb_hash,
)
from repro.memory import Cache
from repro.prefetchers import SMSPrefetcher


@given(st.lists(st.tuples(st.integers(0, 1023), st.booleans()), max_size=300))
@settings(max_examples=30, deadline=None)
def test_filter_counters_always_bounded(updates):
    f = PerLoadFilter()
    for load_hash, useful in updates:
        f.update(load_hash, useful)
        assert 0 <= f.confidence(load_hash) <= 3 * f.max_count
    for table in f.tables:
        assert all(0 <= c <= f.max_count for c in table)


@given(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 2**32),
                          st.integers(0, 1000)), max_size=200))
@settings(max_examples=30, deadline=None)
def test_arf_reflects_youngest_applied_write(writes):
    arf = AlternateRegisterFile()
    expected = {}
    for seq, (reg, value, ready) in enumerate(writes):
        arf.write(reg, value, seq, ready)
        current = expected.get(reg)
        if current is None or seq > current[0]:
            expected[reg] = (seq, value)
    arf.sync(10_000)
    for reg, (_, value) in expected.items():
        assert arf.read(reg) == value


@given(st.lists(st.tuples(st.integers(0, 2**20), st.booleans(),
                          st.integers(0, 2**20)), max_size=200))
@settings(max_examples=30, deadline=None)
def test_brtc_capacity_is_fixed(updates):
    brtc = BranchTraceCache(entries=64)
    for pc, taken, target in updates:
        h = bb_hash(pc, taken, target)
        brtc.update(h, pc & 0xFFFFFFFF, pc + 4, target)
    assert len(brtc.tags) == 64


@given(st.lists(st.tuples(st.integers(0, 2**16), st.integers(0, 31)),
                max_size=300))
@settings(max_examples=30, deadline=None)
def test_mht_slot_count_bounded(ops):
    mht = MemoryHistoryTable(entries=16, reg_slots=3)
    for h, reg in ops:
        entry = mht.get_or_allocate(h, h & 0xFFFF)
        entry.slot_for(reg, allocate=True)
    for entry in mht.table:
        if entry is not None:
            assert len(entry.slots) <= 3


@given(st.lists(st.floats(0.5, 1.0), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_path_confidence_monotonically_nonincreasing(probs):
    path = PathConfidence(threshold=0.5)
    previous = path.value
    for p in probs:
        path.extend(p)
        assert path.value <= previous + 1e-12
        previous = path.value


@given(st.lists(st.integers(0, 255), max_size=400))
@settings(max_examples=30, deadline=None)
def test_cache_occupancy_never_exceeds_capacity(blocks):
    cache = Cache("p", 8 * 64, 2, 64)  # 4 sets x 2 ways
    for block in blocks:
        cache.fill(block * 64)
        assert cache.occupancy() <= 8
        for cache_set in cache.sets:
            assert len(cache_set) <= 2


@given(st.lists(st.tuples(st.integers(0, 2**12), st.integers(0, 2**22),
                          st.booleans()), max_size=300))
@settings(max_examples=20, deadline=None)
def test_sms_agt_bounded_and_patterns_well_formed(accesses):
    p = SMSPrefetcher()
    for pc, addr, hit in accesses:
        p.on_load(pc, addr, hit, 0)
        assert len(p.agt) <= p.config.agt_entries
    mask = (1 << p.config.blocks_per_region) - 1
    for generation in p.agt.values():
        assert generation.pattern & ~mask == 0
    for tag, pattern in p.pht.values():
        assert pattern & ~mask == 0
