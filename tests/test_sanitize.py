"""Runtime invariant sanitizer, corrupt-state fault, and auto-bisect."""

import json
import os

import pytest

from repro.resilience import FailurePolicy, SimulationError
from repro.resilience.faults import (
    DEFAULT_CORRUPT_CYCLE,
    FaultPlan,
    apply_state_corruption,
    parse_faults,
)
from repro.sanitize import (
    DivergenceReport,
    Sanitizer,
    SanitizerError,
    mode_from_env,
    sentinel_run,
)
from repro.checkpoint import Checkpointer
from repro.sim.config import SystemConfig
from repro.sim.runner import ExperimentRunner
from repro.sim.system import System
from repro.workloads.spec import build_workload


def _system(benchmark="mcf", prefetcher="bfetch"):
    return System(build_workload(benchmark),
                  SystemConfig(prefetcher=prefetcher))


# ----------------------------------------------------------------------
# mode plumbing


def test_mode_from_env():
    assert mode_from_env({}) == "off"
    assert mode_from_env({"REPRO_CHECK": ""}) == "off"
    assert mode_from_env({"REPRO_CHECK": "cheap"}) == "cheap"
    assert mode_from_env({"REPRO_CHECK": " FULL "}) == "full"
    with pytest.raises(ValueError) as excinfo:
        mode_from_env({"REPRO_CHECK": "paranoid"})
    assert "off, cheap, full" in str(excinfo.value)


def test_from_env_returns_none_when_off():
    assert Sanitizer.from_env({}) is None
    sanitizer = Sanitizer.from_env({"REPRO_CHECK": "full"})
    assert sanitizer.mode == "full" and sanitizer.active


def test_invalid_mode_rejected():
    with pytest.raises(ValueError):
        Sanitizer("paranoid")


# ----------------------------------------------------------------------
# clean runs: checks pass and perturb nothing


@pytest.mark.parametrize("prefetcher", ["none", "stride", "sms", "bfetch"])
def test_clean_run_passes_full_checks(prefetcher):
    budget = 15_000
    reference = _system(prefetcher=prefetcher).run(budget).as_dict()
    sanitizer = Sanitizer("full", interval=1024)
    checked = _system(prefetcher=prefetcher).run(
        budget, sanitizer=sanitizer).as_dict()
    assert checked == reference  # auditing must never change behaviour
    assert sanitizer.checks_run > 0
    assert sanitizer.violations == 0


# ----------------------------------------------------------------------
# detection


def test_cheap_detects_counter_corruption():
    system = _system()
    system.run(3_000)
    apply_state_corruption(system)
    sanitizer = Sanitizer("cheap")
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.check_system(system, cycle=3_000)
    error = excinfo.value
    assert error.component == "mem.l1d"
    assert error.invariant == "hit-miss-partition"
    assert error.cycle == 3_000
    assert sanitizer.violations == 1


def test_full_detects_misfiled_line():
    """A line filed under the wrong set breaks tag/set consistency --
    invisible to the cheap tier (counters and occupancy stay legal),
    caught only by the full walk."""
    from repro.memory.cache import Line

    system = _system()
    system.run(3_000)
    cache = system.hierarchy.l1d
    # swap one victim for a block that maps to a *different* set, so
    # occupancy stays within associativity and no counter moves
    index, cache_set = next(
        (i, s) for i, s in enumerate(cache.sets) if s
    )
    cache_set.pop(next(iter(cache_set)))
    bogus_block = (index + 1) & cache._set_mask | (cache._set_mask + 1)
    assert bogus_block & cache._set_mask != index
    cache_set[bogus_block] = Line(cache._tick)
    Sanitizer("cheap").check_system(system, cycle=3_000)  # passes
    with pytest.raises(SanitizerError) as excinfo:
        Sanitizer("full").check_system(system, cycle=3_000)
    assert excinfo.value.invariant == "tag-set-consistency"


def test_arf_functional_agreement_check():
    system = _system(prefetcher="bfetch")
    system.run(10_000)
    arf = system.prefetcher.arf
    pending = {entry[2] for entry in arf._pending}
    victims = [reg for reg in range(31)
               if reg not in pending and arf.seq[reg] >= 0]
    assert victims, "run too short to drain any ARF write"
    arf.values[victims[0]] += 1
    with pytest.raises(SanitizerError) as excinfo:
        Sanitizer("full").check_system(system)
    assert excinfo.value.invariant == "arf-functional-agreement"


def test_violation_dumps_snapshot(tmp_path):
    system = _system()
    system.run(3_000)
    apply_state_corruption(system)
    sanitizer = Sanitizer("cheap", snapshot_dir=str(tmp_path))
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.check_system(system, cycle=3_000)
    path = excinfo.value.snapshot_path
    assert path is not None and os.path.exists(path)
    with open(path) as handle:
        envelope = json.load(handle)
    assert set(envelope) == {"v", "sha", "data"}
    assert envelope["data"]["cycle"] == 3_000


# ----------------------------------------------------------------------
# corrupt-state fault verb


def test_parse_corrupt_state_spec():
    specs = parse_faults("corrupt-state:1.0:cycle=500")
    spec = specs["corrupt-state"]
    assert spec.prob == 1.0 and spec.cycle == 500
    with pytest.raises(ValueError):
        parse_faults("corrupt-state:1.0:cycle=0")


def test_corrupt_state_cycle_fires_once_first_attempt_only():
    plan = FaultPlan(parse_faults("corrupt-state:1.0:cycle=700"))
    assert plan.corrupt_state_cycle("job", attempt=1) is None
    assert plan.corrupt_state_cycle("job") == 700
    assert plan.corrupt_state_cycle("job") is None  # once per key
    assert plan.corrupt_state_cycle("other") == 700
    default = FaultPlan(parse_faults("corrupt-state:1.0"))
    assert default.corrupt_state_cycle("job") == DEFAULT_CORRUPT_CYCLE


def test_run_with_corrupt_at_trips_sanitizer():
    sanitizer = Sanitizer("cheap", interval=1000)
    with pytest.raises(SanitizerError) as excinfo:
        _system().run(20_000, sanitizer=sanitizer, corrupt_at=2_500)
    assert excinfo.value.cycle >= 2_500


# ----------------------------------------------------------------------
# divergence sentinel + first-bad-cycle auto-bisect


def test_sentinel_run_clean():
    result, report = sentinel_run(
        lambda: _system(), 10_000, sanitizer=Sanitizer("full"))
    assert report is None
    assert result.as_dict() == _system().run(10_000).as_dict()


def test_sentinel_bisect_names_first_bad_cycle(tmp_path):
    corrupt_at = 2_500
    checkpointer = Checkpointer(str(tmp_path / "run.ckpt.json"), every=1000)
    result, report = sentinel_run(
        lambda: _system(), 20_000,
        checkpointer=checkpointer,
        sanitizer=Sanitizer("cheap", interval=1000),
        corrupt_at=corrupt_at,
    )
    assert result is None
    assert isinstance(report, DivergenceReport)
    # the checkpoint replayed from predates the corruption...
    assert report.replay_from < corrupt_at
    # ...and per-cycle full checks pin the first bad simulated cycle to
    # the corruption point (at/after corrupt_at, well inside the coarse
    # detection interval of the original trigger)
    assert report.first_bad_cycle is not None
    assert corrupt_at <= report.first_bad_cycle <= report.trigger.cycle
    assert report.first_error.invariant == "hit-miss-partition"
    assert "first bad cycle" in report.describe()


# ----------------------------------------------------------------------
# chaos convergence through the runner: a corrupt-state fault is
# detected by REPRO_CHECK and the retry (attempt 1, fault gated off)
# recovers the byte-identical clean result


def test_runner_recovers_from_corrupt_state_fault(monkeypatch):
    budget = 20_000
    reference = ExperimentRunner().run_single(
        "mcf", "bfetch", budget).as_dict()
    monkeypatch.setenv("REPRO_FAULTS", "corrupt-state:1.0:cycle=1500")
    monkeypatch.setenv("REPRO_CHECK", "cheap")
    policy = FailurePolicy(retries=1, backoff_base=0.0, jitter=0.0)
    result = ExperimentRunner(policy=policy).run_single(
        "mcf", "bfetch", budget).as_dict()
    assert result == reference


def test_runner_surfaces_unrecovered_violation(monkeypatch):
    # a *different* REPRO_FAULTS string from the test above, so the
    # process-level fault plan (and its once-per-key memory) is rebuilt
    monkeypatch.setenv("REPRO_FAULTS", "corrupt-state:1.0:cycle=1800")
    monkeypatch.setenv("REPRO_CHECK", "cheap")
    policy = FailurePolicy(retries=0, backoff_base=0.0, jitter=0.0)
    with pytest.raises(SimulationError) as excinfo:
        ExperimentRunner(policy=policy).run_single("mcf", "bfetch", 20_000)
    assert "invariant" in str(excinfo.value)
