"""Workload variants and across-seed statistics."""

import pytest

from repro.sim import ExperimentRunner
from repro.sim.variability import (
    mean_and_ci,
    speedup_across_variants,
    variability_report,
)
from repro.workloads import build_workload


def test_mean_and_ci_basics():
    mean, half = mean_and_ci([2.0, 2.0, 2.0])
    assert mean == 2.0 and half == 0.0
    mean, half = mean_and_ci([1.0, 3.0])
    assert mean == 2.0 and half > 0.0
    mean, half = mean_and_ci([5.0])
    assert mean == 5.0 and half == 0.0
    with pytest.raises(ValueError):
        mean_and_ci([])


def test_variants_differ_in_data_not_structure():
    a = build_workload("mcf", variant=0)
    b = build_workload("mcf", variant=1)
    assert len(a.program) == len(b.program)
    assert [i.op for i in a.program.instrs] == [i.op for i in b.program.instrs]
    assert a.memory != b.memory


def test_variant_zero_is_canonical():
    assert build_workload("mcf") is build_workload("mcf", variant=0)


def test_speedup_across_variants_runs():
    runner = ExperimentRunner()
    mean, half, samples = speedup_across_variants(
        runner, "libquantum", "bfetch", instructions=15_000, variants=2
    )
    assert len(samples) == 2
    assert mean > 1.2  # the streaming gain is robust across seeds
    assert half < mean  # sane dispersion


def test_variability_report_shape():
    runner = ExperimentRunner()
    rows = variability_report(runner, ["gamess"], "stride",
                              instructions=8_000, variants=2)
    label, stats = rows[0]
    assert label == "gamess"
    assert stats["min"] <= stats["mean"] <= stats["max"]
