from setuptools import setup

# Shim for environments without the `wheel` package (PEP 517 fallback);
# all metadata lives in pyproject.toml.
setup()
