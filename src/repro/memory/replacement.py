"""Pluggable cache replacement policies.

The default :class:`~repro.memory.Cache` uses an inlined LRU fast path;
passing a policy object switches to one of:

* :class:`LRUPolicy` -- least recently used (the Table II baseline).
* :class:`RandomPolicy` -- seeded pseudo-random victim selection.
* :class:`SRRIPPolicy` -- static re-reference interval prediction
  (Jaleel et al.): 2-bit RRPVs, inserted "long", promoted on hit.
* :class:`PACManPolicy` -- prefetch-aware SRRIP in the spirit of PACMan
  (Wu et al., MICRO 2011 -- cited by the paper for the damage inaccurate
  prefetches do in shared caches): *prefetched* lines are inserted at
  distant re-reference, so useless prefetches are evicted first instead
  of displacing demand data.

Policies keep their per-line state in the line's ``lru`` field, whose
meaning is policy-defined (recency tick for LRU, RRPV for RRIP).
"""

import random


class ReplacementPolicy:
    """Interface: per-line state lives in ``line.lru``."""

    name = "abstract"

    def on_fill(self, cache, line, prefetched):
        """Initialise the state of a newly inserted line."""
        raise NotImplementedError

    def on_hit(self, cache, line):
        """Update state when a resident line is demanded."""
        raise NotImplementedError

    def select_victim(self, cache, cache_set):
        """Return the block key of the line to evict from *cache_set*."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used (matches the inlined fast path)."""

    name = "lru"

    def on_fill(self, cache, line, prefetched):
        cache._tick += 1
        line.lru = cache._tick

    def on_hit(self, cache, line):
        cache._tick += 1
        line.lru = cache._tick

    def select_victim(self, cache, cache_set):
        return min(cache_set, key=lambda b: cache_set[b].lru)


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement -- cheap hardware, noisier behaviour."""

    name = "random"

    def __init__(self, seed=1):
        self._rng = random.Random(seed)

    def on_fill(self, cache, line, prefetched):
        line.lru = 0

    def on_hit(self, cache, line):
        pass

    def select_victim(self, cache, cache_set):
        keys = sorted(cache_set)
        return keys[self._rng.randrange(len(keys))]


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with 2-bit re-reference prediction values.

    Lines are inserted with RRPV ``max-1`` ("long re-reference"),
    promoted to 0 on a hit; the victim is any line at ``max``, aging the
    set when none is.
    """

    name = "srrip"

    def __init__(self, bits=2):
        self.max_rrpv = (1 << bits) - 1

    def _insert_rrpv(self, prefetched):
        return self.max_rrpv - 1

    def on_fill(self, cache, line, prefetched):
        line.lru = self._insert_rrpv(prefetched)

    def on_hit(self, cache, line):
        line.lru = 0

    def select_victim(self, cache, cache_set):
        while True:
            for block in sorted(cache_set):
                if cache_set[block].lru >= self.max_rrpv:
                    return block
            for line in cache_set.values():
                line.lru += 1


class PACManPolicy(SRRIPPolicy):
    """Prefetch-aware SRRIP: prefetch fills predicted distant.

    Useless prefetches then age out before demand-fetched data, which is
    the mechanism PACMan uses to contain "friendly fire" in shared LLCs.
    """

    name = "pacman"

    def _insert_rrpv(self, prefetched):
        return self.max_rrpv if prefetched else self.max_rrpv - 1


POLICIES = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "pacman": PACManPolicy,
}


def make_policy(name, **kwargs):
    """Instantiate a replacement policy by name ("lru", "random",
    "srrip", "pacman")."""
    try:
        return POLICIES[name](**kwargs)
    except KeyError:
        raise ValueError(
            "unknown replacement policy %r (choose from %s)"
            % (name, ", ".join(sorted(POLICIES)))
        )
