"""Memory-system substrate: caches, DRAM, hierarchy, prefetch queue, stats."""

from repro.memory.cache import Cache, CacheStats, Line
from repro.memory.dram import DramModel
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.prefetch_queue import PrefetchQueue
from repro.memory.replacement import (
    LRUPolicy,
    PACManPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    make_policy,
)
from repro.memory.stats import PrefetchStats

__all__ = [
    "Cache",
    "CacheStats",
    "Line",
    "DramModel",
    "MemoryHierarchy",
    "HierarchyConfig",
    "PrefetchQueue",
    "PrefetchStats",
    "ReplacementPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "SRRIPPolicy",
    "PACManPolicy",
    "make_policy",
]
