"""Bounded prefetch request queue.

Table I budgets a 100-entry prefetch queue.  Prefetchers enqueue block
requests; the core drains a limited number per cycle into the hierarchy.
When full, *new* requests are rejected -- as a real request queue does --
which makes over-aggressive speculation self-penalising: a flood of
far-future candidates occupies the queue and near-term requests bounce.
"""

from collections import deque


class PrefetchQueue:
    """FIFO of pending prefetch requests with a capacity cap.

    Entries are ``(addr, meta)`` tuples; *meta* is prefetcher-defined and
    travels with the block into the cache line for feedback.
    """

    def __init__(self, capacity=100, drops_counter=None):
        self.capacity = capacity
        self._queue = deque()
        self.drops = 0

    def __len__(self):
        return len(self._queue)

    def push(self, addr, meta=None):
        """Enqueue a request; rejected (dropped) when the queue is full."""
        if len(self._queue) >= self.capacity:
            self.drops += 1
            return
        self._queue.append((addr, meta))

    def pop(self):
        """Dequeue the oldest request, or None when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def clear(self):
        self._queue.clear()

    def snapshot(self):
        """Queue contents as a JSON-safe structure.

        Metas go through :func:`repro.checkpoint.state.encode_meta` so
        opaque tuples and the ``IFETCH_META`` identity sentinel survive
        the round trip.
        """
        from repro.checkpoint.state import encode_meta
        return {
            "entries": [[addr, encode_meta(meta)]
                        for addr, meta in self._queue],
            "drops": self.drops,
        }

    def restore(self, state):
        """Restore queue contents from :meth:`snapshot` output."""
        from repro.checkpoint.state import decode_meta
        self._queue = deque(
            (addr, decode_meta(meta)) for addr, meta in state["entries"]
        )
        self.drops = state["drops"]
