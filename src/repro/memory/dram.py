"""Fixed-latency, bandwidth-capped DRAM model.

Table II gives a 200-cycle off-chip latency and a 12.8 GB/s memory
controller (one x64 DDR3 channel).  The 200-cycle (~100ns) latency
implies a ~2GHz core clock, at which 12.8 GB/s is 6.4 bytes/cycle --
one 64-byte line every ~10 cycles -- modelled here as a single channel
whose transfers serialise.  Demand misses and
prefetches share the channel, so aggressive useless prefetching delays
demand traffic exactly as the paper's "friendly fire" discussion expects.
"""


class DramModel:
    """Single-channel DRAM with a serialising transfer slot.

    The controller gives demand misses priority over prefetch traffic: a
    demand transfer waits for older *demand* transfers plus at most one
    transfer slot of prefetch backlog (the transfer already on the wires),
    while prefetch transfers queue behind everything.  This is what keeps
    a prefetcher from starving the core it is meant to help.

    :param latency: access latency in cycles (row + device + bus).
    :param cycles_per_transfer: channel occupancy of one 64B line.
    """

    def __init__(self, latency=200, cycles_per_transfer=5):
        self.latency = latency
        self.cycles_per_transfer = cycles_per_transfer
        self.next_free = 0         # full channel backlog (all traffic)
        self.next_free_demand = 0  # backlog of demand traffic only
        self.accesses = 0
        self.prefetch_accesses = 0
        self.busy_cycles = 0

    def access(self, now, demand=True):
        """Issue one line transfer at cycle *now*; return its total latency."""
        transfer = self.cycles_per_transfer
        if demand:
            start = max(now, self.next_free_demand,
                        min(self.next_free, now + transfer))
            self.next_free_demand = start + transfer
        else:
            start = max(now, self.next_free)
            self.prefetch_accesses += 1
        if start + transfer > self.next_free:
            self.next_free = start + transfer
        self.accesses += 1
        self.busy_cycles += transfer
        return (start - now) + self.latency

    def queue_delay(self, now):
        """Cycles a request arriving *now* would wait for the channel."""
        return max(0, self.next_free - now)

    def reset(self):
        self.next_free = 0
        self.next_free_demand = 0
        self.accesses = 0
        self.prefetch_accesses = 0
        self.busy_cycles = 0

    def snapshot(self):
        """Channel backlog and counters as a JSON-safe structure."""
        return {
            "next_free": self.next_free,
            "next_free_demand": self.next_free_demand,
            "accesses": self.accesses,
            "prefetch_accesses": self.prefetch_accesses,
            "busy_cycles": self.busy_cycles,
        }

    def restore(self, state):
        """Restore channel state from :meth:`snapshot` output."""
        self.next_free = state["next_free"]
        self.next_free_demand = state["next_free_demand"]
        self.accesses = state["accesses"]
        self.prefetch_accesses = state["prefetch_accesses"]
        self.busy_cycles = state["busy_cycles"]
