"""Prefetch accounting shared by every prefetcher.

The paper's Fig. 11 reports *useful* (prefetched block demanded before
eviction) versus *useless* (evicted untouched) prefetches; we additionally
track *late* prefetches (demanded while still in flight -- partially
useful) and queue drops.

The three outcome counters are **disjoint**: a resolved prefetch is
exactly one of ``useful``, ``late`` or ``useless``.  (Earlier revisions
double-counted ``late`` into ``useful``; see DESIGN.md section 6.)  The
derived metrics follow the standard prefetching taxonomy:

* ``accuracy``   = (useful + late) / (useful + late + useless) -- the
  fraction of resolved prefetches that were demanded at all;
* ``timeliness`` = useful / (useful + late) -- of the demanded ones, the
  fraction that arrived in time.

Coverage needs the demand-miss count and is therefore derived at the
system level (a :class:`~repro.obs.Ratio` over the L1D stats, see
``pf.<name>.coverage`` in the stats registry).
"""


class PrefetchStats:
    """Counters for one prefetcher instance (disjoint outcomes)."""

    __slots__ = ("issued", "useful", "useless", "late", "dropped", "duplicate")

    def __init__(self):
        self.issued = 0
        self.useful = 0
        self.useless = 0
        self.late = 0
        self.dropped = 0
        self.duplicate = 0

    @property
    def resolved(self):
        """Prefetches whose outcome is known."""
        return self.useful + self.late + self.useless

    @property
    def accuracy(self):
        """Demanded fraction (useful or late) of resolved prefetches."""
        resolved = self.resolved
        return (self.useful + self.late) / resolved if resolved else 0.0

    @property
    def timeliness(self):
        """In-time fraction of the demanded prefetches."""
        demanded = self.useful + self.late
        return self.useful / demanded if demanded else 0.0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def reset(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def __repr__(self):
        return (
            "PrefetchStats(issued=%d, useful=%d, useless=%d, late=%d, "
            "dropped=%d, duplicate=%d)"
            % (self.issued, self.useful, self.useless, self.late,
               self.dropped, self.duplicate)
        )
