"""Prefetch accounting shared by every prefetcher.

The paper's Fig. 11 reports *useful* (prefetched block demanded before
eviction) versus *useless* (evicted untouched) prefetches; we additionally
track *late* prefetches (demanded while still in flight -- partially
useful) and queue drops.
"""


class PrefetchStats:
    """Counters for one prefetcher instance."""

    __slots__ = ("issued", "useful", "useless", "late", "dropped", "duplicate")

    def __init__(self):
        self.issued = 0
        self.useful = 0
        self.useless = 0
        self.late = 0
        self.dropped = 0
        self.duplicate = 0

    @property
    def accuracy(self):
        """Useful fraction of issued prefetches that have been resolved."""
        resolved = self.useful + self.useless
        return self.useful / resolved if resolved else 0.0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return (
            "PrefetchStats(issued=%d, useful=%d, useless=%d, late=%d, "
            "dropped=%d, duplicate=%d)"
            % (self.issued, self.useful, self.useless, self.late,
               self.dropped, self.duplicate)
        )
