"""Three-level cache hierarchy with a shared LLC and DRAM behind it.

Latencies follow the paper's Table II and stack on the way down: an L1 hit
costs 2 cycles, an L2 hit 2+10, an LLC hit 2+10+20, and DRAM adds its own
200-cycle latency plus channel queueing.  Prefetches fill the full path
(LLC, L2, L1D) and occupy an L1 line immediately with a future ``ready``
time, so pollution and lateness are both modelled.

For multiprogrammed (CMP) runs, one :class:`~repro.memory.Cache` LLC and
one :class:`~repro.memory.DramModel` are shared across the per-core
hierarchies, which is where the inter-application contention the paper
studies comes from.
"""

from repro.memory.cache import Cache
from repro.memory.dram import DramModel


class HierarchyConfig:
    """Cache geometry and latency knobs (defaults = paper Table II)."""

    def __init__(
        self,
        l1i_size=64 * 1024,
        l1i_assoc=8,
        l1d_size=64 * 1024,
        l1d_assoc=8,
        l1_latency=2,
        l2_size=256 * 1024,
        l2_assoc=8,
        l2_latency=10,
        llc_size_per_core=2 * 1024 * 1024,
        llc_assoc=16,
        llc_latency=20,
        dram_latency=200,
        # Table II's 12.8GB/s controller at the ~2GHz core clock implied
        # by the 200-cycle (~100ns) DRAM latency = 6.4B/cycle = one 64B
        # line per 10 core cycles
        dram_cycles_per_transfer=10,
        block_bytes=64,
        mshr_entries=8,
        imshr_entries=4,
        llc_policy="lru",
    ):
        # fail fast on non-positive geometry/latency knobs: a zero-cycle
        # latency or an empty cache silently warps every downstream stat
        for field, value in (
            ("l1i_size", l1i_size), ("l1i_assoc", l1i_assoc),
            ("l1d_size", l1d_size), ("l1d_assoc", l1d_assoc),
            ("l1_latency", l1_latency),
            ("l2_size", l2_size), ("l2_assoc", l2_assoc),
            ("l2_latency", l2_latency),
            ("llc_size_per_core", llc_size_per_core),
            ("llc_assoc", llc_assoc), ("llc_latency", llc_latency),
            ("dram_latency", dram_latency),
            ("block_bytes", block_bytes),
            ("mshr_entries", mshr_entries),
            ("imshr_entries", imshr_entries),
        ):
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    "HierarchyConfig.%s must be a positive integer, got %r"
                    % (field, value)
                )
        # zero is legal here: it disables transfer serialisation
        # (infinite DRAM bandwidth), which microbenchmarks rely on
        if (not isinstance(dram_cycles_per_transfer, int)
                or dram_cycles_per_transfer < 0):
            raise ValueError(
                "HierarchyConfig.dram_cycles_per_transfer must be a "
                "non-negative integer, got %r" % (dram_cycles_per_transfer,)
            )
        self.l1i_size = l1i_size
        self.l1i_assoc = l1i_assoc
        self.l1d_size = l1d_size
        self.l1d_assoc = l1d_assoc
        self.l1_latency = l1_latency
        self.l2_size = l2_size
        self.l2_assoc = l2_assoc
        self.l2_latency = l2_latency
        self.llc_size_per_core = llc_size_per_core
        self.llc_assoc = llc_assoc
        self.llc_latency = llc_latency
        self.dram_latency = dram_latency
        self.dram_cycles_per_transfer = dram_cycles_per_transfer
        self.block_bytes = block_bytes
        self.mshr_entries = mshr_entries
        self.imshr_entries = imshr_entries
        self.llc_policy = llc_policy

    def make_llc(self, num_cores=1):
        """Build the (shared) last-level cache for *num_cores* cores."""
        policy = None
        if self.llc_policy != "lru":
            from repro.memory.replacement import make_policy
            policy = make_policy(self.llc_policy)
        return Cache(
            "LLC",
            self.llc_size_per_core * num_cores,
            self.llc_assoc,
            self.block_bytes,
            policy=policy,
        )

    def make_dram(self):
        return DramModel(self.dram_latency, self.dram_cycles_per_transfer)


class MemoryHierarchy:
    """Per-core L1I/L1D/L2 backed by a (possibly shared) LLC and DRAM.

    :param config: :class:`HierarchyConfig`.
    :param llc: shared LLC cache; created privately when None.
    :param dram: shared DRAM model; created privately when None.
    :param pf_feedback: optional callable ``fn(meta, outcome)`` invoked when
        a prefetched line is first demanded (outcome "useful"/"late") or
        evicted untouched (outcome "useless"); the system points this at
        the active prefetcher's feedback hook.
    """

    def __init__(self, config=None, llc=None, dram=None, pf_feedback=None):
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.l1i = Cache("L1I", cfg.l1i_size, cfg.l1i_assoc, cfg.block_bytes)
        self.l1d = Cache("L1D", cfg.l1d_size, cfg.l1d_assoc, cfg.block_bytes)
        self.l2 = Cache("L2", cfg.l2_size, cfg.l2_assoc, cfg.block_bytes)
        self.llc = llc if llc is not None else cfg.make_llc(1)
        self.dram = dram if dram is not None else cfg.make_dram()
        self.pf_feedback = pf_feedback
        self.l1d.eviction_listeners.append(self._on_l1d_eviction)
        self._block_mask = ~(cfg.block_bytes - 1)
        # demand-miss MSHRs: bounded memory-level parallelism.  Prefetches
        # run through the engine's own request queue instead (the paper's
        # 100-entry prefetch queue), which is precisely why a prefetcher
        # can stream data faster than the demand window can expose misses.
        self._mshr = [0] * cfg.mshr_entries
        # I-side demand MSHRs, used only by the decoupled front end's
        # ifetch_demand() path; the legacy ifetch() path stays MSHR-free
        self._imshr = [0] * cfg.imshr_entries
        # tracing: channels are None when their category is disabled, so
        # the demand path pays at most one identity test per event site
        self._trace_cache = None
        self._trace_feedback = None
        self._now = 0  # last observed cycle, for eviction-time feedback

    def bind_tracer(self, tracer):
        """Cache the tracer's ``cache``/``feedback`` channels."""
        if tracer is None:
            self._trace_cache = None
            self._trace_feedback = None
        else:
            self._trace_cache = tracer.channel("cache")
            self._trace_feedback = tracer.channel("feedback")

    # ------------------------------------------------------------------
    # internal helpers

    def _on_l1d_eviction(self, addr, line):
        if line.prefetched and not line.used:
            if self.pf_feedback is not None:
                self.pf_feedback(line.meta, "useless")
            trace = self._trace_feedback
            if trace is not None:
                trace.emit("outcome", self._now, outcome="useless",
                           addr=addr)

    def _miss_latency(self, addr, now):
        """Service a demand L1D/L1I miss below L1; returns added latency."""
        cfg = self.config
        if self.l2.access(addr, now) is not None:
            self.llc.access(addr, now)  # keep shared-LLC LRU warm
            return cfg.l2_latency
        if self.llc.access(addr, now) is not None:
            self.l2.fill(addr, now)
            return cfg.l2_latency + cfg.llc_latency
        latency = (
            cfg.l2_latency
            + cfg.llc_latency
            + self.dram.access(now, demand=True)
        )
        self.llc.fill(addr, now)
        self.l2.fill(addr, now)
        return latency

    # ------------------------------------------------------------------
    # demand interface

    def load(self, addr, now, pc=None):
        """Demand load; returns ``(latency, l1_hit)``.

        A hit on an in-flight prefetched line waits for its ``ready`` cycle
        (a *late* prefetch -- partial benefit, counted separately).
        """
        cfg = self.config
        self._now = now
        line = self.l1d.access(addr, now)
        if line is not None:
            latency = cfg.l1_latency
            if line.ready > now:
                latency += line.ready - now
                self.l1d.stats.late_hits += 1
                if line.prefetched and not line.used:
                    line.used = True
                    self.l1d.stats.prefetch_useful += 1
                    if self.pf_feedback is not None:
                        self.pf_feedback(line.meta, "late")
                    trace = self._trace_feedback
                    if trace is not None:
                        trace.emit("outcome", now, outcome="late",
                                   addr=addr, wait=line.ready - now)
            elif line.prefetched and not line.used:
                line.used = True
                self.l1d.stats.prefetch_useful += 1
                if self.pf_feedback is not None:
                    self.pf_feedback(line.meta, "useful")
                trace = self._trace_feedback
                if trace is not None:
                    trace.emit("outcome", now, outcome="useful", addr=addr)
            return latency, True
        # demand miss: allocate an MSHR (wait for one if all are busy)
        mshr = self._mshr
        slot = 0
        earliest = mshr[0]
        for index in range(1, len(mshr)):
            if mshr[index] < earliest:
                earliest = mshr[index]
                slot = index
        start = now if now > earliest else earliest
        miss_latency = self._miss_latency(addr, start)
        mshr[slot] = start + miss_latency
        latency = (start - now) + cfg.l1_latency + miss_latency
        self.l1d.fill(addr, now)
        trace = self._trace_cache
        if trace is not None:
            trace.emit("fill", now, level="L1D", addr=addr,
                       latency=latency, demand=True)
        return latency, False

    def access_oracle(self, addr, now):
        """Perfect-prefetcher access: keeps cache contents warm but
        bypasses MSHR and DRAM-channel accounting.

        The Fig. 1 oracle makes every access "complete as if it were a
        first-level cache hit"; letting it also saturate the modelled
        DRAM channel would leak impossible queueing delays into the
        instruction-fetch path.
        """
        if self.l1d.access(addr, now) is None:
            if self.l2.access(addr, now) is None:
                if self.llc.access(addr, now) is None:
                    self.llc.fill(addr, now)
                self.l2.fill(addr, now)
            self.l1d.fill(addr, now)
        return self.config.l1_latency

    def store(self, addr, now, pc=None):
        """Demand store (write-allocate); returns ``(latency, l1_hit)``.

        The returned latency models occupancy, not commit stalling -- the
        timing core drains stores through a store buffer.  The written
        line is marked dirty; its eventual eviction is counted as a
        writeback (statistical: writeback bandwidth is not charged to the
        channel, see DESIGN.md non-goals).
        """
        result = self.load(addr, now, pc)
        line = self.l1d.lookup(addr)
        if line is not None:
            line.dirty = True
        return result

    def ifetch(self, addr, now):
        """Instruction fetch for one block; returns latency."""
        cfg = self.config
        line = self.l1i.access(addr, now)
        if line is not None:
            if line.ready > now:
                self.l1i.stats.late_hits += 1
                if line.prefetched and not line.used:
                    line.used = True
                    self.l1i.stats.prefetch_useful += 1
                return cfg.l1_latency + (line.ready - now)
            if line.prefetched and not line.used:
                line.used = True
                self.l1i.stats.prefetch_useful += 1
            return cfg.l1_latency
        latency = cfg.l1_latency + self._miss_latency(addr, now)
        self.l1i.fill(addr, now)
        return latency

    def ifetch_demand(self, addr, now):
        """Instruction fetch through the I-MSHRs; ``(latency, l1_hit)``.

        The decoupled front end's demand path: unlike :meth:`ifetch`
        it reports hit/miss (the predecoder only scans on fills) and
        bounds I-side memory-level parallelism with its own MSHR file,
        so a burst of FTQ-driven fills cannot overlap without limit.
        """
        cfg = self.config
        self._now = now
        line = self.l1i.access(addr, now)
        if line is not None:
            latency = cfg.l1_latency
            if line.ready > now:
                latency += line.ready - now
                self.l1i.stats.late_hits += 1
                if line.prefetched and not line.used:
                    line.used = True
                    self.l1i.stats.prefetch_useful += 1
            elif line.prefetched and not line.used:
                line.used = True
                self.l1i.stats.prefetch_useful += 1
            return latency, True
        imshr = self._imshr
        slot = 0
        earliest = imshr[0]
        for index in range(1, len(imshr)):
            if imshr[index] < earliest:
                earliest = imshr[index]
                slot = index
        start = now if now > earliest else earliest
        miss_latency = self._miss_latency(addr, start)
        imshr[slot] = start + miss_latency
        latency = (start - now) + cfg.l1_latency + miss_latency
        self.l1i.fill(addr, now)
        trace = self._trace_cache
        if trace is not None:
            trace.emit("fill", now, level="L1I", addr=addr,
                       latency=latency, demand=True)
        return latency, False

    def prefetch_instr(self, addr, now):
        """Prefetch the instruction block holding *addr* into the L1I
        (B-Fetch-I, the paper's instruction-prefetching future work)."""
        if self.l1i.contains(addr):
            return False
        cfg = self.config
        if self.l2.access(addr, now) is not None:
            latency = cfg.l2_latency
        elif self.llc.access(addr, now) is not None:
            latency = cfg.l2_latency + cfg.llc_latency
            self.l2.fill(addr, now)
        else:
            latency = (cfg.l2_latency + cfg.llc_latency
                       + self.dram.access(now, demand=False))
            self.llc.fill(addr, now)
            self.l2.fill(addr, now)
        self.l1i.fill(addr, now, prefetched=True, ready=now + latency)
        return True

    # ------------------------------------------------------------------
    # prefetch interface

    def prefetch(self, addr, now, meta=None):
        """Issue a prefetch of the block holding *addr* into L1D.

        Returns True if a fill was started, False if the block was already
        resident (duplicate).  The line occupies L1D immediately with
        ``ready`` set to the fill completion time; lower levels fill too.
        """
        if self.l1d.contains(addr):
            return False
        cfg = self.config
        self._now = now
        if self.l2.access(addr, now) is not None:
            latency = cfg.l2_latency
        elif self.llc.access(addr, now) is not None:
            latency = cfg.l2_latency + cfg.llc_latency
            self.l2.fill(addr, now)
        else:
            latency = (cfg.l2_latency + cfg.llc_latency
                       + self.dram.access(now, demand=False))
            self.llc.fill(addr, now)
            self.l2.fill(addr, now)
        self.l1d.fill(addr, now, prefetched=True, meta=meta, ready=now + latency)
        trace = self._trace_cache
        if trace is not None:
            trace.emit("fill", now, level="L1D", addr=addr,
                       latency=latency, demand=False, ready=now + latency)
        return True

    # ------------------------------------------------------------------

    def caches(self):
        """All cache levels, nearest first."""
        return [self.l1i, self.l1d, self.l2, self.llc]

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self, include_shared=True):
        """Per-level cache state, MSHRs and DRAM as a JSON-safe structure.

        :param include_shared: when False the (possibly shared) LLC and
            DRAM are skipped -- the CMP system snapshots those once at
            the top level instead of once per core.
        """
        state = {
            "l1i": self.l1i.snapshot(),
            "l1d": self.l1d.snapshot(),
            "l2": self.l2.snapshot(),
            "mshr": list(self._mshr),
            "imshr": list(self._imshr),
            "now": self._now,
        }
        if include_shared:
            state["llc"] = self.llc.snapshot()
            state["dram"] = self.dram.snapshot()
        return state

    def restore(self, state):
        """Restore hierarchy state from :meth:`snapshot` output."""
        self.l1i.restore(state["l1i"])
        self.l1d.restore(state["l1d"])
        self.l2.restore(state["l2"])
        self._mshr = [int(value) for value in state["mshr"]]
        imshr = state.get("imshr")  # absent in pre-front-end snapshots
        if imshr is not None:
            self._imshr = [int(value) for value in imshr]
        self._now = state["now"]
        if "llc" in state:
            self.llc.restore(state["llc"])
        if "dram" in state:
            self.dram.restore(state["dram"])
