"""Set-associative cache with LRU replacement and prefetch metadata.

Each line carries the per-block state the paper adds for B-Fetch's per-load
filter feedback (Section IV-B3): whether the block was brought in by a
prefetch, a 10-bit hash of the originating load PC, and a "was it used"
bit.  Lines also carry a ``ready`` cycle so in-flight (prefetched but not
yet arrived) blocks occupy cache space -- this is what lets the model
capture both prefetch *pollution* and prefetch *lateness* without a global
event queue.
"""


class Line:
    """One cache line's metadata."""

    __slots__ = ("lru", "prefetched", "meta", "used", "ready", "dirty")

    def __init__(self, lru, prefetched=False, meta=None, used=False, ready=0):
        self.lru = lru
        self.prefetched = prefetched
        self.meta = meta
        self.used = used
        self.ready = ready
        self.dirty = False


class CacheStats:
    """Demand / prefetch counters for one cache instance."""

    __slots__ = (
        "accesses",
        "hits",
        "misses",
        "late_hits",
        "prefetch_fills",
        "prefetch_useful",
        "prefetch_useless",
        "evictions",
        "writebacks",
    )

    def __init__(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.late_hits = 0
        self.prefetch_fills = 0
        self.prefetch_useful = 0
        self.prefetch_useless = 0
        self.evictions = 0
        self.writebacks = 0

    @property
    def miss_rate(self):
        return self.misses / self.accesses if self.accesses else 0.0

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class Cache:
    """A set-associative cache over 64-byte blocks.

    Addresses are byte addresses; all internal bookkeeping is per block.

    :param name: label for reports ("L1D", "LLC", ...).
    :param size_bytes: total capacity.
    :param assoc: associativity (ways).
    :param block_bytes: line size (64 in Table II).
    :param eviction_listeners: callables ``fn(block_addr, line)`` invoked
        whenever a line is evicted (used by SMS generation tracking and the
        per-load filter's useless-prefetch feedback).
    :param policy: optional :class:`~repro.memory.replacement
        .ReplacementPolicy`; None keeps the inlined LRU fast path.
    """

    def __init__(self, name, size_bytes, assoc, block_bytes=64,
                 eviction_listeners=None, policy=None):
        if size_bytes % (assoc * block_bytes):
            raise ValueError("size must be a multiple of assoc * block size")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_bytes = block_bytes
        self.block_shift = block_bytes.bit_length() - 1
        if 1 << self.block_shift != block_bytes:
            raise ValueError("block size must be a power of two")
        self.num_sets = size_bytes // (assoc * block_bytes)
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("set count must be a power of two")
        self._set_mask = self.num_sets - 1
        self.sets = [dict() for _ in range(self.num_sets)]
        self.stats = CacheStats()
        self.eviction_listeners = list(eviction_listeners or [])
        self.policy = policy
        self._tick = 0

    def _set_of(self, block):
        return self.sets[block & self._set_mask]

    def block_of(self, addr):
        """Return the block number for a byte address."""
        return addr >> self.block_shift

    def lookup(self, addr):
        """Probe without side effects; return the :class:`Line` or None."""
        block = addr >> self.block_shift
        return self._set_of(block).get(block)

    def access(self, addr, now=0):
        """Demand access.  Returns the hit :class:`Line` or None on a miss.

        Updates LRU state and hit/miss statistics.  Prefetch usefulness
        accounting (first demand touch of a prefetched line) is left to the
        hierarchy, which also owns the filter feedback.
        """
        block = addr >> self.block_shift
        cache_set = self._set_of(block)
        line = cache_set.get(block)
        self.stats.accesses += 1
        if line is None:
            self.stats.misses += 1
            return None
        if self.policy is None:
            self._tick += 1
            line.lru = self._tick
        else:
            self.policy.on_hit(self, line)
        self.stats.hits += 1
        return line

    def fill(self, addr, now=0, prefetched=False, meta=None, ready=None):
        """Insert the block holding *addr*; return the evicted line or None.

        If the block is already present the existing line is refreshed
        instead (no eviction).
        """
        block = addr >> self.block_shift
        cache_set = self._set_of(block)
        policy = self.policy
        self._tick += 1
        line = cache_set.get(block)
        if line is not None:
            if policy is None:
                line.lru = self._tick
            else:
                policy.on_hit(self, line)
            return None
        evicted = None
        if len(cache_set) >= self.assoc:
            if policy is None:
                # lambda-free LRU victim scan: min() with a key lambda
                # costs a function call per way on every eviction
                victim_block = None
                victim_lru = None
                for candidate, candidate_line in cache_set.items():
                    lru = candidate_line.lru
                    if victim_lru is None or lru < victim_lru:
                        victim_lru = lru
                        victim_block = candidate
            else:
                victim_block = policy.select_victim(self, cache_set)
            evicted = cache_set.pop(victim_block)
            stats = self.stats
            stats.evictions += 1
            if evicted.dirty:
                stats.writebacks += 1
            if evicted.prefetched and not evicted.used:
                stats.prefetch_useless += 1
            listeners = self.eviction_listeners
            if listeners:
                addr = victim_block << self.block_shift
                for listener in listeners:
                    listener(addr, evicted)
        if ready is None:
            ready = now
        line = Line(self._tick, prefetched, meta, False, ready)
        if policy is not None:
            policy.on_fill(self, line, prefetched)
        cache_set[block] = line
        if prefetched:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, addr):
        """Drop the block holding *addr* if present (no listener callbacks)."""
        block = addr >> self.block_shift
        self._set_of(block).pop(block, None)

    def contains(self, addr):
        """True if the block holding *addr* is resident (ready or not)."""
        block = addr >> self.block_shift
        return block in self._set_of(block)

    def occupancy(self):
        """Number of valid lines (for tests and pollution analyses)."""
        return sum(len(s) for s in self.sets)

    def flush(self):
        """Empty the cache (listeners are not invoked)."""
        for cache_set in self.sets:
            cache_set.clear()

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Tag/line arrays, stats and policy RNG as a JSON-safe structure.

        Set dictionaries are stored as insertion-ordered pair lists --
        iteration order breaks LRU victim ties, so order is behaviour.
        Line metas go through the shared meta codec; the ``random``
        replacement policy's RNG stream is captured too.
        """
        from repro.checkpoint.state import encode_meta, rng_to_json
        sets = []
        for cache_set in self.sets:
            sets.append([
                [block,
                 [line.lru, line.prefetched, encode_meta(line.meta),
                  line.used, line.ready, line.dirty]]
                for block, line in cache_set.items()
            ])
        state = {
            "sets": sets,
            "stats": self.stats.as_dict(),
            "tick": self._tick,
        }
        rng = getattr(self.policy, "_rng", None)
        if rng is not None:
            state["policy_rng"] = rng_to_json(rng)
        return state

    def restore(self, state):
        """Restore cache state from :meth:`snapshot` output."""
        from repro.checkpoint.state import decode_meta, rng_from_json
        sets = []
        for encoded_set in state["sets"]:
            cache_set = {}
            for block, fields in encoded_set:
                lru, prefetched, meta, used, ready, dirty = fields
                line = Line(lru, prefetched, decode_meta(meta), used, ready)
                line.dirty = dirty
                cache_set[int(block)] = line
            sets.append(cache_set)
        self.sets = sets
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
        self._tick = state["tick"]
        rng = getattr(self.policy, "_rng", None)
        if rng is not None and "policy_rng" in state:
            rng_from_json(rng, state["policy_rng"])
