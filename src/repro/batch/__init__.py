"""Struct-of-arrays batch timing kernel (ROADMAP item 1).

The scalar engines -- ``OutOfOrderCore.step_cycle`` (lockstep) and
:func:`repro.trace.engine.run_replay` (fused replay) -- remain the
*reference implementations*.  This package adds an optimised batch
kernel that steps many independent runs (sweep cells, or CMP cores) in
lockstep slices over preallocated ``array('q')`` state columns keyed by
an integer lane id:

* :mod:`repro.batch.feed`   -- per-trace SoA precomputes (fetch-block
  change flags, branch-prefix counts) layered over the PR 6 view;
* :mod:`repro.batch.state`  -- the per-lane hot-state columns;
* :mod:`repro.batch.turbo`  -- the generic (pre-passed outcomes) slice
  stepper with inlined L1 hit fast paths;
* :mod:`repro.batch.bfturbo`-- the B-Fetch slice stepper with the
  lookahead walk inlined as direct table arithmetic;
* :mod:`repro.batch.kernel` -- lane management, slicing, checkpointing;
* :mod:`repro.batch.cmp`    -- the event-heap-exact CMP batch runner;
* :mod:`repro.batch.fuzz`   -- the seeded scalar-vs-batch differential
  fuzzer (also a CLI: ``python -m repro.batch.fuzz``).

The acceptance bar is *byte-identity*: every stats payload a batch lane
produces must equal the scalar reference's, byte for byte --
``tests/test_batch_kernel.py`` and the CI ``batch-diff`` job enforce it
for all nine prefetchers, both predictors, single-core and CMP.

``REPRO_BATCH`` selects the routing in
:class:`repro.sim.runner.ExperimentRunner`:

* ``off`` (default) -- scalar engines only;
* ``auto`` -- eligible serial batches go through the kernel, anything
  ineligible silently falls back to the scalar path;
* ``on``   -- like ``auto`` but a kernel failure propagates instead of
  falling back (CI uses this to keep the batch path honest).
"""

import os

from repro.batch.kernel import BatchIneligible, BatchKernel, batchable

# observability: how many runs went through the kernel vs fell back
batch_counters = {
    "lanes": 0,      # lanes completed by the batch kernel
    "fallback": 0,   # eligible-mode runs that fell back to scalar
    "cmp": 0,        # CMP mixes completed by the batch runner
}

# why runs fell back, keyed by the batchable()/BatchIneligible reason
# string -- "decoupled front end is enabled" is the named reason the
# front-end eligibility tests assert on
fallback_reasons = {}


def reset_batch_counters():
    for key in batch_counters:
        batch_counters[key] = 0
    fallback_reasons.clear()


def record_fallback(reason):
    """Count one scalar fallback under its named *reason*."""
    batch_counters["fallback"] += 1
    fallback_reasons[reason] = fallback_reasons.get(reason, 0) + 1


def batch_mode():
    """Parse ``REPRO_BATCH`` -> ``off`` | ``auto`` | ``on``.

    Unset, empty and ``0`` mean ``off``; anything else unknown raises.
    """
    raw = os.environ.get("REPRO_BATCH", "").strip().lower()
    if raw in ("", "off", "0"):
        return "off"
    if raw in ("auto", "on"):
        return raw
    raise ValueError(
        "REPRO_BATCH must be one of off/auto/on, got %r" % (raw,)
    )


__all__ = [
    "BatchIneligible",
    "BatchKernel",
    "batchable",
    "batch_counters",
    "batch_mode",
    "fallback_reasons",
    "record_fallback",
    "reset_batch_counters",
]
