"""Seeded differential fuzzer: batch kernel vs scalar reference.

Every round draws a random scenario -- benchmark, program variant,
instruction budget, branch predictor, lane count -- and runs it twice:
once per-cell on the scalar engine (the fused replay path, itself
byte-identical to lockstep by the PR 6 guarantee) and once through the
:class:`~repro.batch.BatchKernel` with all lanes sharing one
:class:`~repro.batch.state.BatchState`.  Lane *i* uses prefetcher
``PREFETCHER_NAMES[i mod 9]``, so a 16-lane round covers every
prefetcher at least once with heterogeneous neighbours (a lane-indexing
bug cannot hide behind homogeneous lanes).  CMP rounds do the same for
a random 2-4 app mix through :func:`repro.batch.cmp.run_mix_batch`.

Comparison is on the full ``RunResult.as_dict()`` payload -- the same
stats dump the result cache persists -- compared for *equality of every
key*, i.e. byte-identity once JSON-serialised.  Divergences come back
as structured records naming the scenario and every differing key, so a
failure is immediately reproducible:

    python -m repro.batch.fuzz --seed 7 --rounds 20

The fuzzer that shipped with this PR flushed out the CMP delegation
rewind bug (see ``repro/batch/cmp.py``): a core crossing its recorded
window mid-burst resumed the scalar stepper at the burst-entry cycle,
re-simulating cycles and drifting ``fetch_cycles`` by one.  The pinned
regression lives in ``tests/test_batch_kernel.py``.
"""

import argparse
import random
import tempfile

from repro.sim.cmp import CMPSystem
from repro.sim.config import PREDICTOR_NAMES, PREFETCHER_NAMES, SystemConfig
from repro.sim.system import System
from repro.trace.store import TraceStore, clear_memos
from repro.workloads.spec import build_workload

from repro.batch import BatchKernel
from repro.batch.cmp import run_mix_batch
from repro.batch.feed import clear_feed_memo

# workloads cheap enough to fuzz many rounds of on one CPU
FUZZ_BENCHMARKS = ("mcf", "libquantum", "soplex", "astar", "hmmer",
                   "sjeng", "lbm", "milc")
LANE_COUNTS = (1, 4, 16)


def _diff_keys(scalar, batch):
    """Names of keys whose values differ between two result dicts."""
    keys = sorted(set(scalar) | set(batch))
    return [
        key for key in keys
        if scalar.get(key, "<absent>") != batch.get(key, "<absent>")
    ]


def _replay_for(workload, steps, variant, cache_dir):
    from repro.trace.replay import TraceReplaySource
    trace = TraceStore(cache_dir).get_or_record(workload, steps, variant)
    return TraceReplaySource(workload, trace)


def _single_round(rng, cache_dir):
    """One single-core round; returns a list of divergence records."""
    lanes = rng.choice(LANE_COUNTS)
    predictor = rng.choice(PREDICTOR_NAMES)
    steps = rng.randrange(1500, 4001)
    scenario = []
    for lane in range(lanes):
        benchmark = rng.choice(FUZZ_BENCHMARKS)
        variant = rng.randrange(0, 3)
        prefetcher = PREFETCHER_NAMES[lane % len(PREFETCHER_NAMES)]
        scenario.append((benchmark, variant, prefetcher))

    def build(benchmark, variant, prefetcher):
        workload = build_workload(benchmark, variant)
        config = SystemConfig(prefetcher=prefetcher,
                              branch_predictor=predictor)
        replay = _replay_for(workload, steps, variant, cache_dir)
        return System(workload, config, replay=replay)

    scalar = [
        build(*cell).run(steps).as_dict() for cell in scenario
    ]
    kernel = BatchKernel()
    systems = [build(*cell) for cell in scenario]
    for system in systems:
        kernel.add_lane(system, steps)
    kernel.run()
    batch = [result.as_dict() for result in kernel.results()]

    divergences = []
    for cell, expect, got in zip(scenario, scalar, batch):
        keys = _diff_keys(expect, got)
        if keys:
            divergences.append({
                "kind": "single",
                "benchmark": cell[0],
                "variant": cell[1],
                "prefetcher": cell[2],
                "predictor": predictor,
                "steps": steps,
                "lanes": lanes,
                "keys": keys,
            })
    return divergences


def _mix_round(rng, cache_dir):
    """One CMP round; returns a list of divergence records."""
    size = rng.choice((2, 4))
    mix = [rng.choice(FUZZ_BENCHMARKS) for _ in range(size)]
    prefetcher = rng.choice(PREFETCHER_NAMES)
    predictor = rng.choice(PREDICTOR_NAMES)
    steps = rng.randrange(1500, 4001)
    config = SystemConfig(prefetcher=prefetcher, branch_predictor=predictor)

    def build():
        workloads = [build_workload(name) for name in mix]
        replays = [
            _replay_for(workload, steps, 0, cache_dir)
            for workload in workloads
        ]
        return CMPSystem(workloads, config, replays=replays)

    scalar = [result.as_dict() for result in build().run(steps)]
    batch = [result.as_dict() for result in run_mix_batch(build(), steps)]

    divergences = []
    for name, expect, got in zip(mix, scalar, batch):
        keys = _diff_keys(expect, got)
        if keys:
            divergences.append({
                "kind": "mix",
                "mix": mix,
                "benchmark": name,
                "prefetcher": prefetcher,
                "predictor": predictor,
                "steps": steps,
                "keys": keys,
            })
    return divergences


def run_fuzz(seed, rounds, mix_every=4, cache_dir=None):
    """Run *rounds* differential rounds; returns divergence records.

    Deterministic in *seed*: the scenario stream, trace recordings and
    both engines are all seed-stable, so a reported divergence replays
    exactly.  Every ``mix_every``-th round is a CMP mix round.
    """
    rng = random.Random(seed)
    divergences = []
    if cache_dir is not None:
        for index in range(rounds):
            if mix_every and (index + 1) % mix_every == 0:
                divergences.extend(_mix_round(rng, cache_dir))
            else:
                divergences.extend(_single_round(rng, cache_dir))
        return divergences
    with tempfile.TemporaryDirectory() as tmp:
        try:
            return run_fuzz(seed, rounds, mix_every, cache_dir=tmp)
        finally:
            # the store memoises per-digest; drop entries pointing at
            # the deleted temporary directory
            clear_memos()
            clear_feed_memo()


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.batch.fuzz",
        description="differential fuzz: batch kernel vs scalar engines",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--mix-every", type=int, default=4,
                        help="every Nth round is a CMP mix (0 disables)")
    args = parser.parse_args(argv)
    divergences = run_fuzz(args.seed, args.rounds, args.mix_every)
    if divergences:
        for record in divergences:
            print("DIVERGENCE: %r" % (record,))
        print("%d divergence(s) in %d rounds (seed %d)"
              % (len(divergences), args.rounds, args.seed))
        return 1
    print("no divergence in %d rounds (seed %d)"
          % (args.rounds, args.seed))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
