"""Batch kernel: lane management, lockstep slicing, checkpointing.

A :class:`BatchKernel` owns a set of *lanes* -- independent single-core
:class:`~repro.sim.System` instances driven off recorded traces -- and
steps them in lockstep slices over one shared
:class:`~repro.batch.state.BatchState`.  Lanes are fully independent,
so the interleaving order cannot affect any simulated outcome; slicing
exists to bound how long any one lane runs between scheduling points
(progress callbacks, checkpoints) while keeping the per-slice column
load/store cost amortised over thousands of instructions.

Eligibility (:func:`batchable`) mirrors the scalar fused-replay guard
plus the batch-specific constraints; anything ineligible stays on the
scalar reference path.  A lane can be attached *warm* (a restored
checkpoint mid-trace): the outcome cursor is rebuilt from the feed's
branch-prefix column, which is what makes mid-batch checkpoint/restore
byte-identical to an uninterrupted run.
"""

from repro.core.bfetch import BFetchPrefetcher
from repro.sim.system import RunResult
from repro.trace.store import outcomes_for, view_for

from repro.batch import bfturbo
from repro.batch import turbo
from repro.batch.feed import feed_for
from repro.batch.state import BatchState

# default instructions retired per lane per slice
DEFAULT_SLICE = 8192


class BatchIneligible(ValueError):
    """The system/budget cannot be served by the batch kernel."""


def batchable(system, budget):
    """Return None when the kernel can serve this run, else the reason."""
    if system.core.frontend is not None:
        # the SoA columns transcribe the frontend-free fetch loop; FTQ
        # run-ahead state has no lane representation
        return "decoupled front end is enabled"
    if system.replay is None:
        return "no trace replay source"
    machine = system.machine
    if machine._machine is not None:
        return "replay source already in live continuation"
    if budget > len(machine.trace.records):
        return "budget exceeds the recorded trace window"
    if system.core._trace_branch is not None:
        return "branch tracing is active"
    hierarchy = system.hierarchy
    if hierarchy.l1d.policy is not None or hierarchy.l1i.policy is not None:
        return "L1 replacement policy overrides the inlined LRU"
    prefetcher = system.prefetcher
    if hasattr(prefetcher, "attach") and not isinstance(
            prefetcher, BFetchPrefetcher):
        return "unknown predictor-attached prefetcher"
    return None


class _Lane(object):
    __slots__ = ("system", "budget", "feed", "outcomes", "stepper")

    def __init__(self, system, budget, feed, outcomes, stepper):
        self.system = system
        self.budget = budget
        self.feed = feed
        self.outcomes = outcomes
        self.stepper = stepper


class BatchKernel(object):
    """Steps many independent runs in lockstep slices over SoA columns.

    Usage::

        kernel = BatchKernel()
        kernel.add_lane(system_a, budget)
        kernel.add_lane(system_b, budget)
        kernel.run()                    # all lanes to completion
        results = kernel.results()      # RunResult per lane, in order

    ``run(max_slices=n)`` stops early after *n* lockstep rounds;
    :meth:`writeback` then syncs every lane's columns into its scalar
    ``System`` so ``system.snapshot()`` produces a normal checkpoint.
    A restored system re-attaches warm via :meth:`add_lane`.
    """

    def __init__(self, slice_instructions=DEFAULT_SLICE):
        if slice_instructions < 1:
            raise ValueError("slice_instructions must be positive")
        self.slice = slice_instructions
        self.lanes = []
        self.state = None

    def add_lane(self, system, budget):
        """Attach one system; returns its integer lane id.

        :raises BatchIneligible: when :func:`batchable` rejects it.
        """
        if self.state is not None:
            raise BatchIneligible("kernel already sealed by run()")
        reason = batchable(system, budget)
        if reason is not None:
            raise BatchIneligible(reason)
        source = system.machine
        view = view_for(system.workload, source.trace)
        feed = feed_for(source.trace, view, system.core._fetch_shift)
        if hasattr(system.prefetcher, "attach"):
            outcomes = None
            stepper = bfturbo.run_slice
        else:
            outcomes = outcomes_for(source.trace, system.config, view)
            stepper = turbo.run_slice
        self.lanes.append(_Lane(system, budget, feed, outcomes, stepper))
        return len(self.lanes) - 1

    def _seal(self):
        rob_entries = max(
            lane.system.config.core.rob_entries for lane in self.lanes
        )
        width = max(lane.system.config.core.width for lane in self.lanes)
        self.state = BatchState(len(self.lanes), rob_entries, width)
        for index, lane in enumerate(self.lanes):
            core = lane.system.core
            source = lane.system.machine
            bcursor = lane.feed.branch_prefix[source.pos]
            core.start(lane.budget)
            self.state.load_lane(index, core, source, lane.budget, bcursor)

    def run(self, max_slices=None):
        """Step every unfinished lane in lockstep slices.

        Returns True once every lane has completed its budget.
        """
        if not self.lanes:
            return True
        if self.state is None:
            self._seal()
        state = self.state
        done = state.done
        slice_size = self.slice
        rounds = 0
        while True:
            remaining = 0
            for index, lane in enumerate(self.lanes):
                if done[index]:
                    continue
                stop = min(state.retired[index] + slice_size, lane.budget)
                finished = lane.stepper(
                    index, state, lane.feed, lane.outcomes, lane.system,
                    stop,
                )
                if not finished:
                    remaining += 1
            rounds += 1
            if remaining == 0:
                self.writeback()
                return True
            if max_slices is not None and rounds >= max_slices:
                self.writeback()
                return False

    def writeback(self):
        """Sync every lane's columns back into its scalar ``System``.

        After this, each ``system`` is indistinguishable from one the
        scalar engine ran to the same point: snapshots, stats payloads
        and further scalar stepping all behave identically.
        """
        if self.state is None:
            return
        for index, lane in enumerate(self.lanes):
            self.state.store_lane(index, lane.system.core,
                                  lane.system.machine)

    def results(self):
        """Per-lane :class:`~repro.sim.system.RunResult`, in lane order.

        Only meaningful once :meth:`run` returned True; flushes lane
        columns back into the systems first.
        """
        self.writeback()
        out = []
        for lane in self.lanes:
            system = lane.system
            if system.tracer is not None:
                system.tracer.flush()
            out.append(RunResult.from_core(
                system.core, system.workload.name,
                system.config.prefetcher,
            ))
        return out
