"""Batch execution for CMP mixes: view-fed cores under the event heap.

A CMP run cannot be stepped in lockstep slices the way independent
sweep lanes can: the cores share the LLC and DRAM, and the event heap
in :meth:`~repro.sim.cmp.CMPSystem.run` totally orders their accesses
to that shared state.  What the batch tier contributes here is the same
two ingredients as the single-core kernel -- the SoA trace feed
(instruction tuples plus the precomputed fetch-block-change column)
and the inlined L1 plain-hit fast paths -- wrapped in a per-core
*burst* stepper.

The burst stepper exploits a property of the heap loop itself: after
core *i* is popped at ``(now, i)``, it will be popped again immediately
as long as its returned ``next_time`` still orders ahead of the heap's
head entry.  Stepping those cycles inline (without the push/pop and
re-hydration) is observationally identical to the scalar loop, because
the comparison used to keep bursting is exactly the heap's tuple
ordering.  Cores always run with *live* predictors (the scalar mix
path never uses the outcome pre-pass), so every prefetcher -- B-Fetch
included -- takes the same code path.

Once a core's view cursor gets within one fetch group of the end of
its recorded window it permanently delegates to the scalar
``core.step_cycle`` (first syncing ``machine.seek(pos)``), which
transparently live-continues past the trace exactly as the scalar mix
does; the keep-running overshoot therefore stays byte-identical.
"""

import heapq

from repro.sim.cmp import _KEEP_RUNNING_FACTOR
from repro.sim.system import RunResult
from repro.trace.store import view_for

from repro.batch.feed import feed_for
from repro.batch.kernel import BatchIneligible, batchable


def batchable_mix(cmp_system):
    """Return None when the batch mix runner can serve this CMP, else
    the first ineligibility reason found."""
    for index, system in enumerate(cmp_system.systems):
        source = system.machine
        reason = batchable(
            system,
            len(source.trace.records) if system.replay is not None else 0,
        )
        if reason is None and source.pos != 0:
            reason = "replay source is not at the start of its trace"
        if reason is not None:
            return "core %d: %s" % (index, reason)
    return None


class _CoreLane(object):
    """One CMP core's burst stepper over its view feed."""

    __slots__ = ("index", "system", "feed", "delegated")

    def __init__(self, index, system, feed):
        self.index = index
        self.system = system
        self.feed = feed
        self.delegated = False

    def burst(self, now, bound, target):
        """Step this core from *now* while it stays ahead of *bound*.

        *bound* is the heap's head entry (or None when this is the only
        live core); bursting continues while ``(next_time, index)``
        orders before it, which replicates the heap's pop order exactly.
        *target* is the finish watermark while this core's finish cycle
        is still unrecorded, else None.  Returns ``(next_time,
        finished_at)``; ``finished_at`` is set at most once, and the
        burst returns immediately when it is (so the caller can account
        for it before anything else runs).
        """
        core = self.system.core
        index = self.index
        if not self.delegated:
            next_time, finished_at, now = self._view_burst(
                now, bound, target)
            if next_time is not None:
                return next_time, finished_at
            # fell off the recorded window: resume on the scalar stepper
            # at the cycle the view burst reached (NOT the burst-entry
            # time -- rewinding would re-run already-simulated cycles;
            # see tests/test_batch_kernel.py::test_cmp_delegation_resume)
        step = core.step_cycle
        while True:
            next_time = step(now)
            if target is not None and core.retired >= target:
                return next_time, max(now, 1)
            if bound is not None and not (
                next_time < bound[0]
                or (next_time == bound[0] and index < bound[1])
            ):
                return next_time, None
            now = next_time

    # ------------------------------------------------------------------

    def _view_burst(self, now, bound, target):
        """View-fed cycles until the burst bound, finish, or delegation.

        Returns ``(next_time, finished_at, now)``; a ``next_time`` of
        None means the core reached the delegation point at cycle
        ``now`` (state flushed, ``self.delegated`` set) and the caller
        must continue on the scalar stepper *from that cycle*."""
        system = self.system
        core = system.core
        machine = system.machine
        cfg = core.config
        hierarchy = core.hierarchy
        predictor = core.predictor
        confidence = core.confidence
        btb = core.btb
        prefetcher = core.prefetcher
        index = self.index

        feed = self.feed
        view = feed.view
        bchg = feed.bchg
        view_len = len(view)

        width = cfg.width
        rob_cap = cfg.rob_entries
        redirect_penalty = cfg.redirect_penalty
        alu_latency = cfg.alu_latency
        mul_latency = cfg.mul_latency
        store_latency = cfg.store_latency
        drain_rate = cfg.prefetch_drain_rate
        fetch_shift = core._fetch_shift
        l1_latency = hierarchy.config.l1_latency
        h_load = hierarchy.load
        h_store = hierarchy.store
        h_ifetch = hierarchy.ifetch
        h_oracle = hierarchy.access_oracle
        is_perfect = prefetcher is not None and prefetcher.is_perfect
        pf_drain = prefetcher.drain if prefetcher is not None else None
        pf_queue = prefetcher.queue if prefetcher is not None else None
        on_commit = core._pf_on_commit
        on_branch_decode = core._pf_on_branch_decode
        on_load = None
        on_store = None
        if prefetcher is not None and not is_perfect:
            from repro.cpu.ooo import _noop_hook
            from repro.prefetchers.base import Prefetcher as _Base
            hook = prefetcher.on_load
            on_load = (
                None if _noop_hook(_Base.on_load, hook) else hook
            )
            hook = prefetcher.on_store
            on_store = (
                None if _noop_hook(_Base.on_store, hook) else hook
            )
        predict = predictor.predict
        predictor_update = predictor.update
        confidence_update = confidence.update
        btb_lookup = btb.lookup
        btb_update = btb.update

        l1d = hierarchy.l1d
        l1i = hierarchy.l1i
        d_sets = l1d.sets
        d_set_mask = l1d._set_mask
        d_shift = l1d.block_shift
        d_stats = l1d.stats
        i_sets = l1i.sets
        i_set_mask = l1i._set_mask
        i_shift = l1i.block_shift
        i_stats = l1i.stats

        regs = machine.regs

        # core state -> locals; the reg_ready and rob *lists* are shared
        # objects mutated in place, so only the plain ints flush back
        reg_ready = core.reg_ready
        rob = core.rob
        rhead = core._rob_head
        pos = machine.pos
        retired = core.retired
        budget = core.budget
        fetch_stall_until = core.fetch_stall_until
        fetch_block = core._fetch_block
        cond_branches = core.cond_branches
        branches = core.branches
        mispredicts = core.mispredicts
        fetch_cycles = core.fetch_cycles
        rob_full_stalls = core.rob_full_stalls
        flush_stall_cycles = core.flush_stall_cycles
        fbh = core.fetch_branch_hist
        finished_at = None
        next_time = None

        while True:
            if pos + width > view_len:
                # within one fetch group of the window edge: hand the
                # core to the scalar stepper, which live-continues
                next_time = None
                break

            # ---- one transcribed step_cycle at `now`
            limit = rhead + width
            rob_len = len(rob)
            while rhead < rob_len and rhead < limit and rob[rhead] <= now:
                rhead += 1
                retired += 1
            if rhead > 4096:
                del rob[:rhead]
                rhead = 0
            if retired >= budget:
                core.done = True
                next_time = now + 1
                break

            if pf_drain is not None and len(pf_queue):
                pf_drain(hierarchy, now, drain_rate)

            fetched = 0
            branches_in_group = 0
            if now >= fetch_stall_until:
                in_flight = len(rob) - rhead
                dispatched_total = retired + in_flight
                while (
                    fetched < width
                    and in_flight < rob_cap
                    and dispatched_total < budget
                ):
                    (vkind, instr, pc, ra, rb, rd, ea, taken, value, wreg,
                     taken_target, next_pc) = view[pos]
                    changed = bchg[pos]
                    pos += 1
                    if wreg >= 0:
                        regs[wreg] = value
                    if changed:
                        fetch_block = pc >> fetch_shift
                        iblock = pc >> i_shift
                        line = i_sets[iblock & i_set_mask].get(iblock)
                        if (
                            line is not None
                            and line.ready <= now
                            and (not line.prefetched or line.used)
                        ):
                            i_stats.accesses += 1
                            i_stats.hits += 1
                            tick = l1i._tick + 1
                            l1i._tick = tick
                            line.lru = tick
                        else:
                            ifetch_latency = h_ifetch(pc, now)
                            if ifetch_latency > l1_latency:
                                fetch_stall_until = now + ifetch_latency
                    fetched += 1
                    in_flight += 1
                    dispatched_total += 1

                    ready = now + 1
                    if ra >= 0 and reg_ready[ra] > ready:
                        ready = reg_ready[ra]
                    if rb >= 0 and reg_ready[rb] > ready:
                        ready = reg_ready[rb]
                    group_ends = False
                    if vkind == 0:  # load
                        if is_perfect:
                            complete = ready + h_oracle(ea, ready)
                        else:
                            dblock = ea >> d_shift
                            line = d_sets[dblock & d_set_mask].get(dblock)
                            if (
                                line is not None
                                and line.ready <= ready
                                and (not line.prefetched or line.used)
                            ):
                                hierarchy._now = ready
                                d_stats.accesses += 1
                                d_stats.hits += 1
                                tick = l1d._tick + 1
                                l1d._tick = tick
                                line.lru = tick
                                complete = ready + l1_latency
                                if on_load is not None:
                                    on_load(pc, ea, True, now)
                            else:
                                latency, hit = h_load(ea, ready)
                                if on_load is not None:
                                    on_load(pc, ea, hit, now)
                                complete = ready + latency
                        reg_ready[rd] = complete
                    elif vkind == 1:  # store
                        if is_perfect:
                            h_oracle(ea, ready)
                        else:
                            dblock = ea >> d_shift
                            line = d_sets[dblock & d_set_mask].get(dblock)
                            if (
                                line is not None
                                and line.ready <= ready
                                and (not line.prefetched or line.used)
                            ):
                                hierarchy._now = ready
                                d_stats.accesses += 1
                                d_stats.hits += 1
                                tick = l1d._tick + 1
                                l1d._tick = tick
                                line.lru = tick
                                line.dirty = True
                            else:
                                h_store(ea, ready)
                            if on_store is not None:
                                on_store(pc, ea, True, now)
                        complete = ready + store_latency
                    elif vkind == 2:  # conditional branch
                        complete = ready + alu_latency
                        history = predictor.history
                        predicted = predict(pc)
                        correct = predicted == taken
                        cond_branches += 1
                        if not correct:
                            mispredicts += 1
                        confidence_update(pc, history, correct, taken)
                        predictor_update(pc, taken)
                        if on_branch_decode is not None:
                            on_branch_decode(pc, predicted, taken_target,
                                             now)
                        if not correct:
                            fetch_stall_until = complete + redirect_penalty
                            group_ends = True
                        else:
                            group_ends = predicted
                        branches += 1
                    elif vkind == 3:  # indirect jump
                        complete = ready + alu_latency
                        predicted_target = btb_lookup(pc)
                        btb_update(pc, next_pc)
                        correct = predicted_target == next_pc
                        confidence_update(pc, predictor.history, correct,
                                          True)
                        if on_branch_decode is not None:
                            on_branch_decode(pc, True, predicted_target,
                                             now)
                        if not correct:
                            mispredicts += 1
                            fetch_stall_until = complete + redirect_penalty
                        group_ends = True
                        branches += 1
                    elif vkind == 4:  # direct unconditional branch
                        complete = ready + alu_latency
                        confidence_update(pc, predictor.history, True, True)
                        if on_branch_decode is not None:
                            on_branch_decode(pc, True, taken_target, now)
                        group_ends = True
                        branches += 1
                    else:  # mul / alu / nop / halt
                        if vkind == 5:
                            complete = ready + mul_latency
                        else:
                            complete = ready + alu_latency
                        if rd >= 0:
                            reg_ready[rd] = complete
                    rob.append(complete)
                    if on_commit is not None:
                        on_commit(instr, ea, taken, next_pc, regs, complete)

                    if 2 <= vkind <= 4:
                        branches_in_group += 1
                    if group_ends:
                        break
            if fetched:
                fetch_cycles += 1
                if branches_in_group:
                    bucket = (
                        branches_in_group if branches_in_group < 4 else 4
                    )
                    fbh[bucket] += 1
                next_time = now + 1
            else:
                if now < fetch_stall_until:
                    flush_stall_cycles += 1
                elif len(rob) - rhead >= rob_cap:
                    rob_full_stalls += 1
                candidates = []
                if rhead < len(rob):
                    candidates.append(rob[rhead])
                if now < fetch_stall_until:
                    candidates.append(fetch_stall_until)
                if prefetcher is not None and len(pf_queue):
                    next_time = now + 1
                elif not candidates:
                    next_time = now + 1
                else:
                    next_event = min(candidates)
                    next_time = now + 1 if next_event <= now else next_event
            # ---- end transcribed cycle

            if target is not None and retired >= target:
                finished_at = max(now, 1)
                break
            if bound is not None and not (
                next_time < bound[0]
                or (next_time == bound[0] and index < bound[1])
            ):
                break
            now = next_time

        # locals -> core; the shared lists were mutated in place
        core._rob_head = rhead
        core.retired = retired
        core.fetch_stall_until = fetch_stall_until
        core._fetch_block = fetch_block
        core.cond_branches = cond_branches
        core.branches = branches
        core.mispredicts = mispredicts
        core.fetch_cycles = fetch_cycles
        core.rob_full_stalls = rob_full_stalls
        core.flush_stall_cycles = flush_stall_cycles
        machine.seek(pos)
        if next_time is None:
            self.delegated = True
        return next_time, finished_at, now


def run_mix_batch(cmp_system, instructions_per_app):
    """Batch-tier equivalent of :meth:`CMPSystem.run` (no collaborators).

    Transcribes the unchunked event-heap loop with burst-stepped,
    view-fed cores; returns the same per-core
    :class:`~repro.sim.RunResult` list, byte-identical to the scalar
    path.

    :raises BatchIneligible: when any core fails :func:`batchable_mix`.
    """
    reason = batchable_mix(cmp_system)
    if reason is not None:
        raise BatchIneligible(reason)
    target = instructions_per_app
    systems = cmp_system.systems
    num_cores = cmp_system.num_cores
    lanes = []
    for index, system in enumerate(systems):
        source = system.machine
        view = view_for(system.workload, source.trace)
        feed = feed_for(source.trace, view, system.core._fetch_shift)
        lanes.append(_CoreLane(index, system, feed))

    finish_cycle = [None] * num_cores
    remaining = num_cores
    heap = []
    for index, system in enumerate(systems):
        system.core.start(target * _KEEP_RUNNING_FACTOR)
        heapq.heappush(heap, (0, index))

    while remaining:
        now, index = heapq.heappop(heap)
        bound = heap[0] if heap else None
        watch = target if finish_cycle[index] is None else None
        next_time, finished_at = lanes[index].burst(now, bound, watch)
        if finished_at is not None:
            finish_cycle[index] = finished_at
            remaining -= 1
            if remaining == 0:
                break
        heapq.heappush(heap, (next_time, index))

    results = []
    for index, system in enumerate(systems):
        core = system.core
        saved_cycle, saved_retired = core.cycle, core.retired
        core.cycle = finish_cycle[index]
        core.retired = min(core.retired, target)
        result = RunResult.from_core(
            core, system.workload.name, cmp_system.config.prefetcher
        )
        result.data["total_retired"] = saved_retired
        core.cycle, core.retired = saved_cycle, saved_retired
        results.append(result)
    return results
