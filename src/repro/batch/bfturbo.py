"""B-Fetch batch slice stepper (live-predictor mode).

Placeholder: delegates to the generic live-mode stepper; the inlined
lookahead walk lands next.
"""

from repro.batch.turbo import run_slice  # noqa: F401
