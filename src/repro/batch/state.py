"""Per-lane hot-state columns for the batch kernel.

All the mutable core-side scalars a slice stepper touches live here as
``array('q')`` columns indexed by lane id (the AoS->SoA move of ROADMAP
item 1): the slice steppers load a lane's column entries into locals on
entry and store them back on exit, so between slices the whole batch's
hot state is a handful of flat int64 buffers.

The reorder buffer is a power-of-two ring per lane inside one shared
``rob`` column (stride ``rob_ring``), addressed with monotonically
increasing head/tail cursors masked into the ring -- equivalent to the
scalar core's list + periodic ``del rob[:head]`` compaction, without
the compaction.

Architectural register *values* deliberately stay in each lane's
``machine.regs`` list: replay sources alias that list into live
continuation machines and prefetcher hooks receive it by reference, so
moving it would change observable aliasing.
"""

from array import array

# column names holding one int64 per lane
_SCALAR_COLUMNS = (
    "cyc",        # core.cycle
    "pos",        # machine.pos (view cursor)
    "bcur",       # cursor into the pre-computed branch outcomes
    "retired",    # core.retired
    "budget",     # instruction budget for the lane
    "fstall",     # core.fetch_stall_until
    "fblock",     # core._fetch_block (-1 on a fresh core)
    "rhead",      # monotonic ROB head (masked into the ring)
    "rtail",      # monotonic ROB tail
    "done",       # 1 once retired >= budget
    "cond",       # core.cond_branches
    "branch",     # core.branches
    "misp",       # core.mispredicts
    "fcyc",       # core.fetch_cycles
    "robfull",    # core.rob_full_stalls
    "flush",      # core.flush_stall_cycles
)

REG_STRIDE = 32    # architectural registers per lane (reg_ready)
HIST_STRIDE = 5    # fetch_branch_hist buckets per lane


def _ring_size(rob_entries, width):
    """Smallest power of two holding a full ROB plus one fetch group."""
    need = rob_entries + width + 2
    size = 1
    while size < need:
        size <<= 1
    return size


class BatchState(object):
    """Preallocated SoA columns for *lanes* lanes."""

    __slots__ = _SCALAR_COLUMNS + (
        "lanes", "reg_ready", "fbh", "rob", "rob_ring", "rob_mask",
    )

    def __init__(self, lanes, rob_entries, width):
        self.lanes = lanes
        zeros = bytes(8 * lanes)
        for name in _SCALAR_COLUMNS:
            setattr(self, name, array("q", zeros))
        self.reg_ready = array("q", bytes(8 * lanes * REG_STRIDE))
        self.fbh = array("q", bytes(8 * lanes * HIST_STRIDE))
        self.rob_ring = _ring_size(rob_entries, width)
        self.rob_mask = self.rob_ring - 1
        self.rob = array("q", bytes(8 * lanes * self.rob_ring))

    # ------------------------------------------------------------------
    # lane attach / writeback (columns <-> scalar core objects)

    def load_lane(self, lane, core, machine, budget, bcursor):
        """Copy a (possibly warm) scalar core's state into lane columns."""
        self.cyc[lane] = core.cycle
        self.pos[lane] = machine.pos
        self.bcur[lane] = bcursor
        self.retired[lane] = core.retired
        self.budget[lane] = budget
        self.fstall[lane] = core.fetch_stall_until
        self.fblock[lane] = core._fetch_block
        self.done[lane] = 1 if core.retired >= budget else 0
        self.cond[lane] = core.cond_branches
        self.branch[lane] = core.branches
        self.misp[lane] = core.mispredicts
        self.fcyc[lane] = core.fetch_cycles
        self.robfull[lane] = core.rob_full_stalls
        self.flush[lane] = core.flush_stall_cycles
        base = lane * REG_STRIDE
        self.reg_ready[base:base + REG_STRIDE] = array("q", core.reg_ready)
        base = lane * HIST_STRIDE
        self.fbh[base:base + HIST_STRIDE] = array("q", core.fetch_branch_hist)
        live = core.rob[core._rob_head:]
        if len(live) > self.rob_mask:
            raise ValueError("live ROB window exceeds the batch ring")
        self.rhead[lane] = 0
        self.rtail[lane] = len(live)
        rob = self.rob
        rbase = lane * self.rob_ring
        for offset, complete in enumerate(live):
            rob[rbase + offset] = complete

    def store_lane(self, lane, core, machine):
        """Write lane columns back into the scalar core/replay source."""
        core.cycle = self.cyc[lane]
        core.retired = self.retired[lane]
        core.fetch_stall_until = self.fstall[lane]
        core._fetch_block = self.fblock[lane]
        core.done = bool(self.done[lane])
        core.cond_branches = self.cond[lane]
        core.branches = self.branch[lane]
        core.mispredicts = self.misp[lane]
        core.fetch_cycles = self.fcyc[lane]
        core.rob_full_stalls = self.robfull[lane]
        core.flush_stall_cycles = self.flush[lane]
        base = lane * REG_STRIDE
        core.reg_ready = list(self.reg_ready[base:base + REG_STRIDE])
        base = lane * HIST_STRIDE
        core.fetch_branch_hist = list(self.fbh[base:base + HIST_STRIDE])
        rob = self.rob
        rbase = lane * self.rob_ring
        mask = self.rob_mask
        core.rob = [
            rob[rbase + (cursor & mask)]
            for cursor in range(self.rhead[lane], self.rtail[lane])
        ]
        core._rob_head = 0
        machine.seek(self.pos[lane])
