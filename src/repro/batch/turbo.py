"""Generic batch slice stepper: ``run_replay`` over SoA lane columns.

:func:`run_slice` is an exact transcription of
:func:`repro.trace.engine.run_replay` (itself a transcription of the
lockstep ``OutOfOrderCore`` hot loop) with three changes, none of which
alters any simulated outcome:

* live core state comes from / returns to a lane's
  :class:`~repro.batch.state.BatchState` columns instead of core
  attributes, and the ROB is the batch ring;
* the loop exits at a *slice boundary* (``retired >= stop_retired``)
  checked at the top of the cycle loop -- re-entering resumes at the
  retire phase of the next cycle, exactly where an uninterrupted run
  would be;
* plain L1D/L1I hits are served inline (the ``access`` bookkeeping is
  transcribed here), skipping two call frames on the hottest memory
  path.  Anything unusual -- a miss, a late hit, the first demand touch
  of a prefetched line -- falls through to the real hierarchy call.
  The inline transcription requires the default ``policy is None`` LRU
  (an eligibility condition checked by the kernel).

Like ``run_replay`` the stepper has an outcome-driven mode (branch
responses pre-computed per trace x predictor config, valid whenever
nothing observes live predictor state) and a live mode (B-Fetch reads
the predictor during walks); the live mode trains the predictor,
confidence estimator and BTB in exactly the scalar order.
"""

from array import array

from repro.cpu.ooo import _noop_hook
from repro.prefetchers.base import Prefetcher as _BasePrefetcher

from repro.batch.state import HIST_STRIDE, REG_STRIDE


def run_slice(lane, st, feed, outcomes, system, stop_retired):
    """Advance one lane until ``retired >= stop_retired`` or completion.

    Returns True once the lane has retired its full budget (the final
    ``now`` is then in the ``cyc`` column and the ``done`` flag is set).
    """
    core = system.core
    machine = system.machine
    cfg = core.config
    hierarchy = core.hierarchy
    predictor = core.predictor
    confidence = core.confidence
    btb = core.btb
    prefetcher = core.prefetcher

    view = feed.view
    bchg = feed.bchg

    # hoisted configuration / bound methods (matches run_replay)
    width = cfg.width
    rob_cap = cfg.rob_entries
    redirect_penalty = cfg.redirect_penalty
    alu_latency = cfg.alu_latency
    mul_latency = cfg.mul_latency
    store_latency = cfg.store_latency
    drain_rate = cfg.prefetch_drain_rate
    fetch_shift = core._fetch_shift
    l1_latency = hierarchy.config.l1_latency
    h_load = hierarchy.load
    h_store = hierarchy.store
    h_ifetch = hierarchy.ifetch
    h_oracle = hierarchy.access_oracle
    is_perfect = prefetcher is not None and prefetcher.is_perfect
    pf_drain = prefetcher.drain if prefetcher is not None else None
    pf_queue = prefetcher.queue if prefetcher is not None else None
    on_commit = core._pf_on_commit
    on_branch_decode = core._pf_on_branch_decode
    on_load = None
    on_store = None
    if prefetcher is not None and not is_perfect:
        hook = prefetcher.on_load
        on_load = None if _noop_hook(_BasePrefetcher.on_load, hook) else hook
        hook = prefetcher.on_store
        on_store = (
            None if _noop_hook(_BasePrefetcher.on_store, hook) else hook
        )
    predict = predictor.predict
    predictor_update = predictor.update
    confidence_update = confidence.update
    btb_lookup = btb.lookup
    btb_update = btb.update

    # inlined L1 fast-path bindings (eligibility guarantees policy=None)
    l1d = hierarchy.l1d
    l1i = hierarchy.l1i
    d_sets = l1d.sets
    d_set_mask = l1d._set_mask
    d_shift = l1d.block_shift
    d_stats = l1d.stats
    i_sets = l1i.sets
    i_set_mask = l1i._set_mask
    i_shift = l1i.block_shift
    i_stats = l1i.stats

    regs = machine.regs

    # lane columns -> locals; the register/ROB/histogram columns are
    # hydrated into plain lists for the slice (list indexing is the
    # fastest access CPython offers) and flushed back on exit
    rr = lane * REG_STRIDE
    reg_ready = st.reg_ready[rr:rr + REG_STRIDE].tolist()
    fb = lane * HIST_STRIDE
    fbh = st.fbh[fb:fb + HIST_STRIDE].tolist()
    ring = st.rob_ring
    rbase = lane * ring
    rmask = st.rob_mask
    rob = st.rob[rbase:rbase + ring].tolist()
    rhead = st.rhead[lane]
    rtail = st.rtail[lane]
    now = st.cyc[lane]
    pos = st.pos[lane]
    bcursor = st.bcur[lane]
    retired = st.retired[lane]
    budget = st.budget[lane]
    fetch_stall_until = st.fstall[lane]
    fetch_block = st.fblock[lane]
    cond_branches = st.cond[lane]
    branches = st.branch[lane]
    mispredicts = st.misp[lane]
    fetch_cycles = st.fcyc[lane]
    rob_full_stalls = st.robfull[lane]
    flush_stall_cycles = st.flush[lane]
    finished = False

    while True:
        if retired >= stop_retired:
            break
        # retire (in order, up to width)
        limit = rhead + width
        while (
            rhead < rtail
            and rhead < limit
            and rob[rhead & rmask] <= now
        ):
            rhead += 1
            retired += 1
        if retired >= budget:
            now += 1
            finished = True
            break

        # drain queued prefetches into the hierarchy
        if pf_drain is not None and len(pf_queue):
            pf_drain(hierarchy, now, drain_rate)

        # fetch / dispatch
        fetched = 0
        branches_in_group = 0
        if now >= fetch_stall_until:
            in_flight = rtail - rhead
            dispatched_total = retired + in_flight
            while (
                fetched < width
                and in_flight < rob_cap
                and dispatched_total < budget
            ):
                (vkind, instr, pc, ra, rb, rd, ea, taken, value, wreg,
                 taken_target, next_pc) = view[pos]
                changed = bchg[pos]
                pos += 1
                if wreg >= 0:
                    regs[wreg] = value
                if changed:
                    fetch_block = pc >> fetch_shift
                    # ---- inlined L1I plain-hit fast path
                    iblock = pc >> i_shift
                    line = i_sets[iblock & i_set_mask].get(iblock)
                    if (
                        line is not None
                        and line.ready <= now
                        and (not line.prefetched or line.used)
                    ):
                        i_stats.accesses += 1
                        i_stats.hits += 1
                        tick = l1i._tick + 1
                        l1i._tick = tick
                        line.lru = tick
                    else:
                        ifetch_latency = h_ifetch(pc, now)
                        if ifetch_latency > l1_latency:
                            fetch_stall_until = now + ifetch_latency
                fetched += 1
                in_flight += 1
                dispatched_total += 1

                # ---- dispatch (transcribed from run_replay)
                ready = now + 1
                if ra >= 0 and reg_ready[ra] > ready:
                    ready = reg_ready[ra]
                if rb >= 0 and reg_ready[rb] > ready:
                    ready = reg_ready[rb]
                group_ends = False
                if vkind == 0:  # load
                    if is_perfect:
                        complete = ready + h_oracle(ea, ready)
                    else:
                        # ---- inlined L1D plain-hit fast path
                        dblock = ea >> d_shift
                        line = d_sets[dblock & d_set_mask].get(dblock)
                        if (
                            line is not None
                            and line.ready <= ready
                            and (not line.prefetched or line.used)
                        ):
                            hierarchy._now = ready
                            d_stats.accesses += 1
                            d_stats.hits += 1
                            tick = l1d._tick + 1
                            l1d._tick = tick
                            line.lru = tick
                            complete = ready + l1_latency
                            if on_load is not None:
                                on_load(pc, ea, True, now)
                        else:
                            latency, hit = h_load(ea, ready)
                            if on_load is not None:
                                on_load(pc, ea, hit, now)
                            complete = ready + latency
                    reg_ready[rd] = complete
                elif vkind == 1:  # store
                    if is_perfect:
                        h_oracle(ea, ready)
                    else:
                        # ---- inlined L1D plain-hit fast path (+ dirty)
                        dblock = ea >> d_shift
                        line = d_sets[dblock & d_set_mask].get(dblock)
                        if (
                            line is not None
                            and line.ready <= ready
                            and (not line.prefetched or line.used)
                        ):
                            hierarchy._now = ready
                            d_stats.accesses += 1
                            d_stats.hits += 1
                            tick = l1d._tick + 1
                            l1d._tick = tick
                            line.lru = tick
                            line.dirty = True
                        else:
                            h_store(ea, ready)
                        if on_store is not None:
                            on_store(pc, ea, True, now)
                    complete = ready + store_latency
                elif vkind == 2:  # conditional branch
                    complete = ready + alu_latency
                    if outcomes is None:
                        history = predictor.history
                        predicted = predict(pc)
                        correct = predicted == taken
                    else:
                        predicted, correct = outcomes[bcursor]
                        bcursor += 1
                    cond_branches += 1
                    if not correct:
                        mispredicts += 1
                    if outcomes is None:
                        confidence_update(pc, history, correct, taken)
                        predictor_update(pc, taken)
                    if on_branch_decode is not None:
                        on_branch_decode(pc, predicted, taken_target, now)
                    if not correct:
                        fetch_stall_until = complete + redirect_penalty
                        group_ends = True
                    else:
                        group_ends = predicted
                    branches += 1
                elif vkind == 3:  # indirect jump
                    complete = ready + alu_latency
                    if outcomes is None:
                        predicted_target = btb_lookup(pc)
                        btb_update(pc, next_pc)
                        correct = predicted_target == next_pc
                        confidence_update(pc, predictor.history, correct,
                                          True)
                    else:
                        predicted_target, correct = outcomes[bcursor]
                        bcursor += 1
                    if on_branch_decode is not None:
                        on_branch_decode(pc, True, predicted_target, now)
                    if not correct:
                        mispredicts += 1
                        fetch_stall_until = complete + redirect_penalty
                    group_ends = True
                    branches += 1
                elif vkind == 4:  # direct unconditional branch
                    complete = ready + alu_latency
                    if outcomes is None:
                        confidence_update(pc, predictor.history, True, True)
                    if on_branch_decode is not None:
                        on_branch_decode(pc, True, taken_target, now)
                    group_ends = True
                    branches += 1
                else:  # mul / alu / nop / halt
                    if vkind == 5:
                        complete = ready + mul_latency
                    else:
                        complete = ready + alu_latency
                    if rd >= 0:
                        reg_ready[rd] = complete
                rob[rtail & rmask] = complete
                rtail += 1
                if on_commit is not None:
                    on_commit(instr, ea, taken, next_pc, regs, complete)
                # ---- end dispatch

                if 2 <= vkind <= 4:
                    branches_in_group += 1
                if group_ends:
                    break
        if fetched:
            fetch_cycles += 1
            if branches_in_group:
                bucket = branches_in_group if branches_in_group < 4 else 4
                fbh[bucket] += 1
            now += 1
            continue

        # idle: jump to the next event
        if now < fetch_stall_until:
            flush_stall_cycles += 1
        elif rtail - rhead >= rob_cap:
            rob_full_stalls += 1
        candidates = []
        if rhead < rtail:
            candidates.append(rob[rhead & rmask])
        if now < fetch_stall_until:
            candidates.append(fetch_stall_until)
        if prefetcher is not None and len(pf_queue):
            now += 1  # keep draining at full rate
            continue
        if not candidates:
            now += 1
            continue
        next_event = min(candidates)
        now = now + 1 if next_event <= now else next_event

    # locals -> lane columns
    st.reg_ready[rr:rr + REG_STRIDE] = array("q", reg_ready)
    st.fbh[fb:fb + HIST_STRIDE] = array("q", fbh)
    st.rob[rbase:rbase + ring] = array("q", rob)
    st.rhead[lane] = rhead
    st.rtail[lane] = rtail
    st.cyc[lane] = now
    st.pos[lane] = pos
    st.bcur[lane] = bcursor
    st.retired[lane] = retired
    st.fstall[lane] = fetch_stall_until
    st.fblock[lane] = fetch_block
    st.cond[lane] = cond_branches
    st.branch[lane] = branches
    st.misp[lane] = mispredicts
    st.fcyc[lane] = fetch_cycles
    st.robfull[lane] = rob_full_stalls
    st.flush[lane] = flush_stall_cycles
    if finished:
        st.done[lane] = 1
    return finished
