"""Per-trace SoA precomputes feeding the batch kernel.

The PR 6 view (:func:`repro.trace.engine.build_view`) stays the
instruction feed -- one tuple unpack per dynamic instruction is already
the cheapest access pattern pure Python offers.  What the batch kernel
adds on top are two position-indexed columns derived once per
(trace, fetch-geometry) pair and shared by every lane over that trace:

* ``bchg`` -- fetch-block-change flags.  ``bchg[p]`` is 1 iff
  instruction *p* starts a new fetch block relative to *p - 1* (always
  1 at position 0: a fresh core's ``_fetch_block`` is ``-1``).  This is
  valid across slice cuts because the core's ``_fetch_block`` is, by
  construction, always the block of the last processed instruction --
  it replaces a shift + compare per instruction with one byte load.
* ``branch_prefix`` -- prefix counts of outcome-consuming branches
  (view kinds ``V_COND``/``V_JR``), so a lane attached mid-trace (a
  restored checkpoint) can reconstruct its cursor into the
  pre-computed outcome list in O(1).

Both builds use numpy when it is importable and fall back to plain
Python loops otherwise -- the kernel itself never needs numpy.
"""

from array import array
from collections import OrderedDict

from repro.trace.engine import V_COND, V_JR

try:  # optional acceleration for the one-off column builds
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via _build_* directly
    _np = None

_FEED_MEMO = OrderedDict()  # (trace identity, fetch_shift) -> BatchFeed
_FEED_MEMO_CAP = 8


class BatchFeed(object):
    """A view plus its position-indexed SoA columns."""

    __slots__ = ("view", "bchg", "branch_prefix")

    def __init__(self, view, bchg, branch_prefix):
        self.view = view
        self.bchg = bchg
        self.branch_prefix = branch_prefix

    def __len__(self):
        return len(self.view)


def _build_bchg(view, fetch_shift):
    """Fetch-block-change flags as ``bytes`` (fastest int indexing)."""
    count = len(view)
    if count == 0:
        return b""
    if _np is not None:
        blocks = _np.fromiter(
            (entry[2] for entry in view), _np.int64, count=count
        ) >> fetch_shift
        flags = _np.empty(count, _np.uint8)
        flags[0] = 1
        flags[1:] = blocks[1:] != blocks[:-1]
        return flags.tobytes()
    flags = bytearray(count)
    flags[0] = 1
    previous = view[0][2] >> fetch_shift
    for pos in range(1, count):
        block = view[pos][2] >> fetch_shift
        if block != previous:
            flags[pos] = 1
            previous = block
    return bytes(flags)


def _build_branch_prefix(view):
    """``branch_prefix[p]`` = outcome-consuming branches in ``view[:p]``."""
    count = len(view)
    if _np is not None:
        kinds = _np.fromiter(
            (entry[0] for entry in view), _np.int64, count=count
        ) if count else _np.empty(0, _np.int64)
        flags = (kinds == V_COND) | (kinds == V_JR)
        prefix = _np.zeros(count + 1, _np.int64)
        prefix[1:] = _np.cumsum(flags)
        return array("q", prefix.tolist())
    prefix = array("q", bytes(8 * (count + 1)))
    total = 0
    for pos in range(count):
        kind = view[pos][0]
        if kind == V_COND or kind == V_JR:
            total += 1
        prefix[pos + 1] = total
    return prefix


def build_feed(view, fetch_shift):
    """Build a :class:`BatchFeed` (unmemoised; prefer :func:`feed_for`)."""
    return BatchFeed(
        view, _build_bchg(view, fetch_shift), _build_branch_prefix(view)
    )


def feed_for(trace, view, fetch_shift):
    """Memoised :class:`BatchFeed` for a (trace, fetch-geometry) pair.

    Keyed on the trace digest (falling back to object identity for
    unpersisted traces), mirroring the view/outcome memos in
    :mod:`repro.trace.store`.
    """
    key = (trace.digest or id(trace), fetch_shift)
    feed = _FEED_MEMO.get(key)
    if feed is not None:
        _FEED_MEMO.move_to_end(key)
        return feed
    feed = build_feed(view, fetch_shift)
    _FEED_MEMO[key] = feed
    while len(_FEED_MEMO) > _FEED_MEMO_CAP:
        _FEED_MEMO.popitem(last=False)
    return feed


def clear_feed_memo():
    _FEED_MEMO.clear()
