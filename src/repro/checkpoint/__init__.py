"""Checkpoint/restore for individual simulations.

PR 2 made *sweeps* crash-safe at task granularity (the result cache is
the checkpoint, but only at run boundaries); this package makes the
*inside* of a run crash-safe.  Every stateful component exposes
``snapshot()``/``restore(state)`` returning/accepting JSON-safe
structures; :meth:`repro.sim.System.snapshot` and
:meth:`repro.sim.CMPSystem.snapshot` compose them; a
:class:`Checkpointer` persists the composed snapshot every N cycles in
the same versioned integrity envelope as the result cache.  Because the
simulator is fully deterministic, a restore is *byte-identical* replay:
killing a run with ``kill -9`` and resuming produces exactly the same
:class:`~repro.sim.RunResult` payload as the uninterrupted run.

Pieces:

* :mod:`~repro.checkpoint.manager` -- :class:`Checkpointer` (save /
  load / clear / due), ``REPRO_CKPT_DIR``/``REPRO_CKPT_EVERY``
  plumbing, ``.tmp-*`` garbage collection and the SIGINT/SIGTERM
  :class:`signal_guard`;
* :mod:`~repro.checkpoint.state` -- JSON codecs for the awkward bits
  (prefetch-meta tuples and the ``IFETCH_META`` identity sentinel,
  order-preserving dict pair lists, ``random.Random`` streams).
"""

from repro.checkpoint.manager import (
    CHECKPOINT_VERSION,
    DEFAULT_EVERY,
    CheckpointError,
    Checkpointer,
    InterruptFlag,
    from_env,
    gc_stale_tmp,
    signal_guard,
)
from repro.checkpoint.state import (
    decode_meta,
    encode_meta,
    int_dict,
    pairs,
    rng_from_json,
    rng_to_json,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_EVERY",
    "CheckpointError",
    "Checkpointer",
    "InterruptFlag",
    "from_env",
    "gc_stale_tmp",
    "signal_guard",
    "decode_meta",
    "encode_meta",
    "int_dict",
    "pairs",
    "rng_from_json",
    "rng_to_json",
]
