"""JSON codecs for simulator snapshot state.

Component ``snapshot()`` methods return plain JSON-safe structures
(ints, strings, lists, ``None``); these helpers cover the three cases
that are *not* naturally JSON-safe:

* **Prefetch metadata** travels as opaque Python values (``None``,
  ints, nested tuples, and the :data:`~repro.prefetchers.base.IFETCH_META`
  identity sentinel) through queues and cache lines.
  :func:`encode_meta`/:func:`decode_meta` round-trip them, *preserving
  the sentinel's identity* -- the drain loop distinguishes
  instruction-side requests with ``meta is IFETCH_META``, so a restored
  queue must hand back the very same singleton.
* **Dicts with non-string keys** (register maps, cache sets, history
  tables).  JSON objects force string keys and components depend on
  insertion order (LRU tie-breaks iterate the set dict), so dicts are
  stored as order-preserving ``[key, value]`` pair lists via
  :func:`pairs`/:func:`int_dict`.
* **``random.Random`` streams** (the ``random`` replacement policy).
  :func:`rng_to_json`/:func:`rng_from_json` round-trip
  ``getstate()``/``setstate()`` tuples.
"""

_TAG = "__t__"


def encode_meta(meta):
    """Encode an opaque prefetch meta value into JSON-safe form.

    Handles ``None``, bools, ints, floats, strings, lists and
    (recursively) tuples; the ``IFETCH_META`` singleton gets a dedicated
    tag so :func:`decode_meta` can restore its identity.
    """
    from repro.prefetchers.base import IFETCH_META
    if meta is IFETCH_META:
        return {_TAG: "ifetch"}
    if meta is None or isinstance(meta, (bool, int, float, str)):
        return meta
    if isinstance(meta, tuple):
        return {_TAG: "tuple", "v": [encode_meta(item) for item in meta]}
    if isinstance(meta, list):
        return {_TAG: "list", "v": [encode_meta(item) for item in meta]}
    if isinstance(meta, dict):
        return {_TAG: "dict",
                "v": [[encode_meta(k), encode_meta(v)]
                      for k, v in meta.items()]}
    raise TypeError(
        "cannot snapshot prefetch meta of type %s: %r"
        % (type(meta).__name__, meta)
    )


def decode_meta(obj):
    """Inverse of :func:`encode_meta` (restores ``IFETCH_META`` identity)."""
    from repro.prefetchers.base import IFETCH_META
    if isinstance(obj, dict):
        tag = obj.get(_TAG)
        if tag == "ifetch":
            return IFETCH_META
        if tag == "tuple":
            return tuple(decode_meta(item) for item in obj["v"])
        if tag == "list":
            return [decode_meta(item) for item in obj["v"]]
        if tag == "dict":
            return {decode_meta(k): decode_meta(v) for k, v in obj["v"]}
        raise ValueError("unknown meta tag %r" % (tag,))
    return obj


def pairs(mapping):
    """Dict -> order-preserving ``[[key, value], ...]`` pair list.

    Keys/values must already be JSON-safe; insertion order is preserved
    so order-sensitive structures (OrderedDict windows, cache sets whose
    iteration order breaks LRU ties) restore byte-identically.
    """
    return [[key, value] for key, value in mapping.items()]


def int_dict(pair_list):
    """Pair list -> dict with the keys coerced back to ``int``.

    JSON round-trips through string keys when a dict is serialised
    directly; storing pair lists sidesteps that, but defensive coercion
    keeps hand-edited checkpoints working too.
    """
    return {int(key): value for key, value in pair_list}


def rng_to_json(rng):
    """``random.Random`` -> JSON-safe state (``getstate()`` tuple)."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def rng_from_json(rng, state):
    """Restore a ``random.Random`` from :func:`rng_to_json` output."""
    version, internal, gauss_next = state
    rng.setstate((version, tuple(internal), gauss_next))
