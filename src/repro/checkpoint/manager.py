"""Checkpoint persistence, stale-temp garbage collection and signal guard.

A :class:`Checkpointer` owns one on-disk checkpoint file for one run.
Checkpoints use the same versioned integrity envelope as the result
cache (:mod:`repro.resilience.envelope`) and the same atomic writer
(:func:`repro.obs.io.atomic_write_text`), so a SIGKILL mid-write leaves
either the previous complete checkpoint or a ``.tmp-*`` dropping --
never a torn file -- and a corrupt/stale checkpoint is *discarded* (the
run restarts from cycle 0) rather than trusted.

Environment knobs (inherited by pool workers, which is what makes
``run_many`` resume mid-run):

* ``REPRO_CKPT_DIR``   -- directory for per-run checkpoint files; unset
  disables in-run checkpointing entirely (the zero-overhead default);
* ``REPRO_CKPT_EVERY`` -- checkpoint interval in cycles (default
  :data:`DEFAULT_EVERY`); must be a positive integer.
"""

import json
import os
import signal
import threading
import time

from repro.obs.io import atomic_write_text
from repro.resilience.envelope import read_envelope_text, wrap_envelope
from repro.resilience.errors import CacheCorruption

#: on-disk checkpoint format version (bump on incompatible layout change)
CHECKPOINT_VERSION = 1

#: default checkpoint interval in cycles when REPRO_CKPT_EVERY is unset
DEFAULT_EVERY = 50_000

#: age (seconds) past which an orphaned ``.tmp-*`` file is garbage
STALE_TMP_SECONDS = 3600.0


class CheckpointError(RuntimeError):
    """A checkpoint cannot be used (config mismatch, bad interval...)."""


def gc_stale_tmp(directory, max_age_seconds=STALE_TMP_SECONDS):
    """Remove orphaned ``.tmp-*`` files under *directory* (recursively).

    :func:`~repro.obs.io.atomic_write_text` cleans up after itself on
    exceptions, but a SIGKILL (or power loss) between ``mkstemp`` and
    ``os.replace`` strands the temp file.  Called whenever a cache or
    checkpoint directory is opened, so crashed runs don't accumulate
    junk.  Files younger than *max_age_seconds* are left alone -- they
    may belong to a concurrent live writer.

    :returns: number of files removed.
    """
    removed = 0
    cutoff = time.time() - max_age_seconds
    try:
        walker = os.walk(directory)
    except OSError:
        return removed
    for root, _dirs, files in walker:
        for name in files:
            if not name.startswith(".tmp-"):
                continue
            path = os.path.join(root, name)
            try:
                if os.path.getmtime(path) <= cutoff:
                    os.unlink(path)
                    removed += 1
            except OSError:
                continue  # raced with the writer's replace/cleanup
    return removed


class Checkpointer:
    """Owns one checkpoint file; saves/loads enveloped snapshots.

    :param path: checkpoint file location (``.ckpt.json`` by convention).
    :param every: checkpoint interval in simulated cycles (> 0).

    The stored payload is ``{"cycle": <cycle>, "state": <snapshot>}``
    wrapped in a versioned integrity envelope.
    """

    def __init__(self, path, every=DEFAULT_EVERY):
        if not isinstance(every, int) or every <= 0:
            raise CheckpointError(
                "checkpoint interval must be a positive integer number "
                "of cycles, got %r" % (every,)
            )
        self.path = path
        self.every = every
        self.saves = 0
        self.loads = 0
        self.last_cycle = None
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        gc_stale_tmp(directory)

    def due(self, cycle):
        """True when *cycle* is at least ``every`` past the last save."""
        anchor = self.last_cycle if self.last_cycle is not None else 0
        return cycle - anchor >= self.every

    def save(self, state, cycle):
        """Persist *state* (a JSON-safe snapshot) atomically."""
        payload = {"cycle": cycle, "state": state}
        text = json.dumps(wrap_envelope(payload, CHECKPOINT_VERSION),
                          sort_keys=True)
        atomic_write_text(self.path, text)
        self.saves += 1
        self.last_cycle = cycle

    def load(self):
        """Return ``(state, cycle)`` from disk, or ``None``.

        A missing file means "no checkpoint" (fresh run); a corrupt or
        version-mismatched file is deleted and likewise treated as
        absent -- a checkpoint must never be *approximately* trusted.
        """
        try:
            with open(self.path) as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            payload = read_envelope_text(text, CHECKPOINT_VERSION,
                                         path=self.path)
        except CacheCorruption:
            self.clear()
            return None
        if not isinstance(payload, dict) or "state" not in payload:
            self.clear()
            return None
        self.loads += 1
        cycle = payload.get("cycle", 0)
        self.last_cycle = cycle
        return payload["state"], cycle

    def clear(self):
        """Delete the checkpoint file (after a successful run)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass


def from_env(run_key, env=None):
    """Build a :class:`Checkpointer` from ``REPRO_CKPT_DIR``/``_EVERY``.

    :param run_key: filesystem-safe identity for this run (e.g. the
        cache digest); distinct runs get distinct checkpoint files.
    :returns: a :class:`Checkpointer`, or ``None`` when
        ``REPRO_CKPT_DIR`` is unset (checkpointing disabled).
    :raises CheckpointError: a malformed ``REPRO_CKPT_EVERY``.
    """
    environ = env if env is not None else os.environ
    directory = environ.get("REPRO_CKPT_DIR")
    if not directory:
        return None
    raw = environ.get("REPRO_CKPT_EVERY")
    every = DEFAULT_EVERY
    if raw:
        try:
            every = int(raw)
        except ValueError:
            raise CheckpointError(
                "REPRO_CKPT_EVERY must be a positive integer number of "
                "cycles, got %r" % (raw,)
            )
    path = os.path.join(directory, "%s.ckpt.json" % (run_key,))
    return Checkpointer(path, every=every)


class InterruptFlag:
    """Latches the first SIGINT/SIGTERM seen inside a signal guard."""

    __slots__ = ("signum",)

    def __init__(self):
        self.signum = None

    def __bool__(self):
        return self.signum is not None

    def raise_pending(self):
        """Re-raise the deferred signal (after state has been saved).

        SIGINT becomes :class:`KeyboardInterrupt` (matching Python's
        default) and SIGTERM a nonzero :class:`SystemExit` with the
        conventional ``128 + signum`` status.
        """
        if self.signum == signal.SIGINT:
            raise KeyboardInterrupt()
        if self.signum is not None:
            raise SystemExit(128 + self.signum)


class signal_guard:
    """Context manager deferring SIGINT/SIGTERM to a checkpoint boundary.

    Inside the guard the signals only latch an :class:`InterruptFlag`;
    the simulation loop polls the flag at chunk boundaries, flushes its
    trace buffers, writes a final checkpoint and *then* calls
    :meth:`InterruptFlag.raise_pending` to exit nonzero.  Outside the
    main thread (pool workers already run simulations in the main thread
    of their process, but belt and braces) the guard is a no-op and the
    default handlers stay in place.
    """

    def __init__(self):
        self.flag = InterruptFlag()
        self._previous = {}

    def __enter__(self):
        if threading.current_thread() is not threading.main_thread():
            return self.flag

        def _latch(signum, _frame):
            self.flag.signum = signum

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, _latch)
            except (ValueError, OSError):  # non-main thread race, etc.
                pass
        return self.flag

    def __exit__(self, exc_type, exc, tb):
        for signum, handler in self._previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        return False
