"""Bounded priority admission queue with backpressure.

Admission control is the server's first line of defence: past a
configurable *high-water mark* of queued jobs, :meth:`AdmissionQueue.push`
raises :class:`QueueFull` and the server answers the submission with a
typed ``busy`` error (the JSON-line protocol's analogue of HTTP 429)
instead of buffering without bound.  Clients are expected to back off
and retry; the error carries the current depth so they can be smart
about it.

Ordering: a binary heap on ``(-priority, seq)`` -- higher ``priority``
submissions pop first, ties broken FIFO by admission sequence so equal
-priority traffic is served fairly.  Cancellation is *lazy*: cancelling
a queued job flips its state and decrements the live count immediately
(freeing admission capacity), while the heap entry is skipped when it
eventually surfaces -- O(1) cancel, no heap surgery.

Deadline shedding follows the same lazy discipline: a queued job whose
``deadline_ms`` expired is detected when it surfaces at :meth:`pop`
and handed to the queue's ``on_shed`` callback instead of a worker --
expired work is never executed, and the server answers waiting clients
with a typed ``deadline-exceeded`` error.  No timers scan the queue;
an expired job that never surfaces costs nothing.

The queue is asyncio-native: :meth:`pop` awaits the next live job and
is woken by pushes; :meth:`close` wakes all waiters with ``None`` so
the dispatcher can exit during drain.
"""

import asyncio
import heapq
import itertools


class QueueFull(Exception):
    """Admission rejected: the queue is at its high-water mark."""

    def __init__(self, depth, high_water):
        super().__init__(
            "admission queue is full (%d queued >= high-water %d)"
            % (depth, high_water)
        )
        self.depth = depth
        self.high_water = high_water


class AdmissionQueue(object):
    """Bounded priority queue of :class:`~repro.serve.jobs.Job`.

    :param high_water: maximum number of *live* queued jobs; pushes at
        or beyond this depth raise :class:`QueueFull`.
    :param on_shed: callback ``on_shed(job)`` invoked when a queued
        job surfaces at pop time with its deadline already expired (the
        job is dropped from the queue, never returned to the dispatcher).
    """

    def __init__(self, high_water=64, on_shed=None):
        if high_water < 1:
            raise ValueError("high_water must be >= 1, got %r"
                             % (high_water,))
        self.high_water = high_water
        self.on_shed = on_shed
        self._heap = []                  # (-priority, seq, job)
        self._seq = itertools.count()
        self._live = 0                   # queued jobs not yet popped/cancelled
        self._woken = asyncio.Event()
        self._closed = False

    def __len__(self):
        """Live queued depth (excludes lazily-cancelled entries)."""
        return self._live

    @property
    def closed(self):
        return self._closed

    def push(self, job):
        """Admit *job*; raises :class:`QueueFull` past the high-water mark."""
        if self._live >= self.high_water:
            raise QueueFull(self._live, self.high_water)
        heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
        self._live += 1
        self._woken.set()
        return self._live

    def discard(self, job):
        """Account for a queued job cancelled out-of-band (lazy removal).

        The heap entry stays put and is skipped at pop time; the live
        count (which gates admission) drops immediately.
        """
        if self._live > 0:
            self._live -= 1

    async def pop(self):
        """Await and return the next live job; ``None`` once closed+empty."""
        while True:
            while self._heap:
                _neg_priority, _seq, job = heapq.heappop(self._heap)
                if job.state != "queued" or job.cancel_requested:
                    continue  # lazily-cancelled entry
                self._live -= 1
                if job.deadline_expired:
                    # lazy deadline shed: expired work never runs
                    if self.on_shed is not None:
                        self.on_shed(job)
                    continue
                return job
            if self._closed:
                return None
            self._woken.clear()
            await self._woken.wait()

    def close(self):
        """Stop the queue: wake every waiter so ``pop`` can return None."""
        self._closed = True
        self._woken.set()

    def snapshot(self):
        """Queued job ids in pop order (diagnostics/``jobs`` listing)."""
        entries = sorted(self._heap)
        return [job.id for _p, _s, job in entries if job.state == "queued"]
