"""Worker liveness: heartbeat accounting for the fleet supervisor.

Each worker subprocess emits a ``{"type": "beat"}`` frame every
``beat_interval`` seconds from a dedicated thread (so a busy simulation
keeps beating).  The parent folds every received beat into a
:class:`WorkerHealth`; when ``max_missed`` consecutive intervals pass
without one, :meth:`WorkerHealth.dead` flips and the supervisor
declares the worker lost -- it is killed, its in-flight job is
requeued, and a replacement is spawned under deterministic backoff.

The check is purely interval arithmetic over a monotonic clock: no
timers, no wall-clock, injectable for tests.
"""

import time

#: lifecycle states a fleet worker moves through (supervisor's view)
WORKER_STATES = ("starting", "idle", "busy", "dead", "stopped")

DEFAULT_BEAT_INTERVAL = 1.0
DEFAULT_MAX_MISSED = 4


class WorkerHealth(object):
    """Missed-heartbeat detector for one worker.

    :param beat_interval: seconds between expected beats.
    :param max_missed: consecutive missed intervals before
        :meth:`dead` reports True.
    :param clock: monotonic time source (injectable for tests).
    """

    __slots__ = ("beat_interval", "max_missed", "_clock", "_last", "beats")

    def __init__(self, beat_interval=DEFAULT_BEAT_INTERVAL,
                 max_missed=DEFAULT_MAX_MISSED, clock=time.monotonic):
        if beat_interval <= 0:
            raise ValueError("beat_interval must be positive, got %r"
                             % (beat_interval,))
        if max_missed < 1:
            raise ValueError("max_missed must be >= 1, got %r"
                             % (max_missed,))
        self.beat_interval = beat_interval
        self.max_missed = max_missed
        self._clock = clock
        self._last = clock()
        self.beats = 0

    def beat(self):
        """Record one received heartbeat."""
        self.beats += 1
        self._last = self._clock()

    def reset(self):
        """Restart the grace window (called on spawn / job hand-off)."""
        self._last = self._clock()

    def missed(self):
        """Whole beat intervals elapsed since the last beat."""
        elapsed = self._clock() - self._last
        if elapsed <= 0:
            return 0
        return int(elapsed / self.beat_interval)

    def dead(self):
        """True once ``max_missed`` consecutive intervals passed silent."""
        return self.missed() >= self.max_missed
