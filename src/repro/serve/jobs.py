"""Job records and the deduplicating job table.

A :class:`Job` is one admitted unit of work: a validated list of
:class:`~repro.sim.RunRequest` tuples (a "single" submission carries
one, a "sweep" carries many) plus lifecycle state, timing, progress,
the eventual result or structured error, and the list of live event
subscriptions.

The :class:`JobTable` is the server's source of truth.  It owns two
indexes:

* ``id -> Job`` for status/result/cancel/stream lookups;
* ``key -> Job`` for **request coalescing**: a job's *key* is derived
  from the cache digests of its requests
  (:meth:`~repro.sim.ExperimentRunner.request_digest`), so a submission
  identical to one already queued or running attaches to the existing
  job instead of computing again.  Terminal jobs leave the key index
  (a re-submission after completion is admitted normally and served
  from the result cache in one probe pass).

Terminal jobs are retained (bounded by ``retain``) so clients can fetch
results after the fact; the oldest terminal jobs are pruned first.
"""

import itertools
import time
from collections import OrderedDict

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


class Job(object):
    """One admitted submission moving through the server."""

    __slots__ = (
        "id", "key", "kind", "spec", "requests", "priority", "state",
        "created", "started", "finished", "result", "error", "done_count",
        "done_total", "clients", "cancel_requested", "report",
        "subscribers", "_done_event", "events_seq", "deadline",
    )

    def __init__(self, job_id, key, kind, spec, requests, priority=0,
                 deadline_ms=None):
        self.id = job_id
        self.key = key
        self.kind = kind
        self.spec = spec
        self.requests = requests
        self.priority = priority
        self.state = "queued"
        self.created = time.monotonic()
        # absolute monotonic deadline; None = no deadline.  Checked
        # lazily at pop/dispatch/requeue boundaries (never by a timer).
        self.deadline = (self.created + deadline_ms / 1000.0
                         if deadline_ms is not None else None)
        self.started = None
        self.finished = None
        self.result = None
        self.error = None
        self.done_count = 0
        self.done_total = len(requests)
        self.clients = 1           # submissions coalesced onto this job
        self.cancel_requested = False
        self.report = None         # BatchReport dict once executed
        self.subscribers = []      # asyncio.Queue per streaming client
        self._done_event = None    # created lazily on the loop
        self.events_seq = itertools.count()

    # -- lifecycle -----------------------------------------------------

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    @property
    def deadline_expired(self):
        """True when a deadline is set and has passed (monotonic)."""
        return self.deadline is not None and time.monotonic() > self.deadline

    @property
    def latency(self):
        """Submit-to-finish wall seconds (None until terminal)."""
        if self.finished is None:
            return None
        return self.finished - self.created

    def done_event(self, loop=None):
        """The job's completion event (created lazily on first wait)."""
        if self._done_event is None:
            import asyncio

            self._done_event = asyncio.Event()
            if self.terminal:
                self._done_event.set()
        return self._done_event

    def mark_terminal(self, state):
        self.state = state
        self.finished = time.monotonic()
        if self._done_event is not None:
            self._done_event.set()

    # -- wire views ----------------------------------------------------

    def snapshot(self):
        """Status summary for ``status`` / ``jobs`` replies."""
        now = time.monotonic()
        snap = {
            "job_id": self.id,
            "state": self.state,
            "kind": self.kind,
            "priority": self.priority,
            "runs": self.done_total,
            "done": self.done_count,
            "clients": self.clients,
            "cancel_requested": self.cancel_requested,
            "age_seconds": round(now - self.created, 6),
        }
        if self.deadline is not None:
            snap["deadline_remaining"] = round(self.deadline - now, 6)
        if self.started is not None:
            reference = self.finished if self.finished is not None else now
            snap["run_seconds"] = round(reference - self.started, 6)
        if self.latency is not None:
            snap["latency_seconds"] = round(self.latency, 6)
        if self.error is not None:
            snap["error"] = self.error
        if self.report is not None:
            snap["batch"] = {
                key: self.report[key]
                for key in ("hits", "misses", "retries", "crashes",
                            "timeouts", "skipped")
                if key in self.report
            }
        return snap


class JobTable(object):
    """Id and coalescing-key indexes over every known job.

    :param retain: terminal jobs kept for late ``result`` fetches;
        older ones are evicted in finish order.
    """

    def __init__(self, retain=256):
        self.retain = retain
        self._jobs = OrderedDict()   # id -> Job (insertion order)
        self._active = {}            # key -> queued/running Job
        self._terminal = OrderedDict()  # id -> Job (finish order)
        self._seq = itertools.count(1)

    def __len__(self):
        return len(self._jobs)

    def new_job(self, key, kind, spec, requests, priority=0,
                deadline_ms=None):
        """Create, index and return a fresh queued job."""
        job_id = "j%06d" % next(self._seq)
        job = Job(job_id, key, kind, spec, requests, priority,
                  deadline_ms=deadline_ms)
        self._jobs[job_id] = job
        self._active[key] = job
        return job

    def get(self, job_id):
        return self._jobs.get(job_id)

    def find_active(self, key):
        """The queued/running job for *key*, or None (coalescing probe)."""
        job = self._active.get(key)
        if job is not None and job.terminal:
            # defensive: finish() should have removed it already
            self._active.pop(key, None)
            return None
        return job

    def forget(self, job):
        """Remove a job that was never admitted (queue-full rollback)."""
        if self._active.get(job.key) is job:
            del self._active[job.key]
        self._jobs.pop(job.id, None)

    def active_jobs(self):
        """List of queued/running jobs (stable snapshot)."""
        return list(self._active.values())

    def finish(self, job):
        """Move *job* out of the active index and prune old terminals."""
        current = self._active.get(job.key)
        if current is job:
            del self._active[job.key]
        self._terminal[job.id] = job
        while len(self._terminal) > self.retain:
            old_id, _old = self._terminal.popitem(last=False)
            self._jobs.pop(old_id, None)

    def active_count(self):
        return len(self._active)

    def snapshots(self, limit=None, newest_first=True):
        """Job summaries for the ``jobs`` listing."""
        jobs = list(self._jobs.values())
        if newest_first:
            jobs.reverse()
        if limit is not None:
            jobs = jobs[:limit]
        return [job.snapshot() for job in jobs]
