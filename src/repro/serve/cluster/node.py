"""Remote worker node: dials the coordinator, executes shards, survives
partitions.

``repro node --connect host:port`` runs one :class:`NodeAgent` -- the
multi-host sibling of the PR 7 fleet worker (:mod:`repro.serve
.supervisor`).  The frame grammar is identical (``job`` in;
``beat``/``progress``/``result``/``job-error`` out) but the transport
is a TCP connection to the coordinator's serve port, opened with a
``node-hello`` frame, instead of an inherited stdio pipe.  On the
coordinator side the connection is adopted by a
:class:`~repro.serve.cluster.remote.NodeHandle`, which gives the node
the exact requeue-on-death semantics local workers already have.

Beyond the worker protocol a node owns:

* a :class:`~repro.serve.cluster.cas.CachePeerServer` exporting its
  local result cache to the rest of the cluster, and a
  :class:`~repro.serve.cluster.cas.PeerSet` (installed on its runner)
  for read-through fetch / replicated writes -- the peer list arrives
  from the coordinator in ``node-welcome`` / ``peer-update`` frames;
* **partition tolerance**: when the coordinator connection drops
  (network loss, coordinator restart, or the ``host-partition`` chaos
  verb), the node *finishes its in-flight shard* into the local cache
  -- every completed task is a checkpoint -- then reconnects under
  deterministic backoff and replays the digests it completed while
  dark (the ``completed`` list in its fresh ``node-hello``), so no
  work is ever lost to a partition;
* the ``host-kill`` chaos verb: a deterministic ``os._exit`` at a
  task boundary, exercising node-loss detection and shard requeue.

Heartbeats carry the node's cache-peer counters, so ``repro jobs
--workers`` can show per-node peer hit rates without extra round
trips.
"""

import argparse
import os
import socket
import sys
import threading
import time

from repro.resilience import FailurePolicy, SimulationError, backoff_delay
from repro.resilience.faults import CRASH_EXIT_CODE, get_fault_plan
from repro.serve import protocol
from repro.serve.cluster.cas import (
    CachePeerServer,
    DEFAULT_REPLICAS,
    PeerSet,
)
from repro.serve.health import DEFAULT_BEAT_INTERVAL
from repro.serve.protocol import ProtocolError

#: reconnect attempts before the node gives up and exits
DEFAULT_RECONNECT_ATTEMPTS = 20

#: deterministic backoff schedule for coordinator reconnects
RECONNECT_POLICY = FailurePolicy(retries=0, backoff_base=0.1,
                                 backoff_factor=2.0, backoff_max=5.0,
                                 jitter=0.5, seed=0)


class _DeadlineHit(Exception):
    """Raised inside the node's batch when the shard's deadline passes."""


class NodeAgent(object):
    """One remote worker node process (blocking, single-shard)."""

    def __init__(self, connect, cache_dir, node_id=None,
                 beat_interval=DEFAULT_BEAT_INTERVAL, batch_jobs=1,
                 peer_host="127.0.0.1", peer_port=0,
                 replicas=DEFAULT_REPLICAS, max_entries=None,
                 reconnect_attempts=DEFAULT_RECONNECT_ATTEMPTS):
        from repro.sim.runner import ExperimentRunner

        self.connect_addr = connect
        self.cache_dir = cache_dir
        self.node_id = node_id or "%s-%d" % (socket.gethostname(),
                                             os.getpid())
        self.beat_interval = beat_interval
        self.batch_jobs = batch_jobs
        self.reconnect_attempts = reconnect_attempts
        self.peers = PeerSet(replicas=replicas)
        self.peer_server = CachePeerServer(
            cache_dir, host=peer_host, port=peer_port,
            max_entries=max_entries,
        )
        self.runner = ExperimentRunner(cache_dir=cache_dir,
                                       cache_peers=self.peers)
        self._sock = None
        self._reader = None
        self._writer = None
        self._send_lock = threading.Lock()
        self._conn_ok = False
        self._beat_stop = None
        self._partitions = 0

    # -- wire ----------------------------------------------------------

    def _send(self, message):
        """Send one frame; returns False (and goes dark) on a dead link."""
        with self._send_lock:
            if not self._conn_ok:
                return False
            try:
                protocol.write_frame_blocking(self._writer, message)
                return True
            except (ProtocolError, OSError, ValueError):
                self._conn_ok = False
                return False

    def _beat_loop(self, stop):
        while not stop.wait(self.beat_interval):
            if not self._send({"type": "beat",
                               "peer": self.peers.snapshot()}):
                return

    def _partition(self):
        """Injected partition: drop the coordinator link, keep working.

        The shard in flight keeps executing into the local cache; the
        main loop reconnects afterwards and replays what completed.
        """
        self._partitions += 1
        with self._send_lock:
            self._conn_ok = False
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def _disconnect(self):
        if self._beat_stop is not None:
            self._beat_stop.set()
            self._beat_stop = None
        self._conn_ok = False
        for handle in (self._reader, self._writer):
            try:
                if handle is not None:
                    handle.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = self._reader = self._writer = None

    # -- chaos boundaries ----------------------------------------------

    def _fault_point(self, job_key, attempt, stage):
        """Consult the chaos plan at one deterministic task boundary."""
        plan = get_fault_plan()
        if not plan.active:
            return
        key = "%s|%s" % (job_key, stage)
        slow = plan.worker_slow_seconds(key)
        if slow > 0:
            time.sleep(slow)
        if plan.should_host_kill(key, attempt):
            os._exit(CRASH_EXIT_CODE)
        if self._conn_ok and plan.should_host_partition(key, attempt):
            self._partition()

    # -- shard execution -----------------------------------------------

    def run_job(self, frame):
        from repro.sim.runner import RunRequest

        job = frame["job"]
        job_id = job["id"]
        job_key = job["key"]
        attempt = int(job.get("attempt", 0))
        remaining = job.get("deadline")
        deadline_at = (time.monotonic() + remaining
                       if remaining is not None else None)
        try:
            requests = [RunRequest(*fields) for fields in job["requests"]]
            policy = FailurePolicy(**(job.get("policy") or {}))
        except (TypeError, ValueError) as exc:
            self._send({"type": "job-error", "job_id": job_id,
                        "error_type": type(exc).__name__,
                        "message": "bad job frame: %s" % exc,
                        "attempts": 0})
            return
        if deadline_at is not None and remaining <= 0:
            self._send({"type": "job-error", "job_id": job_id,
                        "code": "deadline-exceeded",
                        "error_type": "DeadlineExceeded",
                        "message": "deadline expired before execution",
                        "attempts": 0})
            return
        self._fault_point(job_key, attempt, "start")

        def progress(done, total):
            # fault first so an injected kill never reports work it is
            # about to lose; a partition keeps computing but reports
            # nothing (the _send below becomes a no-op)
            self._fault_point(job_key, attempt, "t%d" % done)
            if deadline_at is not None and time.monotonic() > deadline_at:
                raise _DeadlineHit(job_id)
            self._send({"type": "progress", "job_id": job_id,
                        "done": done, "total": total})

        try:
            results, report = self.runner.run_batch(
                requests, jobs=self.batch_jobs, policy=policy,
                progress=progress,
            )
        except _DeadlineHit:
            self._send({"type": "job-error", "job_id": job_id,
                        "code": "deadline-exceeded",
                        "error_type": "DeadlineExceeded",
                        "message": "deadline expired at a task boundary "
                                   "(completed work is checkpointed)",
                        "attempts": attempt + 1})
            return
        except SimulationError as exc:
            self._send({"type": "job-error", "job_id": job_id,
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                        "attempts": getattr(exc, "attempts", 0)})
            return
        except Exception as exc:  # noqa: BLE001 - node must report, not die
            self._send({"type": "job-error", "job_id": job_id,
                        "error_type": type(exc).__name__,
                        "message": str(exc), "attempts": attempt + 1})
            return
        payload = [None if result is None else result.as_dict()
                   for result in results]
        self._send({"type": "result", "job_id": job_id,
                    "payload": payload, "report": report.as_dict()})

    # -- connection lifecycle ------------------------------------------

    def _hello(self):
        return {
            "type": "node-hello",
            "node": self.node_id,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "peer_host": self.peer_server.host,
            "peer_port": self.peer_server.port,
            # digests completed since the last sync -- after a partition
            # the coordinator pulls these into its own cache (replay)
            "completed": list(self.peers.recent),
        }

    def _connect_once(self):
        """Dial, handshake, install the peer list; True on success."""
        try:
            self._sock = socket.create_connection(self.connect_addr,
                                                  timeout=10.0)
        except OSError:
            self._sock = None
            return False
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("rb")
        self._writer = self._sock.makefile("wb")
        self._conn_ok = True
        if not self._send(self._hello()):
            self._disconnect()
            return False
        try:
            reply = protocol.read_frame_blocking(
                self._reader, max_bytes=protocol.MAX_REPLY_BYTES)
        except (ProtocolError, OSError):
            self._disconnect()
            return False
        if not reply or reply.get("type") != "node-welcome":
            # a non-cluster server (typed error frame) cannot become
            # one by retrying; bail out entirely
            self._disconnect()
            raise SystemExit(
                "coordinator at %s:%d rejected node-hello: %r"
                % (self.connect_addr[0], self.connect_addr[1], reply)
            )
        self._apply_peers(reply.get("peers"))
        self._beat_stop = threading.Event()
        threading.Thread(target=self._beat_loop, args=(self._beat_stop,),
                         name="node-beat", daemon=True).start()
        return True

    def _apply_peers(self, peers):
        own = (self.peer_server.host, self.peer_server.port)
        cleaned = []
        for entry in peers or ():
            try:
                peer = (str(entry[0]), int(entry[1]))
            except (TypeError, ValueError, IndexError):
                continue
            if peer != own:
                cleaned.append(peer)
        self.peers.set_peers(cleaned)

    def _serve_connection(self):
        """Frame loop for one coordinator connection.

        Returns ``"shutdown"`` on a graceful shutdown frame and
        ``"lost"`` when the link drops (partition or coordinator
        death) -- the caller reconnects.
        """
        while True:
            try:
                frame = protocol.read_frame_blocking(
                    self._reader, max_bytes=protocol.MAX_REPLY_BYTES)
            except (ProtocolError, OSError, ValueError):
                return "lost"
            if frame is None:
                return "lost"
            kind = frame.get("type")
            if kind == "shutdown":
                return "shutdown"
            if kind == "job":
                self.run_job(frame)
                if not self._conn_ok:
                    # partitioned mid-shard: the work is in the local
                    # cache; resync via reconnect + replay
                    return "lost"
            elif kind == "peer-update":
                self._apply_peers(frame.get("peers"))
            elif kind == "node-ping":
                self._send({"type": "node-pong", "t": frame.get("t")})
            # unknown frame types are ignored (forward compatibility)

    def run(self):
        """Node main loop: connect, serve, reconnect until shutdown."""
        self.peer_server.start()
        print("node %s: cache peer on %s:%d" %
              (self.node_id, self.peer_server.host, self.peer_server.port),
              file=sys.stderr)
        failures = 0
        while True:
            if not self._connect_once():
                self._disconnect()
                failures += 1
                if failures > self.reconnect_attempts:
                    print("node %s: coordinator unreachable after %d "
                          "attempts; giving up"
                          % (self.node_id, failures - 1), file=sys.stderr)
                    self.peer_server.stop()
                    return 1
                time.sleep(backoff_delay(
                    RECONNECT_POLICY, "node-reconnect-%s" % self.node_id,
                    min(failures, 6),
                ))
                continue
            failures = 0
            print("node %s: connected to %s:%d"
                  % (self.node_id, self.connect_addr[0],
                     self.connect_addr[1]), file=sys.stderr)
            verdict = self._serve_connection()
            self._disconnect()
            if verdict == "shutdown":
                self.peer_server.stop()
                return 0
            # lost: loop back and reconnect (replaying completed work)


def parse_hostport(text):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError("expected HOST:PORT, got %r" % (text,))
    return host, int(port)


def node_main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro node", description="remote cluster worker node"
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator serve address to dial")
    parser.add_argument("--cache-dir", default=None,
                        help="local result cache (default: a temp dir)")
    parser.add_argument("--node-id", default=None)
    parser.add_argument("--beat-interval", type=float,
                        default=DEFAULT_BEAT_INTERVAL)
    parser.add_argument("--batch-jobs", type=int, default=1)
    parser.add_argument("--peer-host", default="127.0.0.1")
    parser.add_argument("--peer-port", type=int, default=0)
    parser.add_argument("--replicas", type=int, default=DEFAULT_REPLICAS)
    parser.add_argument("--max-entries", type=int, default=None,
                        help="cache-peer eviction bound (entries)")
    parser.add_argument("--reconnect-attempts", type=int,
                        default=DEFAULT_RECONNECT_ATTEMPTS)
    args = parser.parse_args(argv)
    cache_dir = args.cache_dir
    if cache_dir is None:
        import tempfile

        cache_dir = tempfile.mkdtemp(prefix="repro-node-cache-")
    agent = NodeAgent(
        parse_hostport(args.connect), cache_dir, node_id=args.node_id,
        beat_interval=args.beat_interval, batch_jobs=args.batch_jobs,
        peer_host=args.peer_host, peer_port=args.peer_port,
        replicas=args.replicas, max_entries=args.max_entries,
        reconnect_attempts=args.reconnect_attempts,
    )
    return agent.run()


def spawn_node(address, cache_dir=None, node_id=None, beat_interval=0.25,
               extra_args=(), env=None):
    """Launch a node subprocess against *address* (tests/bench/chaos).

    Returns the :class:`subprocess.Popen`; the child inherits the
    caller's environment (so ``REPRO_FAULTS`` chaos propagates) plus a
    PYTHONPATH that resolves this checkout.
    """
    import subprocess

    import repro

    src_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)
    ))
    child_env = dict(os.environ if env is None else env)
    existing = child_env.get("PYTHONPATH")
    child_env["PYTHONPATH"] = (src_dir if not existing
                               else src_dir + os.pathsep + existing)
    argv = [sys.executable, "-m", "repro.serve.cluster.node",
            "--connect", "%s:%d" % (address[0], address[1]),
            "--beat-interval", str(beat_interval)]
    if cache_dir:
        argv += ["--cache-dir", cache_dir]
    if node_id:
        argv += ["--node-id", node_id]
    argv += list(extra_args)
    return subprocess.Popen(argv, env=child_env,
                            stderr=subprocess.DEVNULL,
                            stdout=subprocess.DEVNULL)


if __name__ == "__main__":
    sys.exit(node_main())
