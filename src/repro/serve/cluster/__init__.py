"""Cluster tier: remote nodes, replicated cache, work-stealing.

Layered on the PR 7 serving tier:

* :mod:`~repro.serve.cluster.cas` -- content-addressed cache-peer
  protocol (:class:`CachePeerServer` exports a cache directory over
  length-prefixed frames; :class:`PeerSet` is the client with
  rendezvous-hashed N-way replication and never-trust-the-wire
  envelope verification);
* :mod:`~repro.serve.cluster.node` -- :class:`NodeAgent`, the remote
  worker process (``repro node --connect host:port``) that dials the
  coordinator, executes shards, and rides out partitions by finishing
  work into its local cache and replaying on reconnect;
* :mod:`~repro.serve.cluster.remote` -- :class:`NodeHandle`, the
  coordinator-side handle presenting the local-worker execute
  contract over the wire;
* :mod:`~repro.serve.cluster.supervisor` --
  :class:`ClusterSupervisor`, the mixed local/remote scheduler with
  shard scatter, work stealing, autoscaling admission and typed
  degraded modes.
"""

from repro.serve.cluster.cas import (
    CachePeerServer,
    DEFAULT_REPLICAS,
    PeerSet,
    rendezvous_rank,
)
from repro.serve.cluster.node import (
    NodeAgent,
    node_main,
    parse_hostport,
    spawn_node,
)
from repro.serve.cluster.remote import NodeHandle
from repro.serve.cluster.supervisor import ClusterSupervisor

__all__ = [
    "CachePeerServer",
    "ClusterSupervisor",
    "DEFAULT_REPLICAS",
    "NodeAgent",
    "NodeHandle",
    "PeerSet",
    "node_main",
    "parse_hostport",
    "rendezvous_rank",
    "spawn_node",
]
