"""Cluster supervisor: mixed local/remote scheduling with work-stealing.

:class:`ClusterSupervisor` is the cluster-tier drop-in for the PR 7
:class:`~repro.serve.fleet.WorkerSupervisor`: the server calls the same
``run_job(loop, job, progress_cb)`` coroutine, but the member pool now
mixes *local worker subprocesses* (:class:`WorkerProcess`) and *remote
nodes* (:class:`NodeHandle`) behind one duck-typed execute contract.

Scheduling is **shard scatter + run-sheet pull + work stealing**:

* a job's request list is split into contiguous shards (the *run
  sheet*); idle members pull shards off the sheet, so a fast member
  naturally takes more of the job than a straggler;
* when the sheet runs dry while shards are still in flight, an idle
  member *steals* the longest-running one and executes it in parallel.
  Double execution is harmless -- every completed task is persisted in
  a content-addressed cache keyed by the request digest, writes are
  atomic, and first write wins -- and results stay byte-identical
  because the simulation is deterministic;
* a member dying mid-shard requeues the shard (``attempt + 1``) onto
  the sheet, exactly the PR 7 requeue-on-death semantics, now spanning
  hosts.

Availability machinery:

* **autoscaling admission** -- a queue-depth probe wired to the
  admission queue's high-water mark spawns extra local workers under
  backlog and retires them when the queue drains (bounded by
  ``min_local``/``max_local``);
* **degraded mode** -- with zero live nodes the cluster *is* the PR 7
  local fleet: the typed ``serve.cluster.degraded`` gauge flips to 1,
  a ``degraded_transitions`` counter ticks on each node-loss edge, and
  an emergency local worker is spawned if the member pool ever hits
  zero, so total node loss is a slowdown, never a wedge;
* **replay on reconnect** -- a node that went dark mid-shard finished
  that shard into its own cache; when it reconnects, its ``node-hello``
  lists the completed digests and the coordinator pulls them through
  the cache-peer tier into its own store before handing the node new
  work.
"""

import asyncio
import os
import time
from collections import deque
from dataclasses import asdict, replace

from repro.obs.io import atomic_write_text
from repro.resilience import FailurePolicy, SimulationError, backoff_delay
from repro.serve.cluster.cas import (
    CachePeerServer,
    DEFAULT_REPLICAS,
    PeerSet,
    REPLAY_WINDOW,
    _valid_relpath,
)
from repro.serve.cluster.remote import NodeHandle
from repro.serve.fleet import (
    DEFAULT_MAX_REQUEUES,
    DeadlineExceeded,
    RESPAWN_POLICY,
)
from repro.serve.supervisor import WorkerLost, WorkerProcess
from repro.serve.workers import JobCancelled

#: largest shard handed to one member in one pull (small enough that
#: stealing has boundaries to land on, large enough to amortise the
#: dispatch round trip)
MAX_SHARD_TASKS = 8

#: autoscaler cadence, seconds
DEFAULT_SCALE_INTERVAL = 0.5

#: consecutive idle autoscaler ticks before a surplus local is retired
IDLE_TICKS_TO_RETIRE = 6


class _Shard(object):
    """Job-like proxy for one contiguous slice of a job's requests.

    Quacks enough like a :class:`~repro.serve.jobs.Job` for
    ``WorkerProcess.execute`` / ``NodeHandle.execute``: ``id``, ``key``,
    ``requests``, ``deadline``, ``done_total`` and a
    ``cancel_requested`` that delegates to the parent job.  The key is
    deterministic (parent key + ordinal), so chaos verbs keyed on it
    fire reproducibly.
    """

    __slots__ = ("parent", "ordinal", "id", "key", "indices", "requests",
                 "done_total")

    def __init__(self, parent, ordinal, indices, requests):
        self.parent = parent
        self.ordinal = ordinal
        self.id = "%s#s%d" % (parent.id, ordinal)
        self.key = "%s#s%d" % (parent.key, ordinal)
        self.indices = indices
        self.requests = requests
        self.done_total = len(requests)

    @property
    def deadline(self):
        return self.parent.deadline

    @property
    def cancel_requested(self):
        return self.parent.cancel_requested


class ClusterSupervisor(object):
    """Owns local workers + adopted remote nodes; schedules shards.

    :param cache_dir: the coordinator's result cache -- shared with
        local workers on disk and exported to nodes through the
        cache-peer tier.
    :param runner: the server's :class:`ExperimentRunner` (used to fold
        node-computed results into the coordinator cache).
    :param local_workers: local subprocess workers started up front.
    :param min_local: floor the autoscaler will not retire below.
    :param max_local: ceiling for autoscaled local workers.
    :param queue_depth: zero-arg callable returning the admission-queue
        depth (drives scale-up).
    :param high_water: the admission queue's high-water mark; backlog
        beyond ``high_water * scale_up_fraction`` triggers a scale-up.
    :param dispatch_width: concurrent *jobs* the server may admit
        (shards fan wider through the shared member pool).
    :param shard_tasks: fixed shard size (None = auto by live members,
        capped at :data:`MAX_SHARD_TASKS`).
    :param on_degraded: callback ``fn(live_nodes)`` fired on every
        cluster-degraded transition (the server traces it).
    """

    def __init__(self, cache_dir=None, runner=None, local_workers=1,
                 beat_interval=1.0, max_missed=4, policy=None,
                 batch_jobs=1, metrics=None,
                 max_requeues=DEFAULT_MAX_REQUEUES,
                 respawn_policy=RESPAWN_POLICY, spawn_timeout=30.0,
                 min_local=0, max_local=4, queue_depth=None,
                 high_water=64, scale_up_fraction=0.5,
                 scale_interval=DEFAULT_SCALE_INTERVAL,
                 dispatch_width=4, shard_tasks=None,
                 steal_min_age=0.5,
                 peer_host="127.0.0.1", peer_port=0,
                 peer_max_entries=None, replicas=DEFAULT_REPLICAS,
                 on_degraded=None):
        if local_workers < 0:
            raise ValueError("local_workers must be >= 0, got %r"
                             % (local_workers,))
        self.cache_dir = cache_dir
        self.runner = runner
        self.policy = policy
        self.metrics = metrics
        self.max_requeues = max_requeues
        self.respawn_policy = respawn_policy
        self.beat_interval = beat_interval
        self.max_missed = max_missed
        self.batch_jobs = batch_jobs
        self.spawn_timeout = spawn_timeout
        self.min_local = max(0, min_local)
        self.max_local = max(self.min_local, max_local, local_workers)
        self.queue_depth = queue_depth
        self.scale_up_depth = max(1, int(high_water * scale_up_fraction))
        self.scale_interval = scale_interval
        self.dispatch_width = max(1, dispatch_width)
        self.shard_tasks = shard_tasks
        self.steal_min_age = steal_min_age
        self.replicas = replicas
        self.on_degraded = on_degraded
        self.locals = [
            self._new_local() for _ in range(local_workers)
        ]
        self.nodes = {}            # name -> NodeHandle
        self.peer_server = (CachePeerServer(
            cache_dir, host=peer_host, port=peer_port,
            max_entries=peer_max_entries,
        ) if cache_dir else None)
        self._next_local_id = local_workers
        self._idle = None          # asyncio.Queue of members
        self._loop = None
        self._stopping = False
        self._scaling = False
        self._idle_ticks = 0
        self._had_live_nodes = False
        self._peer_base = {}       # folded counters of departed nodes
        self._scaler = None
        self._node_seq = 0

    def _new_local(self, worker_id=None):
        if worker_id is None:
            worker_id = len(self.locals) if hasattr(self, "locals") else 0
        return WorkerProcess(
            worker_id, cache_dir=self.cache_dir,
            beat_interval=self.beat_interval, max_missed=self.max_missed,
            batch_jobs=self.batch_jobs, spawn_timeout=self.spawn_timeout,
        )

    # -- lifecycle -----------------------------------------------------

    @property
    def max_concurrent(self):
        """Concurrent jobs the server should admit."""
        return self.dispatch_width

    async def start(self):
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Queue()
        if self.peer_server is not None:
            self.peer_server.start()
        await asyncio.gather(*(worker.spawn() for worker in self.locals))
        for worker in self.locals:
            self._idle.put_nowait(worker)
        self._scaler = self._loop.create_task(self._autoscale_loop())
        return self

    async def shutdown(self, timeout=10.0):
        """Drain: graceful frames everywhere, then the hammer."""
        self._stopping = True
        if self._scaler is not None:
            self._scaler.cancel()
        for handle in list(self.nodes.values()):
            await handle.request_shutdown()
            handle.close()
            await handle.reap()
        self.nodes.clear()
        await asyncio.gather(*(worker.request_shutdown()
                               for worker in self.locals))
        deadline = time.monotonic() + timeout
        for worker in self.locals:
            proc = worker._proc
            if proc is not None and proc.returncode is None:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    await asyncio.wait_for(proc.wait(), remaining)
                except asyncio.TimeoutError:
                    worker.kill()
            await worker.reap()
            worker.state = "stopped"
        if self.peer_server is not None:
            self.peer_server.stop()

    # -- membership ----------------------------------------------------

    def _bump(self, name, n=1):
        if self.metrics is not None and n:
            self.metrics.bump(name, n)

    def live_locals(self):
        return [worker for worker in self.locals if worker.alive]

    def live_nodes(self):
        return [handle for handle in self.nodes.values() if handle.alive]

    def live_count(self):
        return len(self.live_locals()) + len(self.live_nodes())

    def degraded(self):
        """1 when the cluster is running as a purely local fleet."""
        return 0 if self.live_nodes() else 1

    def _peer_addrs(self, exclude=None):
        addrs = []
        if self.peer_server is not None:
            addrs.append(list(self.peer_server.address))
        for handle in self.live_nodes():
            if handle is exclude or handle.peer_addr is None:
                continue
            addrs.append(list(handle.peer_addr))
        return addrs

    def _broadcast_peers(self):
        for handle in self.live_nodes():
            self._loop.create_task(handle.send({
                "type": "peer-update",
                "peers": self._peer_addrs(exclude=handle),
            }))

    async def adopt_node(self, hello, reader, writer):
        """Take ownership of an accepted ``node-hello`` connection."""
        self._node_seq += 1
        name = hello.get("node")
        if not isinstance(name, str) or not name:
            name = "node-%d" % self._node_seq
        stale = self.nodes.pop(name, None)
        if stale is not None:
            stale.close()
            await stale.reap()
        handle = NodeHandle(
            name, reader, writer, hello,
            beat_interval=self.beat_interval, max_missed=self.max_missed,
            on_lost=self._node_lost,
        )
        handle.start(self._loop)
        await handle.send({
            "type": "node-welcome", "node": name,
            "peers": self._peer_addrs(exclude=handle),
        })
        self.nodes[name] = handle
        self._bump("cluster.nodes_joined")
        rejoin = self._had_live_nodes is False
        self._had_live_nodes = True
        await self._replay_completed(handle, hello.get("completed"))
        self._broadcast_peers()
        await handle.ping()
        self._idle.put_nowait(handle)
        if rejoin and self.on_degraded is not None:
            self.on_degraded(len(self.live_nodes()))
        return handle

    async def _replay_completed(self, handle, relpaths):
        """Pull a reconnecting node's completed digests into our cache."""
        if not relpaths or handle.peer_addr is None \
                or not self.cache_dir:
            return
        cleaned = [rel for rel in list(relpaths)[:REPLAY_WINDOW]
                   if _valid_relpath(rel)
                   and not os.path.exists(
                       os.path.join(self.cache_dir, rel))]
        if not cleaned:
            return
        peer = handle.peer_addr

        def pull():
            fetched = 0
            peers = PeerSet(peers=[peer], replicas=1)
            for rel in cleaned:
                found = peers.fetch(rel)
                if found is None:
                    continue
                text, _payload = found
                atomic_write_text(os.path.join(self.cache_dir, rel), text)
                fetched += 1
            return fetched

        fetched = await self._loop.run_in_executor(None, pull)
        self._bump("cluster.replayed", fetched)

    def _node_lost(self, handle):
        """Reader-loop callback: a node's connection hit EOF."""
        current = self.nodes.get(handle.name)
        if current is not handle:
            return
        del self.nodes[handle.name]
        self._fold_peer_stats(handle)
        self._bump("cluster.nodes_lost")
        if not self.live_nodes() and self._had_live_nodes:
            self._had_live_nodes = False
            self._bump("cluster.degraded_transitions")
            if self.on_degraded is not None:
                self.on_degraded(0)
        self._broadcast_peers()

    def _fold_peer_stats(self, handle):
        for key, value in (handle.peer_stats or {}).items():
            if isinstance(value, (int, float)):
                self._peer_base[key] = self._peer_base.get(key, 0) + value

    def peer_totals(self):
        """Cluster-wide cache-peer counters (departed + live nodes)."""
        totals = dict(self._peer_base)
        for handle in self.nodes.values():
            for key, value in (handle.peer_stats or {}).items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        return totals

    # -- autoscaling ---------------------------------------------------

    async def _autoscale_loop(self):
        while not self._stopping:
            await asyncio.sleep(self.scale_interval)
            try:
                await self._autoscale_tick()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the scaler must survive
                pass

    async def _autoscale_tick(self):
        # sweep heartbeat-silent nodes (a hung host with a live TCP
        # connection would otherwise linger as a phantom member)
        for handle in list(self.nodes.values()):
            if handle.alive and handle.health.dead():
                handle.close()
        depth = 0
        if self.queue_depth is not None:
            try:
                depth = int(self.queue_depth())
            except Exception:  # noqa: BLE001
                depth = 0
        live_local = self.live_locals()
        if self.live_count() == 0:
            # never a wedge: zero members means jobs would queue forever
            await self._scale_up()
            return
        if depth >= self.scale_up_depth \
                and len(live_local) < self.max_local:
            self._idle_ticks = 0
            await self._scale_up()
            return
        if depth == 0 and len(live_local) > max(self.min_local, 1):
            self._idle_ticks += 1
            if self._idle_ticks >= IDLE_TICKS_TO_RETIRE:
                self._idle_ticks = 0
                self._scale_down(live_local)
        else:
            self._idle_ticks = 0

    async def _scale_up(self):
        if self._scaling or self._stopping:
            return
        self._scaling = True
        try:
            worker = self._new_local(self._next_local_id)
            self._next_local_id += 1
            try:
                await worker.spawn()
            except WorkerLost:
                return
            self.locals.append(worker)
            self._idle.put_nowait(worker)
            self._bump("cluster.scale_up")
        finally:
            self._scaling = False

    def _scale_down(self, live_local):
        for worker in live_local:
            if worker.state == "idle":
                worker.state = "stopped"
                self._loop.create_task(worker.request_shutdown())
                self._bump("cluster.scale_down")
                return

    # -- member pool ---------------------------------------------------

    def _member_usable(self, member):
        """Filter one popped member; None when it must be discarded."""
        if member.alive:
            return member
        if isinstance(member, NodeHandle):
            return None  # dropped from membership by its own read loop
        if member.state == "stopped":
            return None  # retired by the autoscaler
        return "respawn"

    def _acquire_nowait(self):
        while True:
            try:
                member = self._idle.get_nowait()
            except asyncio.QueueEmpty:
                return None
            verdict = self._member_usable(member)
            if verdict is None:
                continue
            if verdict == "respawn":
                # dead local slot: respawn in the background, keep
                # scanning for someone who is ready right now
                self._loop.create_task(self._respawn_and_requeue(member))
                continue
            return member

    async def _acquire(self):
        while True:
            member = self._acquire_nowait()
            if member is not None:
                return member
            try:
                member = await asyncio.wait_for(self._idle.get(), 0.5)
            except asyncio.TimeoutError:
                if self.live_count() == 0 and not self._scaling:
                    await self._scale_up()  # emergency: never a wedge
                continue
            verdict = self._member_usable(member)
            if verdict is None:
                continue
            if verdict == "respawn":
                await self._respawn(member)
                if member.alive:
                    return member
                self._idle.put_nowait(member)
                await asyncio.sleep(0.05)
                continue
            return member

    async def _respawn(self, worker):
        await worker.reap()
        delay = backoff_delay(self.respawn_policy, "worker-%d" % worker.id,
                              min(worker.respawns, 6))
        if delay > 0:
            await asyncio.sleep(delay)
        worker.respawns += 1
        self._bump("fleet.respawns")
        try:
            await worker.spawn()
        except WorkerLost:
            worker.state = "dead"

    async def _respawn_and_requeue(self, worker):
        await self._respawn(worker)
        if worker.alive or worker.state != "stopped":
            self._idle.put_nowait(worker)

    def _release(self, member):
        if isinstance(member, NodeHandle):
            if member.alive:
                self._loop.create_task(member.ping())  # refresh rtt
                self._idle.put_nowait(member)
            return
        if member.state != "stopped":
            self._idle.put_nowait(member)

    # -- policy --------------------------------------------------------

    def job_policy(self, job):
        base = self.policy
        if base is None:
            base = FailurePolicy.from_env()
        overrides = job.spec.get("policy") or {}
        if overrides:
            base = replace(base, **overrides)
        return base

    # -- scheduling ----------------------------------------------------

    def _plan_shards(self, job):
        requests = list(job.requests)
        total = len(requests)
        if self.shard_tasks:
            size = max(1, int(self.shard_tasks))
        else:
            members = max(1, self.live_count())
            size = min(MAX_SHARD_TASKS, max(1, -(-total // members)))
        shards = []
        for ordinal, start in enumerate(range(0, total, size)):
            indices = list(range(start, min(start + size, total)))
            shards.append(_Shard(job, ordinal, indices,
                                 [requests[i] for i in indices]))
        return shards

    def _pick_steal(self, active, done_ids):
        """Longest-in-flight shard not yet stolen, or None.

        Only a *straggler* qualifies: its execution must have been in
        flight for at least ``steal_min_age`` seconds.  Without the age
        gate every short shard gets duplicated the moment a second
        member goes idle, and the duplicate work drowns the win.
        """
        counts = {}
        for meta in active.values():
            counts[meta["sid"]] = counts.get(meta["sid"], 0) + 1
        cutoff = time.monotonic() - self.steal_min_age
        best = None
        for meta in active.values():
            if meta["sid"] in done_ids or counts[meta["sid"]] > 1 \
                    or meta["t0"] > cutoff:
                continue
            if best is None or meta["t0"] < best["t0"]:
                best = meta
        return None if best is None else best["shard"]

    def _store_remote_results(self, shard, payload):
        """Fold a node-computed shard into the coordinator cache."""
        if self.runner is None or not isinstance(payload, list):
            return
        for request, data in zip(shard.requests, payload):
            if isinstance(data, dict):
                try:
                    self.runner.store_single(request, data)
                except Exception:  # noqa: BLE001 - cache fold is advisory
                    pass

    async def run_job(self, loop, job, progress_cb=None):
        """Execute *job* across the cluster; returns ``(results, report)``.

        Same contract as the fleet supervisor: raises
        :class:`JobCancelled` / :class:`DeadlineExceeded` /
        :class:`SimulationError`.
        """
        policy_fields = asdict(self.job_policy(job))
        total = len(job.requests)
        if total == 0:
            return [], {}
        shards = self._plan_shards(job)
        self._bump("cluster.shards", len(shards))
        results = [None] * total
        report = {}
        pending = deque(shards)
        attempts = {shard.id: 0 for shard in shards}  # highest dispatched
        losses = {shard.id: 0 for shard in shards}
        done_ids = set()
        done_tasks = [0]
        best_progress = [0]
        active = {}                # asyncio task -> meta
        failure = [None]           # first terminal exception

        def on_progress(shard, done, _shard_total):
            value = min(total, done_tasks[0] + done)
            if progress_cb is not None and value > best_progress[0]:
                best_progress[0] = value
                progress_cb(job, value, total)

        async def shard_task(shard, attempt, member, steal):
            try:
                outcome, detail = await member.execute(
                    shard, attempt, policy_fields, on_progress
                )
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                outcome, detail = "error", {
                    "error_type": type(exc).__name__, "message": str(exc),
                    "attempts": attempt + 1,
                }
            return outcome, detail

        def launch(shard, member, steal):
            attempt = attempts[shard.id] + (1 if steal else 0)
            attempts[shard.id] = attempt
            if steal:
                member.steals = getattr(member, "steals", 0) + 1
                self._bump("cluster.steals")
            task = loop.create_task(shard_task(shard, attempt, member,
                                               steal))
            active[task] = {"sid": shard.id, "shard": shard,
                            "attempt": attempt, "member": member,
                            "steal": steal, "t0": time.monotonic()}

        def fold(task, draining=False):
            meta = active.pop(task)
            shard, member = meta["shard"], meta["member"]
            outcome, detail = task.result()
            if outcome == "done":
                self._release(member)
                if shard.id not in done_ids:
                    done_ids.add(shard.id)
                    payload, shard_report = detail
                    payload = payload if isinstance(payload, list) else []
                    for offset, index in enumerate(shard.indices):
                        if offset < len(payload):
                            results[index] = payload[offset]
                    done_tasks[0] += len(shard.indices)
                    if isinstance(member, NodeHandle):
                        self._store_remote_results(shard, payload)
                    for key, value in (shard_report or {}).items():
                        if isinstance(value, (int, float)) \
                                and not isinstance(value, bool):
                            report[key] = report.get(key, 0) + value
                    on_progress(shard, 0, 0)
                return
            if outcome == "cancelled":
                self._release(member)
                return
            if outcome == "error":
                self._release(member)
                if failure[0] is None and shard.id not in done_ids:
                    info = detail or {}
                    if info.get("code") == "deadline-exceeded":
                        failure[0] = DeadlineExceeded(job.id)
                    else:
                        error = SimulationError(
                            "shard %s: %s"
                            % (shard.id,
                               info.get("message", "shard failed")),
                            attempts=info.get("attempts",
                                              meta["attempt"] + 1),
                        )
                        error.worker_error_type = info.get("error_type")
                        failure[0] = error
                return
            # lost: the member died (or went silent) holding the shard
            self._release(member)  # dead locals respawn on next acquire
            if draining or shard.id in done_ids:
                return
            still_running = any(m["sid"] == shard.id
                                for m in active.values())
            if still_running:
                return  # its twin (steal or original) is still on it
            losses[shard.id] += 1
            if losses[shard.id] > self.max_requeues:
                if failure[0] is None:
                    failure[0] = SimulationError(
                        "shard %s lost %d members (last: %s); giving up"
                        % (shard.id, losses[shard.id], detail),
                        attempts=losses[shard.id],
                    )
                return
            attempts[shard.id] += 1
            self._bump("cluster.requeues")
            pending.append(shard)

        try:
            while failure[0] is None and len(done_ids) < len(shards):
                if job.deadline_expired:
                    raise DeadlineExceeded(job.id)
                if job.cancel_requested:
                    raise JobCancelled(job.id)
                # fill the pool from the run sheet
                while pending:
                    if pending[0].id in done_ids:
                        pending.popleft()
                        continue
                    member = self._acquire_nowait()
                    if member is None:
                        break
                    launch(pending.popleft(), member, steal=False)
                if not pending and active:
                    # sheet dry: steal for any member idling *right now*
                    member = self._acquire_nowait()
                    if member is not None:
                        victim = self._pick_steal(active, done_ids)
                        if victim is None:
                            self._release(member)
                        else:
                            launch(victim, member, steal=True)
                if not active:
                    if pending:
                        member = await self._acquire()
                        while pending and pending[0].id in done_ids:
                            pending.popleft()
                        if pending:
                            launch(pending.popleft(), member, steal=False)
                        else:
                            self._release(member)
                        continue
                    break  # defensive: nothing anywhere
                done_set, _ = await asyncio.wait(
                    set(active), return_when=asyncio.FIRST_COMPLETED,
                    timeout=0.5,
                )
                for task in done_set:
                    fold(task)
        finally:
            # drain stragglers so no member leaks out of the pool; a
            # cancel propagates through shard.cancel_requested, so
            # members notice within one poll interval
            while active:
                done_set, _ = await asyncio.wait(
                    set(active), return_when=asyncio.FIRST_COMPLETED)
                for task in done_set:
                    fold(task, draining=True)

        if job.cancel_requested and len(done_ids) < len(shards):
            raise JobCancelled(job.id)
        if failure[0] is not None:
            raise failure[0]
        if job.deadline_expired and len(done_ids) < len(shards):
            raise DeadlineExceeded(job.id)
        return results, report

    # -- observability -------------------------------------------------

    def snapshot(self):
        """Local worker rows (fleet-endpoint compatible)."""
        return [worker.snapshot() for worker in self.locals]

    def node_snapshot(self):
        """Remote node rows for the ``fleet`` endpoint."""
        return [handle.snapshot()
                for _name, handle in sorted(self.nodes.items())]

    def live_count_locals(self):
        return len(self.live_locals())
