"""Replicated content-addressed cache tier (cache peers).

The v3 result cache already *is* a content-addressed store: every entry
lives at ``<kind>/<digest[:2]>/<kind>-<digest16>.json`` and carries an
integrity envelope ``{"v", "sha", "data"}`` (see
:mod:`repro.sim.runner` and :mod:`repro.resilience.envelope`).  This
module federates those per-host stores into one replicated tier:

* :class:`CachePeerServer` -- a small threaded TCP server exporting one
  host's cache directory over the length-prefixed frame protocol
  (``cache-get`` / ``cache-put`` / ``cache-has``), with a deterministic
  eviction policy bounding the entry count;
* :class:`PeerSet` -- the client side: read-through fetch on local miss
  and N-way replication on write, with peer selection by rendezvous
  (highest-random-weight) hashing so every host independently agrees on
  where a given entry's replicas live.

Never trust the wire: every entry crossing a socket is re-verified
against its envelope -- fetched entries before use, pushed entries
before the receiving server persists them.  A corrupted peer (or the
``cache-peer-corrupt`` REPRO_FAULTS verb) therefore costs a recompute,
never a wrong result.

Wire grammar (all frames are JSON objects, 4-byte u32be length prefix)::

    -> {"type": "cache-get",  "path": "<kind>/<aa>/<name>.json"}
    <- {"type": "cache-entry", "path": ..., "text": "<json>"|null}
    -> {"type": "cache-has",  "path": ...}
    <- {"type": "cache-have", "path": ..., "have": true|false}
    -> {"type": "cache-put",  "path": ..., "text": "<json>"}
    <- {"type": "cache-ok",   "path": ..., "stored": true|false}
    -> {"type": "cache-ping"}
    <- {"type": "cache-pong", "entries": n}

Entry paths are always cache-relative; anything absolute or escaping
the root (``..``) is rejected with a typed error frame.
"""

import hashlib
import os
import socket
import threading
from collections import deque

from repro.obs.io import atomic_write_text, file_signature, \
    remove_if_unchanged
from repro.resilience import CacheCorruption, get_fault_plan
from repro.resilience.envelope import read_envelope_text
from repro.serve.protocol import (
    MAX_REPLY_BYTES,
    ProtocolError,
    error_message,
    read_frame_blocking,
    write_frame_blocking,
)
from repro.sim.runner import CACHE_VERSION

#: per-request socket timeout for peer calls, seconds
PEER_TIMEOUT = 5.0

#: replicas written per entry (including the local copy's host when it
#: ranks); the tier tolerates ``DEFAULT_REPLICAS - 1`` host losses
#: without losing a replicated entry
DEFAULT_REPLICAS = 2

#: completed digests remembered for partition replay
REPLAY_WINDOW = 512


def _valid_relpath(path):
    """True for a safe cache-relative entry path."""
    if not isinstance(path, str) or not path:
        return False
    if os.path.isabs(path) or "\\" in path:
        return False
    parts = path.split("/")
    return all(part and part not in (".", "..") for part in parts)


def rendezvous_rank(path, peers):
    """Order *peers* (``(host, port)`` pairs) for one entry path.

    Highest-random-weight hashing: every host scores every (entry,
    peer) pair the same way, so all hosts independently agree on the
    replica set for an entry without any coordination or ring state.
    """
    def score(peer):
        token = "%s|%s:%d" % (path, peer[0], peer[1])
        return hashlib.sha1(token.encode()).hexdigest()

    return sorted(peers, key=score, reverse=True)


class CachePeerServer(object):
    """Serve one host's cache directory to its peers, bounded.

    Deterministic eviction: when a ``cache-put`` pushes the store past
    *max_entries*, the oldest entries by ``(mtime, relpath)`` are
    removed until the bound holds again -- every replica holding the
    same entries under the same bound evicts the same victims.
    """

    def __init__(self, cache_dir, host="127.0.0.1", port=0,
                 max_entries=None):
        self.cache_dir = cache_dir
        self.host = host
        self.port = port
        self.max_entries = max_entries
        self.counters = {
            "gets": 0, "get_hits": 0, "puts": 0, "put_rejects": 0,
            "has": 0, "evictions": 0, "corrupt_served": 0,
        }
        self._sock = None
        self._thread = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------

    def start(self):
        os.makedirs(self.cache_dir, exist_ok=True)
        self._sock = socket.create_server((self.host, self.port))
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(
            target=self._accept_loop, name="cache-peer-accept", daemon=True
        )
        self._thread.start()
        return (self.host, self.port)

    @property
    def address(self):
        return (self.host, self.port)

    def stop(self):
        self._stop.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    # -- accept/serve --------------------------------------------------

    def _accept_loop(self):
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_conn, args=(conn,),
                name="cache-peer-conn", daemon=True,
            )
            thread.start()

    def _serve_conn(self, conn):
        conn.settimeout(PEER_TIMEOUT * 4)
        reader = conn.makefile("rb")
        writer = conn.makefile("wb")
        try:
            while not self._stop.is_set():
                try:
                    message = read_frame_blocking(
                        reader, max_bytes=MAX_REPLY_BYTES)
                except (ProtocolError, OSError):
                    return
                if message is None:
                    return
                try:
                    reply = self._dispatch(message)
                except ProtocolError as exc:
                    reply = exc.as_frame()
                try:
                    write_frame_blocking(writer, reply)
                except (ProtocolError, OSError):
                    return
        finally:
            for handle in (reader, writer):
                try:
                    handle.close()
                except OSError:
                    pass
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, message):
        kind = message.get("type")
        if kind == "cache-ping":
            return {"type": "cache-pong", "entries": self._entry_count(),
                    "counters": dict(self.counters)}
        path = message.get("path")
        if kind in ("cache-get", "cache-has", "cache-put") \
                and not _valid_relpath(path):
            return error_message("bad-request",
                                 "invalid cache entry path %r" % (path,))
        if kind == "cache-get":
            return self._do_get(path)
        if kind == "cache-has":
            with self._lock:
                self.counters["has"] += 1
            have = os.path.isfile(os.path.join(self.cache_dir, path))
            return {"type": "cache-have", "path": path, "have": have}
        if kind == "cache-put":
            return self._do_put(path, message.get("text"))
        return error_message("unknown-type",
                             "unsupported cache-peer request %r" % (kind,))

    def _do_get(self, path):
        with self._lock:
            self.counters["gets"] += 1
        text = None
        try:
            with open(os.path.join(self.cache_dir, path)) as handle:
                text = handle.read()
        except OSError:
            text = None
        if text is not None:
            with self._lock:
                self.counters["get_hits"] += 1
            garbage = get_fault_plan().peer_corrupt_payload(path)
            if garbage is not None:
                with self._lock:
                    self.counters["corrupt_served"] += 1
                text = garbage
        return {"type": "cache-entry", "path": path, "text": text}

    def _do_put(self, path, text):
        with self._lock:
            self.counters["puts"] += 1
        if not isinstance(text, str):
            with self._lock:
                self.counters["put_rejects"] += 1
            return {"type": "cache-ok", "path": path, "stored": False}
        # never trust the wire: verify the envelope before persisting,
        # so one corrupted pusher cannot poison a whole replica set
        try:
            read_envelope_text(text, CACHE_VERSION, path=path)
        except CacheCorruption:
            with self._lock:
                self.counters["put_rejects"] += 1
            return {"type": "cache-ok", "path": path, "stored": False}
        target = os.path.join(self.cache_dir, path)
        atomic_write_text(target, text)
        self._evict_over_bound()
        return {"type": "cache-ok", "path": path, "stored": True}

    # -- eviction ------------------------------------------------------

    def _entries(self):
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.cache_dir):
            for name in filenames:
                if name.startswith(".tmp-"):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, self.cache_dir)
                try:
                    stat = os.stat(full)
                except OSError:
                    continue
                found.append((stat.st_mtime, rel.replace(os.sep, "/"),
                              full, stat))
        return found

    def _entry_count(self):
        return len(self._entries())

    def _evict_over_bound(self):
        if not self.max_entries:
            return
        with self._lock:
            entries = self._entries()
            excess = len(entries) - self.max_entries
            if excess <= 0:
                return
            entries.sort(key=lambda item: (item[0], item[1]))
            for _mtime, _rel, full, stat in entries[:excess]:
                if remove_if_unchanged(full, file_signature(stat)):
                    self.counters["evictions"] += 1


class PeerSet(object):
    """Client side of the cache-peer tier for one host.

    Owns the peer list (updated by the coordinator's ``peer-update``
    frames), the read-through fetch with envelope verification, N-way
    replicated stores, and the replay log of recently completed entries
    (for post-partition reconnect).
    """

    def __init__(self, peers=(), replicas=DEFAULT_REPLICAS):
        self.replicas = max(1, replicas)
        self.counters = {
            "hits": 0, "misses": 0, "corrupt": 0,
            "puts": 0, "put_errors": 0,
        }
        self.recent = deque(maxlen=REPLAY_WINDOW)
        self._peers = []
        self._lock = threading.Lock()
        self.set_peers(peers)

    def set_peers(self, peers):
        cleaned = []
        for peer in peers or ():
            host, port = peer
            cleaned.append((str(host), int(port)))
        with self._lock:
            self._peers = cleaned

    @property
    def peers(self):
        with self._lock:
            return list(self._peers)

    def _call(self, peer, message):
        """One request/reply roundtrip to *peer*; None on any failure."""
        try:
            with socket.create_connection(peer,
                                          timeout=PEER_TIMEOUT) as conn:
                reader = conn.makefile("rb")
                writer = conn.makefile("wb")
                write_frame_blocking(writer, message)
                return read_frame_blocking(reader,
                                           max_bytes=MAX_REPLY_BYTES)
        except (OSError, ProtocolError):
            return None

    # -- read-through --------------------------------------------------

    def fetch(self, relpath):
        """Fetch one entry from the replica set; ``(text, payload)`` or
        ``None``.

        Peers are probed in rendezvous order (replica holders first).
        Every received entry is verified against its integrity envelope
        before being trusted; a corrupted reply counts and the next
        replica is tried.
        """
        peers = self.peers
        if not peers:
            return None
        for peer in rendezvous_rank(relpath, peers):
            reply = self._call(
                peer, {"type": "cache-get", "path": relpath})
            if not reply or reply.get("type") != "cache-entry":
                continue
            text = reply.get("text")
            if not isinstance(text, str):
                continue
            try:
                payload = read_envelope_text(
                    text, CACHE_VERSION,
                    path="%s:%d/%s" % (peer[0], peer[1], relpath),
                )
            except CacheCorruption:
                with self._lock:
                    self.counters["corrupt"] += 1
                continue
            with self._lock:
                self.counters["hits"] += 1
            return text, payload
        with self._lock:
            self.counters["misses"] += 1
        return None

    def has(self, relpath):
        for peer in rendezvous_rank(relpath, self.peers):
            reply = self._call(
                peer, {"type": "cache-has", "path": relpath})
            if reply and reply.get("have"):
                return True
        return False

    # -- replicated write ----------------------------------------------

    def store(self, relpath, text):
        """Replicate one entry to its top-N rendezvous peers.

        Best-effort: a dead replica is counted, not fatal -- the local
        copy plus cache-as-checkpoint semantics keep correctness; the
        replicas only buy availability.  Returns peers stored to.
        """
        self.recent.append(relpath)
        stored = 0
        peers = self.peers
        if not peers:
            return stored
        for peer in rendezvous_rank(relpath, peers)[:self.replicas]:
            reply = self._call(peer, {
                "type": "cache-put", "path": relpath, "text": text,
            })
            if reply and reply.get("stored"):
                with self._lock:
                    self.counters["puts"] += 1
                stored += 1
            else:
                with self._lock:
                    self.counters["put_errors"] += 1
        return stored

    def snapshot(self):
        with self._lock:
            return dict(self.counters)
