"""Coordinator-side handle on one remote worker node.

A :class:`NodeHandle` wraps the asyncio ``(reader, writer)`` pair of an
adopted ``node-hello`` connection and presents the *same execute
contract* as :class:`~repro.serve.supervisor.WorkerProcess` -- the
cluster supervisor schedules local subprocesses and remote nodes
through one code path.  Differences from a local worker:

* liveness is heartbeat-over-TCP (same
  :class:`~repro.serve.health.WorkerHealth` missed-beat detector);
  there is no child process to ``kill()``, so death means closing the
  connection -- the node survives, treats it as a partition, finishes
  its in-flight shard into its local cache and reconnects with replay;
* the handle measures RTT with ``node-ping``/``node-pong`` echoes and
  collects the node's cache-peer counters from its beat frames, both
  surfaced in ``repro jobs --workers``.
"""

import asyncio
import time

from repro.serve import protocol
from repro.serve.health import WorkerHealth
from repro.serve.protocol import ProtocolError


class NodeHandle(object):
    """One adopted remote node connection (coordinator side)."""

    kind = "node"

    def __init__(self, name, reader, writer, hello, beat_interval=1.0,
                 max_missed=4, on_lost=None):
        self.name = name
        self.host = hello.get("host") or "?"
        self.pid = hello.get("pid")
        peer_host = hello.get("peer_host") or "127.0.0.1"
        peer_port = hello.get("peer_port")
        self.peer_addr = ((str(peer_host), int(peer_port))
                          if peer_port else None)
        self.health = WorkerHealth(beat_interval, max_missed)
        self.state = "idle"
        self.current_job = None
        self.jobs_done = 0
        self.steals = 0
        self.rtt = None          # seconds, last ping echo
        self.peer_stats = {}     # node's PeerSet counters, last beat
        self.on_lost = on_lost
        self._reader = reader
        self._writer = writer
        self._frames = asyncio.Queue()
        self._send_lock = asyncio.Lock()
        self._open = True
        self._reader_task = None

    def start(self, loop):
        self._reader_task = loop.create_task(self._read_loop())
        return self

    # -- wire ----------------------------------------------------------

    async def _read_loop(self):
        while True:
            try:
                frame = await protocol.read_frame(
                    self._reader, max_bytes=protocol.MAX_REPLY_BYTES)
            except (ProtocolError, ConnectionError, OSError):
                frame = None
            if frame is None:
                self._open = False
                self.state = "dead"
                await self._frames.put(None)
                if self.on_lost is not None:
                    self.on_lost(self)
                return
            kind = frame.get("type")
            if kind == "beat":
                self.health.beat()
                peer = frame.get("peer")
                if isinstance(peer, dict):
                    self.peer_stats = peer
                continue
            if kind == "node-pong":
                sent = frame.get("t")
                if isinstance(sent, (int, float)):
                    self.rtt = max(0.0, time.monotonic() - sent)
                continue
            await self._frames.put(frame)

    async def send(self, message):
        """Write one frame to the node; False when the link is gone."""
        if not self._open:
            return False
        async with self._send_lock:
            try:
                await protocol.write_frame(self._writer, message)
                return True
            except (ProtocolError, ConnectionError, OSError,
                    RuntimeError):
                self._open = False
                return False

    async def ping(self):
        """Fire an RTT probe (echoed back as ``node-pong``)."""
        await self.send({"type": "node-ping", "t": time.monotonic()})

    @property
    def alive(self):
        return self._open and self.state not in ("dead", "stopped")

    def close(self):
        """Drop the connection (the node reconnects on its own)."""
        self._open = False
        if self.state != "stopped":
            self.state = "dead"
        try:
            self._writer.close()
        except (OSError, RuntimeError):
            pass

    async def request_shutdown(self):
        """Graceful node shutdown (drain path): the node exits 0."""
        await self.send({"type": "shutdown"})
        self.state = "stopped"

    async def reap(self):
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass

    # -- shard execution -----------------------------------------------

    async def execute(self, job, attempt, policy_fields=None,
                      on_progress=None, poll_interval=0.05):
        """Run *job* (a shard) on this node; ``(outcome, detail)``.

        Same outcome contract as
        :meth:`~repro.serve.supervisor.WorkerProcess.execute`:
        ``done`` / ``error`` / ``cancelled`` / ``lost``.  A cancel
        closes the connection -- the node treats it as a partition,
        finishes the shard into its local cache (harmless: first write
        wins) and reconnects.
        """
        remaining = None
        if job.deadline is not None:
            remaining = max(0.0, job.deadline - time.monotonic())
        self.state = "busy"
        self.current_job = job.id
        self.health.reset()
        sent = await self.send({"type": "job", "job": {
            "id": job.id, "key": job.key, "attempt": attempt,
            "deadline": remaining,
            "requests": [list(request) for request in job.requests],
            "policy": policy_fields or {},
        }})
        if not sent:
            self.close()
            self.current_job = None
            return "lost", "send failed"
        try:
            while True:
                try:
                    frame = await asyncio.wait_for(self._frames.get(),
                                                   poll_interval)
                except asyncio.TimeoutError:
                    if job.cancel_requested:
                        self.close()
                        return "cancelled", None
                    if not self._open:
                        return "lost", "connection dropped"
                    if self.health.dead():
                        self.close()
                        return "lost", ("no heartbeat for %d intervals"
                                        % self.health.max_missed)
                    continue
                if frame is None:
                    return "lost", "connection EOF"
                kind = frame.get("type")
                if kind == "progress" and frame.get("job_id") == job.id:
                    if on_progress is not None:
                        on_progress(job, frame.get("done", 0),
                                    frame.get("total", job.done_total))
                elif kind == "result" and frame.get("job_id") == job.id:
                    self.jobs_done += 1
                    return "done", (frame.get("payload"),
                                    frame.get("report") or {})
                elif kind == "job-error" and frame.get("job_id") == job.id:
                    return "error", frame
                # stale frames from a previous assignment are dropped
        finally:
            self.current_job = None
            if self.state == "busy":
                self.state = "idle"

    # -- observability -------------------------------------------------

    def peer_hit_rate(self):
        stats = self.peer_stats or {}
        hits = stats.get("hits", 0)
        total = hits + stats.get("misses", 0)
        return (hits / total) if total else None

    def snapshot(self):
        """One row of the ``fleet`` endpoint's ``nodes`` list."""
        return {
            "node": self.name,
            "host": self.host,
            "pid": self.pid,
            "state": self.state,
            "job": self.current_job,
            "rtt_ms": (round(self.rtt * 1000.0, 3)
                       if self.rtt is not None else None),
            "beats_missed": self.health.missed(),
            "jobs_done": self.jobs_done,
            "steals": self.steals,
            "peer": dict(self.peer_stats),
            "peer_hit_rate": self.peer_hit_rate(),
        }
