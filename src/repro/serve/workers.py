"""Worker tier: executes jobs on the fault-tolerant batch engine.

One :class:`WorkerTier` owns a small thread pool; each admitted job
occupies one thread for the duration of one
:meth:`~repro.sim.ExperimentRunner.run_batch` call.  The heavy lifting
-- process-pool fan-out, per-task retries with deterministic backoff,
hung-task timeouts, broken-pool rebuilds, serial degradation,
save-as-completed checkpointing into the shared result cache -- is the
batch engine's existing machinery; the tier adds only the asyncio
bridging:

* the event loop awaits ``run_in_executor`` so the server keeps
  serving status/stream/statz traffic while simulations run;
* the batch engine's ``progress`` callback is trampolined back onto the
  loop (``call_soon_threadsafe``) to fan out per-job progress events to
  streaming subscribers;
* the same callback implements **cooperative cancellation**: when a
  job's ``cancel_requested`` flag is up, the next progress tick raises
  :class:`JobCancelled` inside the batch, aborting at a task boundary.
  Everything already computed is persisted (the cache is the
  checkpoint), so a cancelled-then-resubmitted job resumes instead of
  restarting.

A worker crash (``REPRO_FAULTS`` or a real segfault) never reaches the
server loop as anything but a structured
:class:`~repro.resilience.SimulationError` -- the server stays up and
the job is marked failed.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.resilience import FailurePolicy


class JobCancelled(Exception):
    """Raised inside a batch to abort a cancelled job at a task boundary."""


class WorkerTier(object):
    """Thread-pool bridge between the asyncio loop and the batch engine.

    :param runner: shared :class:`~repro.sim.ExperimentRunner` (its disk
        cache and in-memory memo deduplicate across jobs).
    :param max_concurrent: jobs executing simultaneously; additional
        admitted jobs wait in the dispatcher.
    :param batch_jobs: worker processes per batch (``1`` = in-thread
        serial execution -- the safe default for a server process; raise
        it to fan each sweep out over a process pool).
    :param policy: default :class:`~repro.resilience.FailurePolicy`;
        per-job overrides (``retries`` / ``on_error`` / ``task_timeout``
        in the submission spec) are layered on top.
    """

    def __init__(self, runner, max_concurrent=2, batch_jobs=1, policy=None):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1, got %r"
                             % (max_concurrent,))
        if batch_jobs < 1:
            raise ValueError("batch_jobs must be >= 1, got %r"
                             % (batch_jobs,))
        self.runner = runner
        self.max_concurrent = max_concurrent
        self.batch_jobs = batch_jobs
        self.policy = policy
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent, thread_name_prefix="serve-worker"
        )

    def job_policy(self, job):
        """The effective :class:`FailurePolicy` for *job*.

        Starts from the tier default (or the ``REPRO_*`` environment)
        and applies any validated per-job overrides from the submission
        spec.
        """
        base = self.policy
        if base is None:
            base = FailurePolicy.from_env()
        overrides = job.spec.get("policy") or {}
        if overrides:
            from dataclasses import replace

            base = replace(base, **overrides)
        return base

    async def run_job(self, loop, job, progress_cb=None):
        """Execute *job*; returns ``(results, report)`` dicts.

        *progress_cb(job, done, total)* is invoked on the event loop
        after every resolved slot.  Raises :class:`JobCancelled` when
        the job's cancel flag interrupts the batch; any simulation
        failure propagates as the batch engine's structured error.
        """
        policy = self.job_policy(job)

        def progress(done, total):
            if job.cancel_requested:
                raise JobCancelled(job.id)
            if progress_cb is not None:
                loop.call_soon_threadsafe(progress_cb, job, done, total)

        def body():
            results, report = self.runner.run_batch(
                job.requests, jobs=self.batch_jobs, policy=policy,
                progress=progress,
            )
            payload = [
                None if result is None else result.as_dict()
                for result in results
            ]
            return payload, report.as_dict()

        return await loop.run_in_executor(self._executor, body)

    def shutdown(self, wait=True):
        self._executor.shutdown(wait=wait)
