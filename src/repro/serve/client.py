"""Pure-stdlib blocking client for the job server.

No third-party dependencies, no asyncio: a :class:`ServeClient` is a
plain TCP socket speaking the length-prefixed JSON frame protocol
(:mod:`repro.serve.protocol`), suitable for scripts, notebooks and the
``repro submit`` / ``repro jobs`` CLI.

Request/reply calls share one connection (the protocol is strictly
sequential per connection); :meth:`ServeClient.stream` opens a
*dedicated* connection for its event feed so an abandoned generator
can never desynchronise the main channel.

Server-side typed errors (``busy``, ``bad-request``, ``unknown-job``,
``shutting-down``, ...) are raised as :class:`ServeError` with the
wire ``code`` preserved, so callers can implement backoff with a
simple ``except ServeError as e: if e.code == "busy"``.

Busy-class errors (``busy`` from admission control, ``circuit-open``
from a tripped breaker) are *transient by contract*: construct the
client with ``busy_retries=N`` (or pass it per submit) and submissions
retry up to N times under the repository's deterministic exponential
backoff (:func:`repro.resilience.backoff_delay` -- same message, same
schedule).  ``deadline-exceeded`` is a hard stop: the deadline the
caller itself set has passed, so retrying is never correct and the
client never does.

Example::

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1", 7861) as client:
        ticket = client.submit_sweep(
            ["libquantum", "mcf"], ["none", "stride", "bfetch"],
            instructions=20_000,
        )
        for event in client.stream(ticket["job_id"]):
            print(event["ev"], event.get("done"), event.get("total"))
        reply = client.result(ticket["job_id"])
        results = reply["result"]      # list of RunResult dicts
"""

import socket
import time
from collections import deque

from repro.serve import protocol
from repro.serve.protocol import BUSY_CLASS_CODES, FrameDecoder, ProtocolError

DEFAULT_PORT = 7861


class ServeError(Exception):
    """A typed error reply (or protocol failure) from the server.

    :ivar code: wire error code (see
        :data:`repro.serve.protocol.ERROR_CODES`).
    :ivar data: the full error frame payload.
    """

    def __init__(self, code, message, data=None):
        super().__init__("%s: %s" % (code, message))
        self.code = code
        self.data = data or {}


class ServeClient(object):
    """Blocking client over one TCP connection (lazily opened).

    :param timeout: socket timeout, seconds, for connect and for every
        non-waiting call; waiting calls (``result(wait=True)``,
        ``stream``) disable it for the blocking read.
    :param busy_retries: default retry budget for busy-class submission
        rejections (``busy`` / ``circuit-open``); ``0`` (the default)
        preserves fail-fast behaviour.  Retries sleep the deterministic
        backoff schedule derived from the submission payload.
    """

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, timeout=30.0,
                 busy_retries=0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.busy_retries = busy_retries
        self.reconnects = 0      # transparent reconnect-and-resend count
        self._sock = None
        self._decoder = None
        self._pending = deque()

    # ------------------------------------------------------------------
    # plumbing

    def _connect(self):
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _ensure(self):
        if self._sock is None:
            self._sock = self._connect()
            self._decoder = FrameDecoder(max_bytes=protocol.MAX_REPLY_BYTES)
            self._pending = deque()
        return self._sock

    def close(self):
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._decoder = None
                self._pending = deque()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _request(self, message, wait=False, _retried=False):
        """Send one frame, return the reply; raise :class:`ServeError`.

        A *dropped* connection (reset, broken pipe, clean EOF, or a
        frame truncated mid-read) is retried transparently exactly
        once: reconnect, resend the same frame.  This is safe because
        every request is idempotent -- submissions coalesce onto the
        live job by digest, reads are pure -- so a retry can never
        double-execute work.  Typed server errors (including
        ``deadline-exceeded``) are never retried here, and a second
        transport failure propagates: one bounded resend, not a loop.

        On any transport/protocol failure the connection is dropped so
        the next call reconnects cleanly.
        """
        try:
            sock = self._ensure()
        except OSError as exc:
            raise ServeError("connection", "server unreachable: %s" % exc)
        try:
            sock.settimeout(None if wait else self.timeout)
            protocol.send_frame(sock, message)
            reply = protocol.recv_frame(sock, self._decoder, self._pending)
        except ProtocolError as exc:
            self.close()
            if exc.code == "truncated" and not _retried:
                self.reconnects += 1
                return self._request(message, wait=wait, _retried=True)
            raise ServeError(exc.code, str(exc))
        except socket.timeout as exc:
            # a timeout says "slow", not "gone": do not resend blindly
            self.close()
            raise ServeError("connection", "server unreachable: %s" % exc)
        except OSError as exc:
            self.close()
            if not _retried:
                self.reconnects += 1
                return self._request(message, wait=wait, _retried=True)
            raise ServeError("connection", "server unreachable: %s" % exc)
        if reply is None:
            self.close()
            if not _retried:
                self.reconnects += 1
                return self._request(message, wait=wait, _retried=True)
            raise ServeError("connection",
                             "server closed the connection")
        if reply.get("type") == "error":
            raise ServeError(reply.get("code", "internal"),
                             reply.get("message", ""), data=reply)
        return reply

    # ------------------------------------------------------------------
    # endpoints

    def ping(self):
        return self._request({"type": "ping"})

    def catalog(self):
        """The server's benchmark/prefetcher catalog payload."""
        return self._request({"type": "catalog"})["catalog"]

    def statz(self):
        """Flat ``{stat_name: value}`` server metrics dump."""
        return self._request({"type": "statz"})["stats"]

    def jobs(self, limit=50):
        """Job summaries (newest first) plus the queued-id order."""
        return self._request({"type": "jobs", "limit": limit})

    def fleet(self):
        """Worker fleet snapshot + circuit breaker states."""
        return self._request({"type": "fleet"})

    def submit(self, benchmark, prefetcher="none", instructions=None,
               variant=0, priority=0, retries=None, on_error=None,
               task_timeout=None, deadline_ms=None, busy_retries=None):
        """Submit one single-run job; returns the submission ticket.

        The ticket carries ``job_id`` and ``coalesced`` (True when this
        submission deduplicated onto an already-live identical job).
        """
        message = {
            "type": "submit", "kind": "single", "benchmark": benchmark,
            "prefetcher": prefetcher, "variant": variant,
            "priority": priority,
        }
        return self._submit(message, instructions, retries, on_error,
                            task_timeout, deadline_ms, busy_retries)

    def submit_sweep(self, benchmarks, prefetchers, instructions=None,
                     variant=0, priority=0, retries=None, on_error=None,
                     task_timeout=None, deadline_ms=None,
                     busy_retries=None):
        """Submit a ``benchmarks x prefetchers`` sweep as one job."""
        message = {
            "type": "submit", "kind": "sweep",
            "benchmarks": list(benchmarks),
            "prefetchers": list(prefetchers),
            "variant": variant, "priority": priority,
        }
        return self._submit(message, instructions, retries, on_error,
                            task_timeout, deadline_ms, busy_retries)

    def _submit(self, message, instructions, retries, on_error,
                task_timeout, deadline_ms=None, busy_retries=None):
        if instructions is not None:
            message["instructions"] = instructions
        if retries is not None:
            message["retries"] = retries
        if on_error is not None:
            message["on_error"] = on_error
        if task_timeout is not None:
            message["task_timeout"] = task_timeout
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        budget = (self.busy_retries if busy_retries is None
                  else busy_retries)
        return self._submit_with_retries(message, budget)

    def _submit_with_retries(self, message, budget):
        """Bounded, deterministic retry loop for busy-class rejections.

        ``deadline-exceeded`` (and every non-busy code) propagates
        immediately -- only load-shedding rejections are transient.
        The backoff schedule is a pure function of the submission
        payload, so identical clients under identical rejection storms
        retry identically (and de-synchronise *across* different
        submissions).
        """
        import json as _json

        from repro.resilience import FailurePolicy, backoff_delay

        policy = FailurePolicy()
        key = _json.dumps(message, sort_keys=True)
        attempt = 0
        while True:
            try:
                return self._request(message)
            except ServeError as exc:
                if exc.code not in BUSY_CLASS_CODES or attempt >= budget:
                    raise
            time.sleep(backoff_delay(policy, key, attempt))
            attempt += 1

    def status(self, job_id):
        return self._request({"type": "status", "job_id": job_id})

    def result(self, job_id, wait=True):
        """Fetch a job's outcome; with ``wait`` blocks until terminal.

        :returns: the result reply -- ``reply["state"]`` is the terminal
            state; for ``done`` jobs ``reply["result"]`` is the list of
            per-run result dicts (request order) and ``reply["batch"]``
            the batch report.
        :raises ServeError: with the job's structured error as ``data``
            when the job failed.
        """
        reply = self._request({"type": "result", "job_id": job_id,
                               "wait": bool(wait)}, wait=wait)
        if reply.get("state") == "failed":
            error = reply.get("error") or {}
            raise ServeError(error.get("code", "simulation-error"),
                             error.get("message", "job failed"),
                             data=reply)
        return reply

    def cancel(self, job_id):
        """Cancel a queued/running job; typed error if already terminal."""
        return self._request({"type": "cancel", "job_id": job_id})

    def stream(self, job_id):
        """Generator of lifecycle events for *job_id* until terminal.

        Opens its own connection; the generator ends after the terminal
        event (``done`` / ``failed`` / ``cancelled``).  Closing the
        generator early just drops that connection -- the server
        unsubscribes on disconnect.
        """
        sock = self._connect()
        decoder = FrameDecoder(max_bytes=protocol.MAX_REPLY_BYTES)
        pending = deque()
        try:
            sock.settimeout(None)
            protocol.send_frame(sock, {"type": "stream", "job_id": job_id})
            start = protocol.recv_frame(sock, decoder, pending)
            if start is None:
                raise ServeError("connection",
                                 "server closed the stream")
            if start.get("type") == "error":
                raise ServeError(start.get("code", "internal"),
                                 start.get("message", ""), data=start)
            while True:
                event = protocol.recv_frame(sock, decoder, pending)
                if event is None:
                    return
                yield event
                if event.get("ev") in ("done", "failed", "cancelled"):
                    return
        except ProtocolError as exc:
            raise ServeError(exc.code, str(exc))
        finally:
            sock.close()

    # ------------------------------------------------------------------
    # conveniences

    def run(self, benchmark, prefetcher="none", instructions=None,
            variant=0, **kwargs):
        """Submit one run and block for its result dict."""
        ticket = self.submit(benchmark, prefetcher, instructions,
                             variant=variant, **kwargs)
        reply = self.result(ticket["job_id"], wait=True)
        return reply["result"][0]

    def wait_until_up(self, attempts=50, delay=0.1):
        """Poll ``ping`` until the server answers (startup scripts)."""
        import time as _time

        last = None
        for _ in range(attempts):
            try:
                return self.ping()
            except ServeError as exc:
                last = exc
                _time.sleep(delay)
        raise last
