"""The asyncio job server: simulation-as-a-service.

One :class:`JobServer` turns the repository's batch substrate into a
network service.  Life of a submission::

    client frame {"type": "submit", ...}
        -> validate against the shared catalog (repro.sim.catalog)
        -> coalesce: identical live submission?  attach, don't recompute
        -> admit: bounded priority queue; past the high-water mark the
           reply is a typed "busy" error (backpressure, HTTP-429 style)
        -> dispatch: a bounded number of jobs execute concurrently on
           the WorkerTier (ExperimentRunner.run_batch: process fan-out,
           retries, timeouts, pool rebuilds, cache-as-checkpoint)
        -> progress/heartbeat events stream to subscribed clients
        -> terminal state (done / failed / cancelled) + metrics + trace

Execution backends: by default jobs run on the in-process
:class:`~repro.serve.workers.WorkerTier`; with ``workers >= 1``
(``REPRO_WORKERS`` / ``repro serve --workers N``) they run on a
supervised subprocess fleet (:mod:`repro.serve.fleet`) with
heartbeat liveness, automatic respawn and worker-loss requeue.
Client-supplied ``deadline_ms`` propagates submit -> queue -> worker
(expired jobs are shed with a typed ``deadline-exceeded`` error) and a
per-benchmark circuit breaker (:mod:`repro.serve.breaker`) rejects
persistently-failing workloads with a busy-class ``circuit-open``.

Endpoints (request ``type`` values): ``submit``, ``status``, ``result``
(optionally blocking until terminal), ``cancel``, ``stream``,
``catalog``, ``statz``, ``jobs``, ``fleet``, ``ping``.  Every failure
is a typed
``error`` frame (see :mod:`repro.serve.protocol`); nothing a client
sends -- malformed frames, oversized payloads, mid-stream disconnects,
cancels of finished jobs -- can wedge the server.

Observability: server-level metrics live in a
:class:`~repro.serve.metrics.ServeMetrics` registry served at the
``statz`` endpoint; job lifecycle events additionally flow through a
``serve``-category :class:`~repro.obs.Tracer` channel into a JSONL
file when ``trace_path`` is set (same schema and atomic writer as the
simulator's traces).

Shutdown: :meth:`JobServer.drain` (wired to SIGTERM/SIGINT by the CLI)
stops admitting, lets queued + running jobs finish within a grace
period, then requests cooperative cancellation -- every completed task
is already persisted in the result cache, so interrupted sweeps resume
on resubmission.  Stats and traces are flushed before the loop exits.
"""

import asyncio
import hashlib
import json
import os
import time

from repro.obs import Tracer
from repro.obs.io import atomic_write_text
from repro.resilience import ON_ERROR_MODES, SimulationError
from repro.serve import protocol
from repro.serve.breaker import BreakerBoard
from repro.serve.fleet import DeadlineExceeded, WorkerSupervisor
from repro.serve.jobs import JobTable
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import ProtocolError, error_message
from repro.serve.queue import AdmissionQueue, QueueFull
from repro.serve.workers import JobCancelled, WorkerTier
from repro.sim.catalog import catalog as build_catalog
from repro.sim.runner import ExperimentRunner, RunRequest

#: event names that end a stream subscription
TERMINAL_EVENTS = ("done", "failed", "cancelled")

#: request kinds accepted by ``submit``
SUBMIT_KINDS = ("single", "sweep")

DEFAULT_HIGH_WATER = 64
DEFAULT_MAX_CONCURRENT = 2
DEFAULT_MAX_REQUESTS_PER_JOB = 256
DEFAULT_MAX_INSTRUCTIONS = 10_000_000
DEFAULT_HEARTBEAT_SECONDS = 5.0
DEFAULT_DRAIN_GRACE = 30.0
DEFAULT_BEAT_INTERVAL = 1.0
_MAX_RETRY_OVERRIDE = 10
_PRIORITY_RANGE = (-100, 100)
_DEADLINE_MS_RANGE = (1, 86_400_000)

#: environment knob for the fleet size (``repro serve --workers`` wins)
ENV_WORKERS = "REPRO_WORKERS"

#: environment knob enabling the cluster tier (``--cluster`` wins)
ENV_CLUSTER = "REPRO_CLUSTER"


def _bad(message, **extra):
    error = ProtocolError(message, code="bad-request")
    error.extra = extra
    return error


def _check_int(value, name, low, high):
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad("%s must be an integer, got %r" % (name, value))
    if not low <= value <= high:
        raise _bad("%s must be in [%d, %d], got %d"
                   % (name, low, high, value))
    return value


class JobServer(object):
    """Asyncio TCP job server over length-prefixed JSON frames.

    :param host:/:param port: bind address (``port=0`` picks a free one,
        reported by :attr:`address` after :meth:`start`).
    :param cache_dir: result-cache directory shared by every job (also
        the dedup/coalescing identity and the crash checkpoint).
    :param runner: pre-built :class:`ExperimentRunner` (tests); when
        None one is built over *cache_dir*.
    :param high_water: admission-queue bound (backpressure threshold).
    :param max_concurrent: jobs executing simultaneously.
    :param batch_jobs: process-pool width per job batch (1 = in-thread).
    :param policy: default :class:`~repro.resilience.FailurePolicy`.
    :param max_requests_per_job: sweep size cap per submission.
    :param max_instructions: per-run instruction budget cap.
    :param heartbeat_interval: seconds between heartbeat events for
        running jobs (0 disables).
    :param retain_jobs: terminal jobs kept for late result fetches.
    :param stats_path: JSON stats dump written on drain.
    :param trace_path: JSONL job-lifecycle trace written via the obs
        tracer ("serve" category).
    :param drain_grace: seconds :meth:`drain` waits before requesting
        cooperative cancellation of still-running jobs.
    :param workers: fleet size; ``None`` reads ``REPRO_WORKERS`` and
        ``0`` keeps the in-process tier.  With a fleet,
        ``max_concurrent`` is ignored (one job per worker).
    :param beat_interval: fleet worker heartbeat period, seconds.
    :param max_missed: missed beats before a worker is declared dead.
    :param breaker: pre-configured
        :class:`~repro.serve.breaker.BreakerBoard` (tests); a default
        board is built when None.
    """

    def __init__(self, host="127.0.0.1", port=0, cache_dir=None,
                 runner=None, high_water=DEFAULT_HIGH_WATER,
                 max_concurrent=DEFAULT_MAX_CONCURRENT, batch_jobs=1,
                 policy=None,
                 max_requests_per_job=DEFAULT_MAX_REQUESTS_PER_JOB,
                 max_instructions=DEFAULT_MAX_INSTRUCTIONS,
                 heartbeat_interval=DEFAULT_HEARTBEAT_SECONDS,
                 retain_jobs=256, stats_path=None, trace_path=None,
                 drain_grace=DEFAULT_DRAIN_GRACE,
                 max_frame_bytes=protocol.MAX_FRAME_BYTES,
                 workers=None, beat_interval=DEFAULT_BEAT_INTERVAL,
                 max_missed=4, breaker=None, cluster=None,
                 cluster_min_local=0, cluster_max_local=4,
                 peer_port=0, shard_tasks=None):
        self.host = host
        self.port = port
        self.max_requests_per_job = max_requests_per_job
        self.max_instructions = max_instructions
        self.heartbeat_interval = heartbeat_interval
        self.stats_path = stats_path
        self.trace_path = trace_path
        self.drain_grace = drain_grace
        self.max_frame_bytes = max_frame_bytes
        if workers is None:
            workers = int(os.environ.get(ENV_WORKERS, "0") or 0)
        if cluster is None:
            cluster = bool(int(os.environ.get(ENV_CLUSTER, "0") or 0))
        self._tmp_cache = None
        if (workers >= 1 or cluster) and cache_dir is None \
                and runner is None:
            # fleet workers are separate processes: they need a real
            # shared on-disk cache (it is also the requeue checkpoint)
            import tempfile

            cache_dir = self._tmp_cache = tempfile.mkdtemp(
                prefix="repro-fleet-cache-"
            )
        self.runner = runner if runner is not None else ExperimentRunner(
            cache_dir=cache_dir
        )
        self.table = JobTable(retain=retain_jobs)
        self.queue = AdmissionQueue(high_water=high_water,
                                    on_shed=self._shed_expired)
        self.metrics = ServeMetrics(queue=self.queue, table=self.table)
        self.cluster = None
        if cluster:
            from repro.serve.cluster.supervisor import ClusterSupervisor

            fleet_cache = cache_dir
            if fleet_cache is None:
                fleet_cache = getattr(self.runner, "cache_dir", None)
            self.tier = None
            self.fleet = None
            self.cluster = ClusterSupervisor(
                cache_dir=fleet_cache, runner=self.runner,
                local_workers=workers, beat_interval=beat_interval,
                max_missed=max_missed, policy=policy,
                batch_jobs=batch_jobs, metrics=self.metrics,
                min_local=cluster_min_local, max_local=cluster_max_local,
                queue_depth=lambda: len(self.queue),
                high_water=high_water, dispatch_width=max_concurrent,
                shard_tasks=shard_tasks, peer_port=peer_port,
                on_degraded=self._on_degraded,
            )
            self.executor = self.cluster
            self.metrics.attach_cluster(self.cluster)
        elif workers >= 1:
            fleet_cache = cache_dir
            if fleet_cache is None:
                # a pre-built runner: share its disk cache when it has one
                fleet_cache = getattr(self.runner, "cache_dir", None)
            self.tier = None
            self.fleet = WorkerSupervisor(
                cache_dir=fleet_cache, workers=workers,
                beat_interval=beat_interval, max_missed=max_missed,
                policy=policy, batch_jobs=batch_jobs,
                metrics=self.metrics,
            )
            self.executor = self.fleet
            self.metrics.attach_fleet(self.fleet)
        else:
            self.tier = WorkerTier(self.runner,
                                   max_concurrent=max_concurrent,
                                   batch_jobs=batch_jobs, policy=policy)
            self.fleet = None
            self.executor = self.tier
        self.breakers = breaker if breaker is not None else BreakerBoard()
        self.breakers.on_transition = self._breaker_transition
        self.catalog = build_catalog()
        self._benchmarks = {
            entry["name"] for entry in self.catalog["benchmarks"]
        }
        self._prefetchers = set(self.catalog["prefetchers"])
        self.tracer = (Tracer({"serve": 1.0}, path=trace_path)
                       if trace_path else None)
        self._serve_channel = (self.tracer.channel("serve")
                               if self.tracer else None)
        self._trace_seq = 0
        self.draining = False
        self.loop = None
        self._server = None
        self._slots = None
        self._dispatcher = None
        self._heartbeat = None
        self._exec_tasks = set()
        self._closed = None

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self):
        """Bind, start the dispatcher and heartbeat; returns *self*."""
        self.loop = asyncio.get_running_loop()
        if self.fleet is not None:
            await self.fleet.start()
        if self.cluster is not None:
            await self.cluster.start()
        self._slots = asyncio.Semaphore(self.executor.max_concurrent)
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        self._dispatcher = self.loop.create_task(self._dispatch_loop())
        if self.heartbeat_interval:
            self._heartbeat = self.loop.create_task(self._heartbeat_loop())
        return self

    @property
    def address(self):
        return (self.host, self.port)

    async def wait_closed(self):
        await self._closed.wait()

    async def drain(self, grace=None):
        """Graceful shutdown: finish (or checkpoint-cancel) and exit.

        1. stop admitting (submits get ``shutting-down`` errors);
        2. let the dispatcher finish every already-queued job;
        3. after *grace* seconds, flip the cancel flag on still-running
           jobs -- they stop at the next task boundary with all completed
           work persisted in the result cache;
        4. flush stats + trace, close the listener, wake
           :meth:`wait_closed`.
        """
        if self.draining:
            await self._closed.wait()
            return
        self.draining = True
        grace = self.drain_grace if grace is None else grace
        self.queue.close()
        # phase 1: give queued + running jobs *grace* seconds to finish
        # normally (the dispatcher exits once the queue runs dry)
        await asyncio.wait([self._dispatcher], timeout=grace)
        if not self._dispatcher.done():
            # phase 2: grace expired -- drop what is still queued and ask
            # running jobs to stop at their next task boundary (their
            # completed work is already checkpointed in the result cache)
            for job in self.table.active_jobs():
                job.cancel_requested = True
                if job.state == "queued":
                    self.queue.discard(job)
                    job.mark_terminal("cancelled")
                    self._publish(job, "cancelled", done=0,
                                  total=job.done_total, drained=True)
                    self.table.finish(job)
                    self.metrics.record_job(job)
            await asyncio.wait([self._dispatcher], timeout=max(grace, 5.0))
        pending = [task for task in self._exec_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=max(grace, 5.0))
        for task in [self._dispatcher] + list(self._exec_tasks):
            if not task.done():
                task.cancel()  # a truly hung simulation; do not wait on it
        if self._heartbeat is not None:
            self._heartbeat.cancel()
        self._server.close()
        await self._server.wait_closed()
        if self.tier is not None:
            self.tier.shutdown(wait=False)
        if self.fleet is not None:
            await self.fleet.shutdown()
        if self.cluster is not None:
            await self.cluster.shutdown()
        self.flush()
        if self._tmp_cache is not None:
            import shutil

            shutil.rmtree(self._tmp_cache, ignore_errors=True)
        self._closed.set()

    def flush(self):
        """Write the stats dump and the lifecycle trace (atomic)."""
        if self.stats_path:
            atomic_write_text(
                self.stats_path,
                json.dumps(self.metrics.dump(), indent=2, sort_keys=True)
                + "\n",
            )
        if self.tracer is not None:
            self.tracer.flush()

    # ------------------------------------------------------------------
    # events

    def _trace(self, ev, job, **fields):
        if self._serve_channel is None:
            return
        self._trace_seq += 1
        self._serve_channel.emit(ev, self._trace_seq, job=job.id, **fields)

    def _publish(self, job, ev, **fields):
        """Fan one lifecycle event out to subscribers (and the trace)."""
        event = {"type": "event", "job_id": job.id, "ev": ev,
                 "seq": next(job.events_seq), "state": job.state}
        event.update(fields)
        for queue in list(job.subscribers):
            queue.put_nowait(event)
        self._trace(ev, job, **{
            key: value for key, value in fields.items()
            if isinstance(value, (int, float, str, bool)) or value is None
        })
        return event

    def _on_progress(self, job, done, total):
        """Trampolined onto the loop by the worker tier."""
        job.done_count = done
        self._publish(job, "progress", done=done, total=total)

    async def _heartbeat_loop(self):
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            now = time.monotonic()
            for job in self.table.active_jobs():
                if job.state != "running" or job.started is None:
                    continue
                self._publish(
                    job, "heartbeat", done=job.done_count,
                    total=job.done_total,
                    elapsed=round(now - job.started, 3),
                )

    # ------------------------------------------------------------------
    # dispatch + execution

    async def _dispatch_loop(self):
        while True:
            await self._slots.acquire()
            job = await self.queue.pop()
            if job is None:
                self._slots.release()
                return
            # claim synchronously (no await between pop and here), so a
            # cancel arriving next tick sees "running" and goes the
            # cooperative route instead of double-discounting the queue
            job.state = "running"
            job.started = time.monotonic()
            task = self.loop.create_task(self._execute(job))
            self._exec_tasks.add(task)
            task.add_done_callback(self._exec_tasks.discard)

    async def _execute(self, job):
        self._publish(job, "started", runs=job.done_total)
        try:
            results, report = await self.executor.run_job(
                self.loop, job, self._on_progress
            )
        except JobCancelled:
            job.mark_terminal("cancelled")
            self._publish(job, "cancelled", done=job.done_count,
                          total=job.done_total)
        except DeadlineExceeded:
            job.error = {
                "code": "deadline-exceeded",
                "error_type": "DeadlineExceeded",
                "message": "deadline expired before the job could finish "
                           "(completed work is checkpointed in the cache)",
            }
            job.mark_terminal("failed")
            self.metrics.bump("fleet.sheds")
            self._publish(job, "failed", error=job.error)
        except SimulationError as exc:
            job.error = {
                "code": "simulation-error",
                "error_type": type(exc).__name__,
                "message": str(exc),
                "attempts": getattr(exc, "attempts", 0),
                "request": repr(getattr(exc, "request", None)),
            }
            job.mark_terminal("failed")
            self._publish(job, "failed", error=job.error)
        except Exception as exc:  # noqa: BLE001 - server must survive
            job.error = {
                "code": "internal",
                "error_type": type(exc).__name__,
                "message": str(exc),
            }
            job.mark_terminal("failed")
            self._publish(job, "failed", error=job.error)
        else:
            job.result = results
            job.report = report
            job.done_count = job.done_total
            job.mark_terminal("done")
            self._publish(
                job, "done", runs=job.done_total,
                cache_hits=report.get("hits", 0),
                computed=report.get("misses", 0),
                latency=round(job.latency, 6),
            )
        finally:
            self.table.finish(job)
            self.metrics.record_job(job)
            self._record_breaker(job)
            if self.tracer is not None:
                self.tracer.flush()
            self._slots.release()

    # ------------------------------------------------------------------
    # load shedding + circuit breaking

    def _shed_expired(self, job):
        """Queue callback: a popped job's deadline already expired.

        The job never reaches a worker; waiting clients get a typed
        ``deadline-exceeded`` failure immediately.
        """
        job.error = {
            "code": "deadline-exceeded",
            "error_type": "DeadlineExceeded",
            "message": "deadline expired while queued",
        }
        job.mark_terminal("failed")
        self.metrics.bump("fleet.sheds")
        self._publish(job, "failed", error=job.error)
        self.table.finish(job)
        self.metrics.record_job(job)

    def _breaker_transition(self, benchmark, old, new):
        counter = {"open": "fleet.breaker.opened",
                   "half-open": "fleet.breaker.half_open",
                   "closed": "fleet.breaker.closed"}[new]
        self.metrics.bump(counter)
        if self._serve_channel is not None:
            self._trace_seq += 1
            self._serve_channel.emit(
                "breaker", self._trace_seq, job="-", benchmark=benchmark,
                old=old, new=new,
            )

    def _on_degraded(self, live_nodes):
        """Cluster callback: the live-node count crossed zero (either way)."""
        if self._serve_channel is not None:
            self._trace_seq += 1
            self._serve_channel.emit(
                "cluster-degraded", self._trace_seq, job="-",
                nodes=live_nodes, degraded=int(live_nodes == 0),
            )

    def _record_breaker(self, job):
        """Fold one terminal job into its benchmarks' breakers.

        Only *verdicts* count: cancellations and deadline sheds say
        nothing about the benchmark's health and are skipped.  A sweep
        outcome is attributed to every benchmark it touched.
        """
        if job.state == "done":
            success = True
        elif job.state == "failed":
            code = (job.error or {}).get("code")
            if code == "deadline-exceeded":
                return
            success = False
        else:
            return  # cancelled
        for benchmark in job.spec.get("benchmarks") or []:
            self.breakers.record(benchmark, success)

    # ------------------------------------------------------------------
    # connection handling

    async def _handle_conn(self, reader, writer):
        self.metrics.bump("connections.opened")
        adopted = False
        try:
            while True:
                try:
                    message = await protocol.read_frame(
                        reader, self.max_frame_bytes
                    )
                except ProtocolError as exc:
                    self.metrics.bump("protocol_errors")
                    if exc.code == "truncated":
                        break  # peer is gone; nothing to reply to
                    await self._safe_send(writer, exc.as_frame())
                    if exc.code == "too-large":
                        break  # cannot resync without the oversized body
                    continue  # framing intact (bad-json/bad-frame)
                if message is None:
                    break  # clean EOF
                if message.get("type") == "node-hello" \
                        and self.cluster is not None \
                        and not self.draining:
                    # hand the connection to the cluster supervisor; the
                    # NodeHandle's reader task owns it from here on
                    await self.cluster.adopt_node(message, reader, writer)
                    adopted = True
                    break
                if not await self._serve_one(message, reader, writer):
                    break
        except (ConnectionError, OSError):
            pass  # peer vanished; the server marches on
        finally:
            if not adopted:
                self.metrics.bump("connections.closed")
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _serve_one(self, message, reader, writer):
        """Dispatch one message; returns False to close the connection."""
        self.metrics.bump("requests.total")
        kind = message["type"]
        try:
            if kind == "stream":
                return await self._on_stream(message, writer)
            handler = getattr(self, "_on_%s" % kind.replace("-", "_"), None)
            if handler is None:
                raise ProtocolError("unknown request type %r" % kind,
                                    code="unknown-type")
            reply = await handler(message)
        except ProtocolError as exc:
            self.metrics.bump("requests.errors")
            frame = exc.as_frame()
            frame.update(getattr(exc, "extra", None) or {})
            return await self._safe_send(writer, frame)
        except Exception as exc:  # noqa: BLE001 - typed internal error
            self.metrics.bump("requests.errors")
            return await self._safe_send(writer, error_message(
                "internal", "%s: %s" % (type(exc).__name__, exc)
            ))
        return await self._safe_send(writer, reply)

    async def _safe_send(self, writer, message):
        try:
            await protocol.write_frame(writer, message)
            return True
        except ProtocolError as exc:
            # the *reply* failed to encode (e.g. absurdly large result)
            try:
                await protocol.write_frame(writer, exc.as_frame())
                return True
            except (ProtocolError, ConnectionError, OSError):
                return False
        except (ConnectionError, OSError, RuntimeError):
            return False

    # ------------------------------------------------------------------
    # request handlers

    def _require_job(self, message):
        job_id = message.get("job_id")
        if not isinstance(job_id, str):
            raise _bad('missing string "job_id" field')
        job = self.table.get(job_id)
        if job is None:
            raise ProtocolError("unknown job id %r" % job_id,
                                code="unknown-job")
        return job

    async def _on_ping(self, message):
        return {"type": "pong", "draining": self.draining,
                "queue_depth": len(self.queue)}

    async def _on_catalog(self, message):
        return {"type": "catalog", "catalog": self.catalog}

    async def _on_statz(self, message):
        from repro.trace.store import replay_counters
        stats = self.metrics.dump()
        stats["trace"] = dict(replay_counters)
        return {"type": "statz", "stats": stats}

    async def _on_jobs(self, message):
        limit = message.get("limit", 50)
        if limit is not None:
            limit = _check_int(limit, "limit", 1, 10_000)
        return {"type": "jobs", "jobs": self.table.snapshots(limit=limit),
                "queued": self.queue.snapshot()}

    async def _on_status(self, message):
        job = self._require_job(message)
        reply = {"type": "status"}
        reply.update(job.snapshot())
        return reply

    async def _on_result(self, message):
        job = self._require_job(message)
        if message.get("wait", True) and not job.terminal:
            await job.done_event().wait()
        reply = {"type": "result", "job_id": job.id, "state": job.state,
                 "done": job.done_count, "runs": job.done_total}
        if job.state == "done":
            reply["result"] = job.result
            reply["batch"] = job.report
        elif job.error is not None:
            reply["error"] = job.error
        return reply

    async def _on_cancel(self, message):
        job = self._require_job(message)
        if job.terminal:
            raise ProtocolError(
                "job %s is already %s" % (job.id, job.state),
                code="not-cancellable",
            )
        if job.state == "queued":
            job.cancel_requested = True
            self.queue.discard(job)
            job.mark_terminal("cancelled")
            self._publish(job, "cancelled", done=0, total=job.done_total)
            self.table.finish(job)
            self.metrics.record_job(job)
            return {"type": "cancelled", "job_id": job.id,
                    "state": "cancelled"}
        # running: cooperative -- the worker aborts at the next task
        # boundary; completed tasks stay checkpointed in the cache
        job.cancel_requested = True
        self._publish(job, "cancelling", done=job.done_count,
                      total=job.done_total)
        return {"type": "cancelling", "job_id": job.id, "state": job.state}

    async def _on_fleet(self, message):
        """Fleet observability: worker/node rows + breaker states."""
        if self.cluster is not None:
            return {
                "type": "fleet",
                "mode": "cluster",
                "workers": self.cluster.snapshot(),
                "nodes": self.cluster.node_snapshot(),
                "degraded": self.cluster.degraded(),
                "peer_totals": self.cluster.peer_totals(),
                "breakers": self.breakers.snapshot(),
            }
        workers = self.fleet.snapshot() if self.fleet is not None else []
        return {
            "type": "fleet",
            "mode": "fleet" if self.fleet is not None else "tier",
            "workers": workers,
            "nodes": [],
            "breakers": self.breakers.snapshot(),
        }

    async def _on_submit(self, message):
        self.metrics.bump("jobs.submitted")
        try:
            kind, spec, requests = self._validate_submit(message)
        except ProtocolError as exc:
            self.metrics.bump("jobs.rejected_circuit"
                              if exc.code == "circuit-open"
                              else "jobs.rejected_invalid")
            raise
        key = self._job_key(kind, spec, requests)
        existing = self.table.find_active(key)
        if existing is not None:
            existing.clients += 1
            self.metrics.bump("jobs.coalesced")
            # coalesced submissions still count as demand: the gap
            # between runs.requested and runs.computed is the dedup win
            self.metrics.bump("runs.requested", len(requests))
            self._trace("coalesced", existing, clients=existing.clients)
            return {"type": "submitted", "job_id": existing.id,
                    "coalesced": True, "state": existing.state,
                    "runs": existing.done_total}
        job = self.table.new_job(key, kind, spec, requests,
                                 priority=spec["priority"],
                                 deadline_ms=spec["deadline_ms"])
        try:
            self.queue.push(job)
        except QueueFull as exc:
            # roll the job back out of the table: it never existed
            self.table.forget(job)
            self.metrics.bump("jobs.rejected_busy")
            raise ProtocolError(str(exc), code="busy")
        self.metrics.bump("jobs.accepted")
        self.metrics.bump("runs.requested", len(requests))
        self._publish(job, "queued", runs=len(requests),
                      priority=job.priority)
        return {"type": "submitted", "job_id": job.id, "coalesced": False,
                "state": job.state, "runs": len(requests),
                "queue_depth": len(self.queue)}

    # ------------------------------------------------------------------
    # submission validation + identity

    def _validate_submit(self, message):
        if self.draining:
            raise ProtocolError("server is draining; resubmit elsewhere",
                                code="shutting-down")
        kind = message.get("kind", "single")
        if kind not in SUBMIT_KINDS:
            raise _bad("kind must be one of %s, got %r"
                       % ("/".join(SUBMIT_KINDS), kind))
        instructions = message.get("instructions")
        if instructions is not None:
            instructions = _check_int(instructions, "instructions", 1000,
                                      self.max_instructions)
        variant = message.get("variant", 0)
        variant = _check_int(variant, "variant", 0, 1 << 16)
        priority = message.get("priority", 0)
        priority = _check_int(priority, "priority", *_PRIORITY_RANGE)
        deadline_ms = message.get("deadline_ms")
        if deadline_ms is not None:
            deadline_ms = _check_int(deadline_ms, "deadline_ms",
                                     *_DEADLINE_MS_RANGE)
        policy = {}
        if message.get("retries") is not None:
            policy["retries"] = _check_int(message["retries"], "retries",
                                           0, _MAX_RETRY_OVERRIDE)
        if message.get("on_error") is not None:
            mode = message["on_error"]
            if mode not in ON_ERROR_MODES:
                raise _bad("on_error must be one of %s, got %r"
                           % ("/".join(ON_ERROR_MODES), mode))
            policy["on_error"] = mode
        if message.get("task_timeout") is not None:
            timeout = message["task_timeout"]
            if (isinstance(timeout, bool)
                    or not isinstance(timeout, (int, float))
                    or not 0 < timeout <= 3600):
                raise _bad("task_timeout must be in (0, 3600] seconds, "
                           "got %r" % (timeout,))
            policy["task_timeout"] = float(timeout)
        if kind == "single":
            benchmarks = [self._check_benchmark(message.get("benchmark"))]
            prefetchers = [self._check_prefetcher(
                message.get("prefetcher", "none")
            )]
        else:
            benchmarks = self._check_names(
                message.get("benchmarks"), "benchmarks",
                self._check_benchmark,
            )
            prefetchers = self._check_names(
                message.get("prefetchers"), "prefetchers",
                self._check_prefetcher,
            )
        for bench in benchmarks:
            if not self.breakers.allow(bench):
                raise ProtocolError(
                    "circuit breaker for benchmark %r is open; the "
                    "workload is failing persistently -- back off and "
                    "retry after the cooldown" % (bench,),
                    code="circuit-open",
                )
        requests = [
            RunRequest(bench, prefetcher, instructions, None, variant)
            for bench in benchmarks
            for prefetcher in prefetchers
        ]
        if len(requests) > self.max_requests_per_job:
            raise _bad(
                "submission expands to %d runs, above the per-job cap "
                "of %d" % (len(requests), self.max_requests_per_job)
            )
        spec = {
            "kind": kind,
            "benchmarks": benchmarks,
            "prefetchers": prefetchers,
            "instructions": instructions,
            "variant": variant,
            "priority": priority,
            "deadline_ms": deadline_ms,
            "policy": policy,
        }
        return kind, spec, requests

    def _check_benchmark(self, name):
        if name not in self._benchmarks:
            raise _bad(
                "unknown benchmark %r (see the catalog endpoint)"
                % (name,),
                known=sorted(self._benchmarks),
            )
        return name

    def _check_prefetcher(self, name):
        if name not in self._prefetchers:
            raise _bad(
                "unknown prefetcher %r (see the catalog endpoint)"
                % (name,),
                known=sorted(self._prefetchers),
            )
        return name

    @staticmethod
    def _check_names(values, field, check):
        if (not isinstance(values, list) or not values
                or not all(isinstance(v, str) for v in values)):
            raise _bad('"%s" must be a non-empty list of names' % field)
        return [check(value) for value in values]

    def _job_key(self, kind, spec, requests):
        """Coalescing identity: cache digests + kind + failure policy.

        Reusing :meth:`ExperimentRunner.request_digest` means two
        submissions coalesce exactly when they would share cache
        entries; the policy is folded in so a ``retries=0`` probe never
        piggybacks on (or poisons) a defaulted submission.
        """
        digests = [self.runner.request_digest(r) for r in requests]
        # deadline is part of identity: a deadlined submission must not
        # coalesce onto (or accept riders from) an un-deadlined one --
        # they would shed together.  The result cache still dedups the
        # underlying compute.
        identity = [kind, digests, sorted(spec["policy"].items()),
                    spec["deadline_ms"]]
        return hashlib.sha1(
            json.dumps(identity, sort_keys=True).encode()
        ).hexdigest()

    # ------------------------------------------------------------------
    # streaming

    async def _on_stream(self, message, writer):
        """Dedicate the connection to *job*'s event feed until terminal."""
        try:
            job = self._require_job(message)
        except ProtocolError as exc:
            self.metrics.bump("requests.errors")
            return await self._safe_send(writer, exc.as_frame())
        start = {"type": "stream-start", "job_id": job.id,
                 "state": job.state, "done": job.done_count,
                 "runs": job.done_total}
        if not await self._safe_send(writer, start):
            return False
        if job.terminal:
            # replay just the terminal outcome; nothing further will come
            event = {"type": "event", "job_id": job.id, "ev": job.state,
                     "seq": next(job.events_seq), "state": job.state,
                     "replay": True}
            if job.error is not None:
                event["error"] = job.error
            return await self._safe_send(writer, event)
        queue = asyncio.Queue()
        job.subscribers.append(queue)
        try:
            while True:
                event = await queue.get()
                if not await self._safe_send(writer, event):
                    return False  # mid-stream disconnect: unsubscribe
                if event.get("ev") in TERMINAL_EVENTS:
                    return True
        finally:
            try:
                job.subscribers.remove(queue)
            except ValueError:
                pass


class ServerThread(object):
    """A :class:`JobServer` on a background thread with its own loop.

    The blocking-world adapter used by the tests, the ``bench-serve``
    harness, and anyone embedding the server in a synchronous program::

        with ServerThread(cache_dir="cache") as srv:
            client = ServeClient(*srv.address)
            ...

    ``start()`` blocks until the listener is bound (so :attr:`address`
    carries the real port); ``stop()`` runs a graceful :meth:`drain` on
    the server's loop and joins the thread.
    """

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self.server = None
        self.address = None
        self._loop = None
        self._thread = None
        self._ready = None
        self._startup_error = None

    def start(self, timeout=30.0):
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("job server failed to start within %.1fs"
                               % timeout)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self):
        async def main():
            try:
                server = JobServer(**self._kwargs)
                await server.start()
            except Exception as exc:  # surface to the starting thread
                self._startup_error = exc
                self._ready.set()
                return
            self.server = server
            self.address = server.address
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await server.wait_closed()

        asyncio.run(main())

    def stop(self, grace=None, timeout=60.0):
        if self.server is None or self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(grace), self._loop
        )
        future.result(timeout)
        self._thread.join(timeout)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()
        return False
