"""Per-benchmark circuit breaker: stop hammering a failing workload.

When one benchmark starts failing persistently (a corrupt program
image, a pathological config, an injected fault storm), retrying every
new submission against it burns worker capacity that healthy traffic
needs.  The classic remedy is a circuit breaker per failure domain --
here the domain is the *benchmark*, because a failure in one program's
simulation says nothing about another's.

State machine (driven entirely by the server's terminal-job outcomes;
no timers, no threads -- time enters only through the caller's clock):

* ``closed``     -- normal operation.  Outcomes are folded into a
  sliding window of the last *window* jobs; once at least
  ``min_events`` outcomes are present and the windowed failure rate
  reaches ``failure_threshold``, the breaker **opens**.
* ``open``       -- submissions for the benchmark are rejected with a
  typed ``circuit-open`` error (busy-class: clients may back off and
  retry).  After ``cooldown`` seconds the next :meth:`allow` lets one
  probe through and moves to ``half-open``.
* ``half-open``  -- exactly one in-flight probe.  Success closes the
  breaker (window cleared); failure re-opens it for another cooldown.
  A probe that never reports back (e.g. its client vanished) is
  re-armed after a further cooldown, so the breaker cannot wedge.

Transitions are observable: ``on_transition(benchmark, old, new)``
feeds the ``serve.fleet.breaker.*`` counters.
"""

import threading
import time

BREAKER_STATES = ("closed", "open", "half-open")

DEFAULT_WINDOW = 20
DEFAULT_MIN_EVENTS = 5
DEFAULT_FAILURE_THRESHOLD = 0.5
DEFAULT_COOLDOWN = 30.0


class CircuitBreaker(object):
    """Windowed failure-rate breaker for one failure domain.

    :param window: outcomes retained for the failure-rate estimate.
    :param min_events: outcomes required before the breaker may open
        (one unlucky first job must not open a cold breaker).
    :param failure_threshold: windowed failure fraction at which the
        breaker opens (inclusive).
    :param cooldown: seconds an open breaker waits before probing.
    :param clock: monotonic time source (injectable for tests).
    """

    __slots__ = ("window", "min_events", "failure_threshold", "cooldown",
                 "_clock", "state", "_outcomes", "_opened_at",
                 "_probe_sent_at")

    def __init__(self, window=DEFAULT_WINDOW, min_events=DEFAULT_MIN_EVENTS,
                 failure_threshold=DEFAULT_FAILURE_THRESHOLD,
                 cooldown=DEFAULT_COOLDOWN, clock=time.monotonic):
        if window < 1:
            raise ValueError("window must be >= 1, got %r" % (window,))
        if min_events < 1:
            raise ValueError("min_events must be >= 1, got %r"
                             % (min_events,))
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1], got %r"
                             % (failure_threshold,))
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0, got %r" % (cooldown,))
        self.window = window
        self.min_events = min_events
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = "closed"
        self._outcomes = []        # bools, newest last, len <= window
        self._opened_at = None
        self._probe_sent_at = None

    @property
    def failure_rate(self):
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) \
            / float(len(self._outcomes))

    def allow(self):
        """May a new job for this domain be admitted right now?

        Returns ``(allowed, transition)`` where *transition* is the
        ``(old, new)`` state pair when this call moved the machine
        (``open -> half-open`` probe dispatch), else ``None``.
        """
        if self.state == "closed":
            return True, None
        now = self._clock()
        if self.state == "open":
            if now - self._opened_at >= self.cooldown:
                self.state = "half-open"
                self._probe_sent_at = now
                return True, ("open", "half-open")
            return False, None
        # half-open: one probe in flight; re-arm if it went dark
        if now - self._probe_sent_at >= self.cooldown:
            self._probe_sent_at = now
            return True, None
        return False, None

    def record(self, success):
        """Fold one terminal outcome; returns a transition pair or None.

        Call for every job outcome attributable to this domain --
        cancellations and deadline sheds are *not* outcomes (the
        simulation never rendered a verdict) and must not be recorded.
        """
        if self.state == "half-open":
            if success:
                self.state = "closed"
                self._outcomes = []
                self._opened_at = None
                self._probe_sent_at = None
                return ("half-open", "closed")
            self.state = "open"
            self._opened_at = self._clock()
            self._probe_sent_at = None
            return ("half-open", "open")
        self._outcomes.append(bool(success))
        if len(self._outcomes) > self.window:
            del self._outcomes[:len(self._outcomes) - self.window]
        if (self.state == "closed"
                and len(self._outcomes) >= self.min_events
                and self.failure_rate >= self.failure_threshold):
            self.state = "open"
            self._opened_at = self._clock()
            return ("closed", "open")
        return None

    def snapshot(self):
        return {
            "state": self.state,
            "events": len(self._outcomes),
            "failure_rate": round(self.failure_rate, 4),
        }


class BreakerBoard(object):
    """One :class:`CircuitBreaker` per benchmark, created lazily.

    All breakers share one configuration; *on_transition* is invoked as
    ``on_transition(benchmark, old_state, new_state)`` for every state
    change (the server bumps ``serve.fleet.breaker.*`` counters there).

    The board is thread-safe: every state read or verdict fold holds
    one lock, so concurrent recorders (bench harnesses, cluster-side
    callers off the loop thread) cannot tear a breaker's window or
    double-create a breaker.  ``on_transition`` fires outside the lock
    -- a callback that re-enters the board must not deadlock.
    """

    def __init__(self, window=DEFAULT_WINDOW, min_events=DEFAULT_MIN_EVENTS,
                 failure_threshold=DEFAULT_FAILURE_THRESHOLD,
                 cooldown=DEFAULT_COOLDOWN, clock=time.monotonic,
                 on_transition=None):
        self._config = dict(window=window, min_events=min_events,
                            failure_threshold=failure_threshold,
                            cooldown=cooldown, clock=clock)
        self.on_transition = on_transition
        self._breakers = {}
        self._lock = threading.Lock()

    def _get(self, benchmark):
        breaker = self._breakers.get(benchmark)
        if breaker is None:
            breaker = self._breakers[benchmark] = CircuitBreaker(
                **self._config
            )
        return breaker

    def allow(self, benchmark):
        """True when a job touching *benchmark* may be admitted."""
        with self._lock:
            allowed, transition = self._get(benchmark).allow()
        if transition is not None and self.on_transition is not None:
            self.on_transition(benchmark, *transition)
        return allowed

    def record(self, benchmark, success):
        """Fold one terminal outcome for *benchmark*."""
        with self._lock:
            transition = self._get(benchmark).record(success)
        if transition is not None and self.on_transition is not None:
            self.on_transition(benchmark, *transition)

    def state(self, benchmark):
        with self._lock:
            breaker = self._breakers.get(benchmark)
            return breaker.state if breaker is not None else "closed"

    def snapshot(self):
        """``{benchmark: breaker snapshot}`` for non-closed or seen ones."""
        with self._lock:
            return {
                benchmark: breaker.snapshot()
                for benchmark, breaker in sorted(self._breakers.items())
            }
