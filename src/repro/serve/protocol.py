"""Wire protocol: length-prefixed JSON frames.

Every message between client and server is one *frame*::

    +----------------+----------------------------+
    | 4 bytes, u32be | UTF-8 JSON object payload  |
    +----------------+----------------------------+

The length prefix counts payload bytes only.  A frame's payload must be
a single JSON **object** (not an array/scalar); this keeps dispatch
uniform (``{"type": ...}``) and makes malformed input detectable early.

The decoder is *sans-IO*: :class:`FrameDecoder.feed` accepts arbitrary
byte chunks and yields complete messages, so the same implementation
(and the same tests) back the asyncio server, the blocking stdlib
client, and the abuse-path unit tests -- no sockets required.

Failure taxonomy: every way a peer can misbehave maps to a typed
:class:`ProtocolError` with a stable ``code`` drawn from
:data:`ERROR_CODES`; the server turns these into ``{"type": "error",
"code": ...}`` reply frames instead of wedging or dying (see
``tests/test_serve_protocol.py``).

* ``too-large``  -- declared payload length exceeds the frame cap
  (connection is closed afterwards: the stream cannot be resynced
  without reading the oversized body);
* ``bad-json``   -- well-framed payload that is not valid JSON
  (recoverable: framing is intact, the connection continues);
* ``bad-frame``  -- valid JSON that is not an object, or a missing /
  non-string ``type`` field (recoverable);
* ``truncated``  -- the peer disconnected mid-frame (detected by the
  reader helpers, never replied to -- the socket is gone).
"""

import json
import struct

#: hard cap on payload bytes accepted from a peer (per frame)
MAX_FRAME_BYTES = 1 << 20
#: reply frames can be bigger (a wide sweep's result set); clients use
#: this as their decoder limit
MAX_REPLY_BYTES = 8 << 20

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size

#: stable error codes carried by error frames (wire-visible API)
ERROR_CODES = (
    "too-large",       # frame bigger than the receiver's cap
    "bad-json",        # payload is not valid JSON
    "bad-frame",       # payload is not an object with a string "type"
    "truncated",       # peer vanished mid-frame
    "unknown-type",    # request type the server does not implement
    "bad-request",     # schema-valid frame with invalid request fields
    "unknown-job",     # job id not in the table
    "not-cancellable", # cancel on an already-terminal job
    "busy",            # admission queue past its high-water mark
    "circuit-open",    # per-benchmark circuit breaker is open (busy-class)
    "deadline-exceeded", # job shed: its deadline expired before execution
    "shutting-down",   # server is draining; no new submissions
    "internal",        # unexpected server-side exception
)

#: busy-class error codes: transient, safe for clients to retry with
#: backoff (unlike e.g. ``bad-request`` or ``deadline-exceeded``)
BUSY_CLASS_CODES = ("busy", "circuit-open")


class ProtocolError(Exception):
    """A violation of the framing or message grammar.

    :param code: one of :data:`ERROR_CODES`.
    """

    def __init__(self, message, code="bad-frame"):
        super().__init__(message)
        self.code = code

    def as_frame(self):
        """The ``{"type": "error"}`` reply payload for this failure."""
        return error_message(self.code, str(self))


def error_message(code, message, **extra):
    """Build a typed error payload (the body of an error frame)."""
    body = {"type": "error", "code": code, "message": message}
    body.update(extra)
    return body


def encode_frame(message, max_bytes=MAX_REPLY_BYTES):
    """Serialise one message dict into a length-prefixed frame.

    :raises ProtocolError: the encoded payload exceeds *max_bytes*
        (``code="too-large"``) or the message is not JSON-serialisable
        (``code="bad-frame"``).
    """
    if not isinstance(message, dict):
        raise ProtocolError(
            "frame payload must be a JSON object, got %s"
            % type(message).__name__
        )
    try:
        payload = json.dumps(
            message, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError("unserialisable frame payload: %s" % exc)
    if len(payload) > max_bytes:
        raise ProtocolError(
            "frame payload of %d bytes exceeds the %d byte cap"
            % (len(payload), max_bytes),
            code="too-large",
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload):
    """Decode one frame payload into a message dict.

    :raises ProtocolError: ``bad-json`` for unparseable bytes,
        ``bad-frame`` for a non-object or a missing/typeless ``type``.
    """
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError("unparseable frame payload: %s" % exc,
                            code="bad-json")
    if not isinstance(message, dict):
        raise ProtocolError(
            "frame payload must be a JSON object, got %s"
            % type(message).__name__
        )
    kind = message.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError('frame payload needs a string "type" field')
    return message


class FrameDecoder(object):
    """Incremental frame parser over an arbitrary chunk stream.

    ``feed(data)`` buffers *data* and returns every complete message it
    terminates.  Oversized declared lengths raise immediately (before
    the body arrives), so a hostile 4 GiB header costs four bytes of
    buffering, not memory exhaustion.
    """

    __slots__ = ("max_bytes", "_buffer", "_need")

    def __init__(self, max_bytes=MAX_FRAME_BYTES):
        self.max_bytes = max_bytes
        self._buffer = bytearray()
        self._need = None  # declared payload length once header is read

    @property
    def pending_bytes(self):
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data):
        """Consume *data*; return the list of completed messages.

        :raises ProtocolError: ``too-large`` / ``bad-json`` /
            ``bad-frame`` -- the decoder is poisoned afterwards and the
            connection should be torn down (the server replies with the
            typed error first where the stream allows it).
        """
        self._buffer.extend(data)
        messages = []
        while True:
            if self._need is None:
                if len(self._buffer) < HEADER_BYTES:
                    break
                (self._need,) = _HEADER.unpack_from(self._buffer)
                del self._buffer[:HEADER_BYTES]
                if self._need > self.max_bytes:
                    raise ProtocolError(
                        "declared frame length %d exceeds the %d byte cap"
                        % (self._need, self.max_bytes),
                        code="too-large",
                    )
            if len(self._buffer) < self._need:
                break
            payload = bytes(self._buffer[:self._need])
            del self._buffer[:self._need]
            self._need = None
            messages.append(decode_payload(payload))
        return messages


# ----------------------------------------------------------------------
# asyncio reader/writer helpers (server side)

async def read_frame(reader, max_bytes=MAX_FRAME_BYTES):
    """Read one frame from an :class:`asyncio.StreamReader`.

    :returns: the decoded message, or ``None`` on a clean EOF at a
        frame boundary.
    :raises ProtocolError: ``truncated`` when the peer disconnects
        mid-frame, plus the :func:`decode_payload` failures.
    """
    header = await reader.read(HEADER_BYTES)
    if not header:
        return None
    while len(header) < HEADER_BYTES:
        chunk = await reader.read(HEADER_BYTES - len(header))
        if not chunk:
            raise ProtocolError("peer disconnected inside a frame header",
                                code="truncated")
        header += chunk
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            "declared frame length %d exceeds the %d byte cap"
            % (length, max_bytes),
            code="too-large",
        )
    payload = b""
    while len(payload) < length:
        chunk = await reader.read(length - len(payload))
        if not chunk:
            raise ProtocolError("peer disconnected inside a frame body",
                                code="truncated")
        payload += chunk
    return decode_payload(payload)


async def write_frame(writer, message, max_bytes=MAX_REPLY_BYTES):
    """Encode and send one frame over an :class:`asyncio.StreamWriter`."""
    writer.write(encode_frame(message, max_bytes=max_bytes))
    await writer.drain()


# ----------------------------------------------------------------------
# blocking file-object helpers (worker-subprocess pipes)

def read_frame_blocking(fp, max_bytes=MAX_REPLY_BYTES):
    """Read one frame from a blocking binary file object (worker stdin).

    :returns: the decoded message, or ``None`` on a clean EOF at a
        frame boundary.
    :raises ProtocolError: ``truncated`` on EOF mid-frame, plus the
        :func:`decode_payload` failures.
    """
    header = fp.read(HEADER_BYTES)
    if not header:
        return None
    while len(header) < HEADER_BYTES:
        chunk = fp.read(HEADER_BYTES - len(header))
        if not chunk:
            raise ProtocolError("peer closed inside a frame header",
                                code="truncated")
        header += chunk
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            "declared frame length %d exceeds the %d byte cap"
            % (length, max_bytes),
            code="too-large",
        )
    payload = b""
    while len(payload) < length:
        chunk = fp.read(length - len(payload))
        if not chunk:
            raise ProtocolError("peer closed inside a frame body",
                                code="truncated")
        payload += chunk
    return decode_payload(payload)


def write_frame_blocking(fp, message, max_bytes=MAX_REPLY_BYTES):
    """Encode and write one frame to a blocking binary file object."""
    fp.write(encode_frame(message, max_bytes=max_bytes))
    fp.flush()


# ----------------------------------------------------------------------
# blocking socket helpers (stdlib client side)

def send_frame(sock, message, max_bytes=MAX_REPLY_BYTES):
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(message, max_bytes=max_bytes))


def recv_frame(sock, decoder, pending):
    """Receive one frame over a blocking socket via a shared decoder.

    :param decoder: the connection's :class:`FrameDecoder` (frames can
        arrive split or glued across ``recv`` calls; the decoder owns
        the carry-over buffer).
    :param pending: a mutable deque/list of already-decoded messages --
        when one ``recv`` yields several glued frames the extras are
        queued here and served first on the next call.
    :returns: the next message, or ``None`` on clean EOF.
    :raises ProtocolError: ``truncated`` on mid-frame disconnect.
    """
    if pending:
        return pending.popleft()
    while True:
        data = sock.recv(65536)
        if not data:
            if decoder.pending_bytes or decoder._need is not None:
                raise ProtocolError(
                    "server disconnected inside a frame", code="truncated"
                )
            return None
        messages = decoder.feed(data)
        if messages:
            pending.extend(messages[1:])
            return messages[0]
