"""``python -m repro.serve.worker_main``: fleet worker entry point.

Kept separate from :mod:`repro.serve.supervisor` (which the package
``__init__`` imports) so ``runpy`` never re-executes an already-
imported module -- that would emit a RuntimeWarning on every worker
spawn and, worse, run the module body twice.
"""

import sys

from repro.serve.supervisor import worker_main

if __name__ == "__main__":
    sys.exit(worker_main())
