"""The worker fleet: supervision, loss recovery, and requeue.

A :class:`WorkerSupervisor` is the fleet-mode drop-in for
:class:`~repro.serve.workers.WorkerTier`: the server calls the same
``run_job(loop, job, progress_cb)`` coroutine, but execution happens in
N supervised worker *subprocesses* (:mod:`repro.serve.supervisor`)
instead of server threads.  What that buys:

* **isolation** -- a worker crash, hang, or injected fault never
  touches the server process; the blast radius of ``worker-kill:0.3``
  is one job attempt, not the service;
* **liveness** -- every worker heartbeats; ``max_missed`` silent
  intervals and the supervisor kills + replaces it
  (:mod:`repro.serve.health`);
* **recovery** -- a job in flight on a dead worker is *requeued* onto
  the next free worker with ``attempt + 1``.  Because every completed
  task is persisted in the shared result cache (cache-as-checkpoint,
  PR 2/4) and the lethal chaos verbs fire only on ``attempt == 0``,
  the re-execution resumes from the kill point and converges
  byte-identically to the serial reference -- the acceptance bar the
  chaos tests assert;
* **bounded respawn** -- replacement workers come up under the
  deterministic exponential backoff of :mod:`repro.resilience.retry`
  (keyed by worker slot), so a crash-looping fleet cannot hot-spin.

Deadlines terminate here too: a job whose ``deadline_ms`` expired while
queued or between requeues raises :class:`DeadlineExceeded` instead of
burning a worker on an answer nobody is waiting for.
"""

import asyncio
import time
from dataclasses import asdict, replace

from repro.resilience import FailurePolicy, SimulationError, backoff_delay
from repro.serve.supervisor import WorkerLost, WorkerProcess
from repro.serve.workers import JobCancelled

#: requeues tolerated per job before it is failed outright (defensive:
#: lethal faults fire only on attempt 0, so >1 losses means real,
#: persistent trouble -- a poisoned host, an OOM-killer sweep)
DEFAULT_MAX_REQUEUES = 4

#: backoff schedule for respawning dead workers (keyed per slot)
RESPAWN_POLICY = FailurePolicy(retries=0, backoff_base=0.05,
                               backoff_factor=2.0, backoff_max=2.0,
                               jitter=0.5, seed=0)


class DeadlineExceeded(Exception):
    """The job's deadline expired before (or between) execution."""


class WorkerSupervisor(object):
    """Owns N worker subprocesses and schedules jobs onto them.

    :param cache_dir: shared result-cache directory handed to every
        worker (the checkpoint substrate that makes requeue a resume).
    :param workers: fleet size (``REPRO_WORKERS`` /
        ``repro serve --workers N`` upstream).
    :param beat_interval: worker heartbeat period, seconds.
    :param max_missed: missed beats before a worker is declared dead.
    :param policy: default :class:`FailurePolicy` (same semantics as
        :class:`WorkerTier`); per-job overrides layer on top.
    :param batch_jobs: process-pool width *inside* each worker.
    :param metrics: :class:`~repro.serve.metrics.ServeMetrics` for the
        ``fleet.*`` counters (respawns / requeues); optional.
    :param max_requeues: worker losses tolerated per job.
    """

    def __init__(self, cache_dir=None, workers=2, beat_interval=1.0,
                 max_missed=4, policy=None, batch_jobs=1, metrics=None,
                 max_requeues=DEFAULT_MAX_REQUEUES,
                 respawn_policy=RESPAWN_POLICY, spawn_timeout=30.0):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %r" % (workers,))
        self.cache_dir = cache_dir
        self.policy = policy
        self.metrics = metrics
        self.max_requeues = max_requeues
        self.respawn_policy = respawn_policy
        self.workers = [
            WorkerProcess(index, cache_dir=cache_dir,
                          beat_interval=beat_interval,
                          max_missed=max_missed, batch_jobs=batch_jobs,
                          spawn_timeout=spawn_timeout)
            for index in range(workers)
        ]
        self._idle = None     # asyncio.Queue of WorkerProcess
        self._stopping = False

    @property
    def max_concurrent(self):
        """Concurrency the server should admit (one job per worker)."""
        return len(self.workers)

    # -- lifecycle -----------------------------------------------------

    async def start(self):
        self._idle = asyncio.Queue()
        await asyncio.gather(*(worker.spawn() for worker in self.workers))
        for worker in self.workers:
            self._idle.put_nowait(worker)
        return self

    async def shutdown(self, timeout=10.0):
        """Drain the fleet: graceful shutdown frames, then the hammer.

        Must terminate promptly even when workers are already dead or
        frozen -- every worker gets a best-effort shutdown frame, a
        bounded wait, then a kill.
        """
        self._stopping = True
        await asyncio.gather(*(worker.request_shutdown()
                               for worker in self.workers))
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            proc = worker._proc
            if proc is not None and proc.returncode is None:
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    await asyncio.wait_for(proc.wait(), remaining)
                except asyncio.TimeoutError:
                    worker.kill()
            await worker.reap()
            worker.state = "stopped"

    # -- policy --------------------------------------------------------

    def job_policy(self, job):
        """Effective :class:`FailurePolicy` for *job* (env + overrides)."""
        base = self.policy
        if base is None:
            base = FailurePolicy.from_env()
        overrides = job.spec.get("policy") or {}
        if overrides:
            base = replace(base, **overrides)
        return base

    # -- scheduling ----------------------------------------------------

    def _bump(self, name, n=1):
        if self.metrics is not None:
            self.metrics.bump(name, n)

    async def _acquire(self):
        """Next live worker, respawning dead slots under backoff."""
        while True:
            worker = await self._idle.get()
            if worker.alive:
                return worker
            await self._respawn(worker)
            if worker.alive:
                return worker
            # spawn failed: push to the back and keep trying others
            self._idle.put_nowait(worker)
            await asyncio.sleep(0.05)

    async def _respawn(self, worker):
        """Replace a dead worker's subprocess (deterministic backoff)."""
        await worker.reap()
        delay = backoff_delay(self.respawn_policy, "worker-%d" % worker.id,
                              min(worker.respawns, 6))
        if delay > 0:
            await asyncio.sleep(delay)
        worker.respawns += 1
        self._bump("fleet.respawns")
        try:
            await worker.spawn()
        except WorkerLost:
            worker.state = "dead"

    def _release(self, worker):
        self._idle.put_nowait(worker)

    async def run_job(self, loop, job, progress_cb=None):
        """Execute *job* on the fleet; returns ``(results, report)``.

        Same contract as :meth:`WorkerTier.run_job`: raises
        :class:`JobCancelled` on cooperative cancel,
        :class:`SimulationError` on structured failure -- plus
        :class:`DeadlineExceeded` when the job's deadline expires
        before a worker can finish it.
        """
        policy_fields = asdict(self.job_policy(job))
        attempt = 0
        while True:
            if job.deadline_expired:
                raise DeadlineExceeded(job.id)
            worker = await self._acquire()
            if job.cancel_requested:
                self._release(worker)
                raise JobCancelled(job.id)

            def on_progress(job_, done, total):
                if progress_cb is not None:
                    progress_cb(job_, done, total)

            outcome, detail = await worker.execute(
                job, attempt, policy_fields, on_progress
            )
            if outcome == "done":
                self._release(worker)
                payload, report = detail
                return payload, report
            if outcome == "cancelled":
                # the worker was killed to interrupt the job; respawn
                # happens lazily on next acquire
                self._release(worker)
                raise JobCancelled(job.id)
            if outcome == "error":
                self._release(worker)
                info = detail or {}
                if info.get("code") == "deadline-exceeded":
                    raise DeadlineExceeded(job.id)
                error = SimulationError(
                    "worker %d: %s" % (worker.id,
                                       info.get("message", "job failed")),
                    attempts=info.get("attempts", attempt + 1),
                )
                error.worker_error_type = info.get("error_type")
                raise error
            # lost: the worker died (or went silent) holding the job
            self._release(worker)   # dead slot; _acquire respawns it
            self._bump("fleet.requeues")
            attempt += 1
            if attempt > self.max_requeues:
                raise SimulationError(
                    "job %s lost %d workers (last: %s); giving up"
                    % (job.id, attempt, detail),
                    attempts=attempt,
                )

    # -- observability -------------------------------------------------

    def snapshot(self):
        """Per-worker rows for the ``fleet`` endpoint."""
        return [worker.snapshot() for worker in self.workers]

    def live_count(self):
        return sum(1 for worker in self.workers if worker.alive)
