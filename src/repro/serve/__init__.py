"""Simulation-as-a-service: async job server + stdlib client.

The serve layer turns the repository's batch engine
(:class:`~repro.sim.ExperimentRunner`) into a long-lived network
service:

* :class:`JobServer` -- asyncio TCP server speaking a length-prefixed
  JSON frame protocol; validates submissions against the shared
  catalog, coalesces identical in-flight requests, admits through a
  bounded priority queue with backpressure, executes on a worker tier
  and streams per-job lifecycle events.
* :class:`ServeClient` -- pure-stdlib blocking client used by scripts,
  tests and the ``repro submit`` / ``repro jobs`` CLI.
* :class:`ServerThread` -- run a server on a background thread with
  its own event loop (tests, benchmarks, notebooks).
* :class:`WorkerSupervisor` -- the fleet backend (``--workers N``):
  supervised worker subprocesses with heartbeat liveness, respawn
  under deterministic backoff, and worker-loss requeue
  (``docs/fleet.md``).
* :class:`BreakerBoard` -- per-benchmark circuit breakers shedding
  persistently-failing workloads with typed ``circuit-open`` errors.
* :class:`ClusterSupervisor` -- the cluster backend (``--cluster``):
  remote worker nodes (``repro node --connect``), a replicated
  content-addressed cache tier (:class:`CachePeerServer` /
  :class:`PeerSet`), shard scheduling with work stealing, and
  degraded-mode fallback (``docs/cluster.md``).

See ``docs/serving.md``, ``docs/fleet.md`` and ``docs/cluster.md``
for worked examples.
"""

from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.client import ServeClient, ServeError
from repro.serve.cluster import (
    CachePeerServer,
    ClusterSupervisor,
    NodeAgent,
    NodeHandle,
    PeerSet,
)
from repro.serve.fleet import DeadlineExceeded, WorkerSupervisor
from repro.serve.health import WorkerHealth
from repro.serve.jobs import Job, JobTable
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    BUSY_CLASS_CODES,
    ERROR_CODES,
    FrameDecoder,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    encode_frame,
)
from repro.serve.queue import AdmissionQueue, QueueFull
from repro.serve.server import JobServer, ServerThread
from repro.serve.supervisor import WorkerLost, WorkerProcess
from repro.serve.workers import JobCancelled, WorkerTier

__all__ = [
    "AdmissionQueue",
    "BUSY_CLASS_CODES",
    "BreakerBoard",
    "CachePeerServer",
    "CircuitBreaker",
    "ClusterSupervisor",
    "DeadlineExceeded",
    "ERROR_CODES",
    "FrameDecoder",
    "Job",
    "JobCancelled",
    "JobServer",
    "JobTable",
    "MAX_FRAME_BYTES",
    "NodeAgent",
    "NodeHandle",
    "PeerSet",
    "ProtocolError",
    "QueueFull",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServerThread",
    "WorkerHealth",
    "WorkerLost",
    "WorkerProcess",
    "WorkerSupervisor",
    "WorkerTier",
    "decode_payload",
    "encode_frame",
]
