"""Simulation-as-a-service: async job server + stdlib client.

The serve layer turns the repository's batch engine
(:class:`~repro.sim.ExperimentRunner`) into a long-lived network
service:

* :class:`JobServer` -- asyncio TCP server speaking a length-prefixed
  JSON frame protocol; validates submissions against the shared
  catalog, coalesces identical in-flight requests, admits through a
  bounded priority queue with backpressure, executes on a worker tier
  and streams per-job lifecycle events.
* :class:`ServeClient` -- pure-stdlib blocking client used by scripts,
  tests and the ``repro submit`` / ``repro jobs`` CLI.
* :class:`ServerThread` -- run a server on a background thread with
  its own event loop (tests, benchmarks, notebooks).

See ``docs/serving.md`` for a worked example.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobTable
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    ERROR_CODES,
    FrameDecoder,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    encode_frame,
)
from repro.serve.queue import AdmissionQueue, QueueFull
from repro.serve.server import JobServer, ServerThread
from repro.serve.workers import JobCancelled, WorkerTier

__all__ = [
    "AdmissionQueue",
    "ERROR_CODES",
    "FrameDecoder",
    "Job",
    "JobCancelled",
    "JobServer",
    "JobTable",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "QueueFull",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServerThread",
    "WorkerTier",
    "decode_payload",
    "encode_frame",
]
