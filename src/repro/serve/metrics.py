"""Server-level metrics, exported through the shared stats registry.

Everything the ``/statz`` endpoint reports lives in one
:class:`~repro.obs.StatsRegistry` under the ``serve.`` prefix, reusing
the same Counter/Ratio/FuncStat machinery the simulator's own stats use
-- one dump format, one CLI rendering path (``repro jobs --stats``),
one JSON schema.

Taxonomy::

    serve.connections.opened / closed        accepted TCP connections
    serve.requests.total / errors            frames dispatched / typed errors
    serve.protocol_errors                    framing-level violations
    serve.jobs.submitted                     submit requests seen
    serve.jobs.accepted                      admitted as *new* jobs
    serve.jobs.coalesced                     deduplicated onto a live job
    serve.jobs.rejected_busy                 bounced by admission control
    serve.jobs.rejected_invalid              failed validation
    serve.jobs.completed / failed / cancelled terminal outcomes
    serve.jobs.in_flight                     queued + running right now
    serve.queue.depth                        live admission-queue depth
    serve.runs.requested                     RunRequests across submissions
    serve.runs.cache_hits / computed / skipped   per-batch outcomes
    serve.runs.retries / crashes / timeouts  resilience events surfaced
    serve.cache.hit_ratio                    hits / (hits + computed)
    serve.latency.{p50,p95,p99,mean,count}[...]  job latency, cached vs computed
    serve.uptime_seconds / serve.jobs_per_second   throughput
    serve.fleet.respawns / requeues / sheds  worker-loss recovery events
    serve.fleet.breaker.{opened,half_open,closed}  breaker transitions
    serve.fleet.workers / workers_live       fleet size / live workers
    serve.jobs.rejected_circuit              breaker-bounced submissions

Latency quantiles are computed over a bounded sliding window
(:data:`LATENCY_WINDOW` most recent jobs) so a long-lived server's
``/statz`` stays O(window), and are split into ``all`` / ``cached``
(every run served from cache) / ``computed`` series -- the two
populations differ by orders of magnitude and a merged p95 would
describe neither.
"""

import time

from repro.obs import StatsRegistry

#: jobs retained per latency series for quantile estimation
LATENCY_WINDOW = 2048

_COUNTERS = (
    ("connections.opened", "TCP connections accepted"),
    ("connections.closed", "TCP connections closed"),
    ("requests.total", "frames dispatched to a handler"),
    ("requests.errors", "typed error replies sent"),
    ("protocol_errors", "framing violations (bad frame/json/oversize)"),
    ("jobs.submitted", "submit requests received"),
    ("jobs.accepted", "submissions admitted as new jobs"),
    ("jobs.coalesced", "submissions coalesced onto a live job"),
    ("jobs.rejected_busy", "submissions bounced by admission control"),
    ("jobs.rejected_circuit", "submissions bounced by an open breaker"),
    ("jobs.rejected_invalid", "submissions failing validation"),
    ("jobs.completed", "jobs finished successfully"),
    ("jobs.failed", "jobs finished with a structured failure"),
    ("jobs.cancelled", "jobs cancelled before completion"),
    ("runs.requested", "single-run requests across all submissions"),
    ("runs.cache_hits", "runs served straight from the result cache"),
    ("runs.computed", "runs actually simulated"),
    ("runs.skipped", "runs skipped after exhausting retries"),
    ("runs.retries", "run retries performed by the batch engine"),
    ("runs.crashes", "worker crashes absorbed by the batch engine"),
    ("runs.timeouts", "hung runs detected by the batch engine"),
    ("fleet.respawns", "dead fleet workers replaced by the supervisor"),
    ("fleet.requeues", "in-flight jobs requeued after a worker loss"),
    ("fleet.sheds", "jobs shed because their deadline expired"),
    ("fleet.breaker.opened", "circuit breakers tripped open"),
    ("fleet.breaker.half_open", "breaker cooldowns expired into a probe"),
    ("fleet.breaker.closed", "breakers closed by a successful probe"),
    ("cluster.nodes_joined", "remote nodes adopted by the coordinator"),
    ("cluster.nodes_lost", "remote nodes dropped (EOF or silent beats)"),
    ("cluster.shards", "job shards scattered across the member pool"),
    ("cluster.steals", "shards stolen from stragglers by idle members"),
    ("cluster.requeues", "shards requeued after losing their member"),
    ("cluster.replayed", "cache entries replayed from reconnecting nodes"),
    ("cluster.scale_up", "local workers spawned by the autoscaler"),
    ("cluster.scale_down", "surplus local workers retired when idle"),
    ("cluster.degraded_transitions",
     "times the cluster lost its last node and went local-only"),
)


def quantile(values, q):
    """Linearly interpolated quantile of an unsorted sequence.

    Uses the standard "type 7" estimator (numpy's default): the
    quantile sits at fractional rank ``h = (n - 1) * q`` and is
    interpolated between the two bracketing order statistics.  The
    previous nearest-rank-by-truncation rule (``int(q * n)``) pinned
    every upper quantile of a small window to the window *maximum* --
    for any n < 100, ``int(0.99 * n)`` is ``n - 1`` -- so a single
    outlier reported as the p99 until 100 samples had arrived.

    Worked example over ``[10, 20, 30, 40]``:

    ====  ==================  ===============  ===================
    q     fractional rank h   old (truncate)   now (interpolate)
    ====  ==================  ===============  ===================
    0.00  0.00                10               10.0
    0.50  1.50                30               25.0
    0.95  2.85                40               38.5
    0.99  2.97                40               39.7
    1.00  3.00                40               40.0
    ====  ==================  ===============  ===================

    Returns 0.0 for an empty sequence; *q* is clamped into [0, 1].
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    n = len(ordered)
    if n == 1:
        return float(ordered[0])
    q = min(1.0, max(0.0, q))
    h = (n - 1) * q
    low = int(h)
    frac = h - low
    if frac == 0.0:
        return float(ordered[low])
    return ordered[low] + (ordered[low + 1] - ordered[low]) * frac


class _LatencySeries(object):
    """Sliding window of job latencies with derived quantiles."""

    __slots__ = ("window", "values", "count", "total")

    def __init__(self, window=LATENCY_WINDOW):
        self.window = window
        self.values = []
        self.count = 0
        self.total = 0.0

    def record(self, seconds):
        self.count += 1
        self.total += seconds
        self.values.append(seconds)
        if len(self.values) > self.window:
            del self.values[:len(self.values) - self.window]

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0


class ServeMetrics(object):
    """The server's ``serve.*`` stats registry plus latency windows."""

    def __init__(self, queue=None, table=None, registry=None):
        self.registry = registry if registry is not None else StatsRegistry()
        self.started = time.monotonic()
        self._counters = {}
        for name, desc in _COUNTERS:
            self._counters[name] = self.registry.counter(
                "serve.%s" % name, desc
            )
        self._latency = {
            "all": _LatencySeries(),
            "cached": _LatencySeries(),
            "computed": _LatencySeries(),
        }
        hits = self._counters["runs.cache_hits"]
        computed = self._counters["runs.computed"]
        self.registry.ratio(
            "serve.cache.hit_ratio",
            lambda: hits.value,
            lambda: hits.value + computed.value,
            "runs served from cache / runs resolved",
        )
        self.registry.derived(
            "serve.uptime_seconds",
            lambda: round(time.monotonic() - self.started, 3),
            "seconds since the server started",
        )
        completed = self._counters["jobs.completed"]
        self.registry.derived(
            "serve.jobs_per_second",
            lambda: round(
                completed.value
                / max(1e-9, time.monotonic() - self.started), 6
            ),
            "completed jobs per second of uptime",
        )
        if queue is not None:
            self.registry.derived(
                "serve.queue.depth", lambda: len(queue),
                "live admission-queue depth",
            )
        if table is not None:
            self.registry.derived(
                "serve.jobs.in_flight", lambda: table.active_count(),
                "jobs currently queued or running",
            )
        for series_name, series in sorted(self._latency.items()):
            self._register_latency(series_name, series)

    def _register_latency(self, series_name, series):
        prefix = "serve.latency.%s" % series_name
        self.registry.derived(
            "%s.count" % prefix, lambda s=series: s.count,
            "jobs recorded in this latency series",
        )
        self.registry.derived(
            "%s.mean" % prefix, lambda s=series: round(s.mean, 6),
            "mean job latency, seconds",
        )
        self.registry.derived(
            "%s.p50" % prefix,
            lambda s=series: round(quantile(s.values, 0.50), 6),
            "median job latency over the window, seconds",
        )
        self.registry.derived(
            "%s.p95" % prefix,
            lambda s=series: round(quantile(s.values, 0.95), 6),
            "95th-percentile job latency over the window, seconds",
        )
        self.registry.derived(
            "%s.p99" % prefix,
            lambda s=series: round(quantile(s.values, 0.99), 6),
            "99th-percentile job latency over the window, seconds",
        )

    # ------------------------------------------------------------------

    def attach_fleet(self, fleet):
        """Register derived gauges over a live WorkerSupervisor."""
        self.registry.derived(
            "serve.fleet.workers", lambda: len(fleet.workers),
            "configured fleet size",
        )
        self.registry.derived(
            "serve.fleet.workers_live", lambda: fleet.live_count(),
            "fleet workers currently alive",
        )

    def attach_cluster(self, cluster):
        """Register derived gauges over a live ClusterSupervisor."""
        self.registry.derived(
            "serve.cluster.nodes", lambda: len(cluster.live_nodes()),
            "remote nodes currently adopted and alive",
        )
        self.registry.derived(
            "serve.cluster.local_workers",
            lambda: len(cluster.live_locals()),
            "local workers currently alive (autoscaled)",
        )
        self.registry.derived(
            "serve.cluster.degraded", lambda: cluster.degraded(),
            "1 while zero nodes are live (running as a local fleet)",
        )
        self.registry.derived(
            "serve.cluster.peer_hits",
            lambda: cluster.peer_totals().get("hits", 0),
            "cache-peer fetches that found a replica",
        )
        self.registry.derived(
            "serve.cluster.peer_misses",
            lambda: cluster.peer_totals().get("misses", 0),
            "cache-peer fetches that found nothing",
        )
        self.registry.derived(
            "serve.cluster.peer_corrupt",
            lambda: cluster.peer_totals().get("corrupt", 0),
            "cache-peer replies rejected by envelope verification",
        )

    def bump(self, name, n=1):
        """Increment one ``serve.*`` counter by short name."""
        self._counters[name].inc(n)

    def value(self, name):
        return self._counters[name].value

    def record_job(self, job):
        """Fold one terminal job into counters and latency windows."""
        if job.state == "done":
            self.bump("jobs.completed")
        elif job.state == "failed":
            self.bump("jobs.failed")
        else:
            self.bump("jobs.cancelled")
        report = job.report or {}
        self.bump("runs.cache_hits", report.get("hits", 0))
        self.bump("runs.computed", report.get("misses", 0))
        self.bump("runs.skipped", report.get("skipped", 0))
        self.bump("runs.retries", report.get("retries", 0))
        self.bump("runs.crashes", report.get("crashes", 0))
        self.bump("runs.timeouts", report.get("timeouts", 0))
        latency = job.latency
        if latency is not None and job.state == "done":
            self._latency["all"].record(latency)
            series = "cached" if report.get("misses", 0) == 0 else "computed"
            self._latency[series].record(latency)

    # ------------------------------------------------------------------

    def dump(self):
        """Flat ``{name: value}`` dict (the ``statz`` reply payload)."""
        return dict(self.registry.dump())

    def format(self, pattern=None):
        return self.registry.format(pattern)
