"""Fleet worker subprocess: protocol, child entry point, parent handle.

A fleet worker is a separate OS process (``python -m
repro.serve.supervisor``) speaking the repository's length-prefixed
JSON framing (:mod:`repro.serve.protocol`) over its stdin/stdout pipes.
Worker loss is therefore a *first-class, observable* event -- the pipe
breaks or the heartbeats stop -- instead of a wedged thread, and the
supervisor can kill/respawn workers without poisoning the server
process.

Wire protocol (parent -> worker)::

    {"type": "job", "job": {"id", "key", "attempt", "deadline",
                            "requests": [[bench, pf, instr, null, var]..],
                            "policy": {FailurePolicy fields}}}
    {"type": "shutdown"}

Worker -> parent::

    {"type": "ready", "worker": id, "pid": N}      once, after boot
    {"type": "beat"}                               every beat_interval s
    {"type": "progress", "job_id", "done", "total"}
    {"type": "result", "job_id", "payload", "report"}
    {"type": "job-error", "job_id", "code"?, "error_type", "message",
     "attempts"}

Heartbeats come from a dedicated daemon thread so a busy simulation
keeps beating; a genuinely frozen worker (injected ``worker-hang`` or a
real livelock) stops beating and the supervisor's missed-beat detector
(:mod:`repro.serve.health`) declares it dead.

Determinism: the fleet chaos verbs (``worker-kill`` / ``worker-hang`` /
``worker-slow``) are consulted *here*, at job/task boundaries, keyed by
``(job key, boundary)`` through the same SHA-1 threshold as every other
``REPRO_FAULTS`` verb -- the same chaos spec always kills the same
workers at the same points.  Lethal verbs fire only on a job's first
assignment (``attempt == 0``), so a requeued job converges; because
every completed task is already persisted in the shared result cache,
the re-execution *resumes* from the kill point rather than restarting.

The child redirects ``sys.stdout`` to stderr before running any
simulation code: the stdout pipe carries frames only, and a stray
``print`` inside the simulator can never desynchronise the framing.
"""

import argparse
import os
import sys
import threading
import time

from repro.serve import protocol
from repro.serve.health import (
    DEFAULT_BEAT_INTERVAL,
    DEFAULT_MAX_MISSED,
    WorkerHealth,
)
from repro.serve.protocol import ProtocolError

#: seconds a worker-hang fault freezes the child (the supervisor kills
#: it long before: max_missed * beat_interval)
HANG_FREEZE_SECONDS = 600.0

#: how long the parent waits for a fresh worker's ``ready`` frame
DEFAULT_SPAWN_TIMEOUT = 30.0


class _DeadlineHit(Exception):
    """Raised inside the child's batch when the job's deadline passes."""


# ----------------------------------------------------------------------
# child side


class _BeatThread(object):
    """Daemon thread emitting beat frames; suspendable for worker-hang."""

    def __init__(self, send, interval):
        self.send = send
        self.interval = interval
        self._suspended = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fleet-beat", daemon=True
        )

    def start(self):
        self._thread.start()

    def suspend(self):
        """Stop beating (the injected-hang path): the worker goes dark."""
        self._suspended.set()

    def _run(self):
        while True:
            time.sleep(self.interval)
            if self._suspended.is_set():
                continue
            try:
                self.send({"type": "beat"})
            except (BrokenPipeError, OSError, ValueError):
                os._exit(0)  # parent is gone; nothing left to serve


class _Worker(object):
    """Child-process state: runner, framing, fault boundaries."""

    def __init__(self, worker_id, cache_dir, beat_interval, batch_jobs):
        from repro.sim.runner import ExperimentRunner

        self.worker_id = worker_id
        self.batch_jobs = batch_jobs
        self.runner = ExperimentRunner(cache_dir=cache_dir)
        # stdout carries frames only; anything the simulator prints goes
        # to stderr (grab the binary pipe before redirecting)
        self._out = sys.stdout.buffer
        sys.stdout = sys.stderr
        self._in = sys.stdin.buffer
        self._send_lock = threading.Lock()
        self.beats = _BeatThread(self.send, beat_interval)

    def send(self, message):
        with self._send_lock:
            protocol.write_frame_blocking(self._out, message)

    # -- fault boundaries ----------------------------------------------

    def _fault_point(self, job_key, attempt, stage):
        """Consult the chaos plan at one deterministic boundary.

        *stage* is ``"start"`` or ``"t<done>"`` -- per completed task --
        so ``worker-kill`` lands mid-batch with the finished prefix
        already checkpointed in the cache.
        """
        from repro.resilience.faults import CRASH_EXIT_CODE, get_fault_plan

        plan = get_fault_plan()
        if not plan.active:
            return
        key = "%s|%s" % (job_key, stage)
        slow = plan.worker_slow_seconds(key)
        if slow > 0:
            time.sleep(slow)
        if plan.should_worker_hang(key, attempt):
            self.beats.suspend()
            time.sleep(HANG_FREEZE_SECONDS)
        if plan.should_worker_kill(key, attempt):
            self._out.flush()
            os._exit(CRASH_EXIT_CODE)

    # -- job execution -------------------------------------------------

    def run_job(self, frame):
        from repro.resilience import FailurePolicy, SimulationError
        from repro.sim.runner import RunRequest

        job = frame["job"]
        job_id = job["id"]
        job_key = job["key"]
        attempt = int(job.get("attempt", 0))
        remaining = job.get("deadline")
        deadline_at = (time.monotonic() + remaining
                       if remaining is not None else None)
        try:
            requests = [RunRequest(*fields) for fields in job["requests"]]
            policy = FailurePolicy(**(job.get("policy") or {}))
        except (TypeError, ValueError) as exc:
            self.send({"type": "job-error", "job_id": job_id,
                       "error_type": type(exc).__name__,
                       "message": "bad job frame: %s" % exc, "attempts": 0})
            return
        if deadline_at is not None and remaining <= 0:
            self.send({"type": "job-error", "job_id": job_id,
                       "code": "deadline-exceeded",
                       "error_type": "DeadlineExceeded",
                       "message": "deadline expired before execution",
                       "attempts": 0})
            return
        self._fault_point(job_key, attempt, "start")

        def progress(done, total):
            # fault first so an injected kill/hang never emits a frame
            # for work it is about to lose
            self._fault_point(job_key, attempt, "t%d" % done)
            if deadline_at is not None and time.monotonic() > deadline_at:
                raise _DeadlineHit(job_id)
            self.send({"type": "progress", "job_id": job_id,
                       "done": done, "total": total})

        try:
            results, report = self.runner.run_batch(
                requests, jobs=self.batch_jobs, policy=policy,
                progress=progress,
            )
        except _DeadlineHit:
            self.send({"type": "job-error", "job_id": job_id,
                       "code": "deadline-exceeded",
                       "error_type": "DeadlineExceeded",
                       "message": "deadline expired at a task boundary "
                                  "(completed work is checkpointed)",
                       "attempts": attempt + 1})
            return
        except SimulationError as exc:
            self.send({"type": "job-error", "job_id": job_id,
                       "error_type": type(exc).__name__,
                       "message": str(exc),
                       "attempts": getattr(exc, "attempts", 0)})
            return
        except Exception as exc:  # noqa: BLE001 - worker must report, not die
            self.send({"type": "job-error", "job_id": job_id,
                       "error_type": type(exc).__name__,
                       "message": str(exc), "attempts": attempt + 1})
            return
        payload = [None if result is None else result.as_dict()
                   for result in results]
        self.send({"type": "result", "job_id": job_id,
                   "payload": payload, "report": report.as_dict()})

    def serve_forever(self):
        self.beats.start()
        self.send({"type": "ready", "worker": self.worker_id,
                   "pid": os.getpid()})
        while True:
            try:
                frame = protocol.read_frame_blocking(self._in)
            except ProtocolError:
                return 1  # parent-side framing bug or torn pipe
            if frame is None or frame.get("type") == "shutdown":
                return 0
            if frame.get("type") == "job":
                self.run_job(frame)
            # unknown frame types are ignored (forward compatibility)


def worker_main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro.serve.supervisor", description="fleet worker process"
    )
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--beat-interval", type=float,
                        default=DEFAULT_BEAT_INTERVAL)
    parser.add_argument("--batch-jobs", type=int, default=1)
    args = parser.parse_args(argv)
    worker = _Worker(args.worker_id, args.cache_dir, args.beat_interval,
                     args.batch_jobs)
    return worker.serve_forever()


# ----------------------------------------------------------------------
# parent side


class WorkerLost(Exception):
    """The worker died (or went silent) while holding a job."""


class WorkerProcess(object):
    """Parent-side handle on one fleet worker subprocess.

    Owns the subprocess, a dedicated reader task draining its stdout
    (beats fold straight into :class:`WorkerHealth`; every other frame
    lands on an internal queue), and the health record.  The reader
    task is the *only* consumer of the pipe, so a slow ``execute`` poll
    can never tear a frame in half.
    """

    def __init__(self, worker_id, cache_dir=None,
                 beat_interval=DEFAULT_BEAT_INTERVAL,
                 max_missed=DEFAULT_MAX_MISSED, batch_jobs=1,
                 spawn_timeout=DEFAULT_SPAWN_TIMEOUT):
        self.id = worker_id
        self.cache_dir = cache_dir
        self.beat_interval = beat_interval
        self.max_missed = max_missed
        self.batch_jobs = batch_jobs
        self.spawn_timeout = spawn_timeout
        self.health = WorkerHealth(beat_interval, max_missed)
        self.state = "starting"
        self.pid = None
        self.current_job = None
        self.respawns = 0        # times this slot was respawned
        self.jobs_done = 0
        self._proc = None
        self._frames = None      # asyncio.Queue of non-beat frames
        self._reader = None

    # -- lifecycle -----------------------------------------------------

    async def spawn(self):
        """Start (or restart) the subprocess; wait for its ready frame."""
        import asyncio

        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)
        ))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        argv = [sys.executable, "-m", "repro.serve.worker_main",
                "--worker-id", str(self.id),
                "--beat-interval", str(self.beat_interval),
                "--batch-jobs", str(self.batch_jobs)]
        if self.cache_dir:
            argv += ["--cache-dir", self.cache_dir]
        self.state = "starting"
        self._proc = await asyncio.create_subprocess_exec(
            *argv, stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE, env=env,
        )
        self.pid = self._proc.pid
        self._frames = asyncio.Queue()
        self._reader = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        try:
            frame = await asyncio.wait_for(self._frames.get(),
                                           self.spawn_timeout)
        except asyncio.TimeoutError:
            self.kill()
            raise WorkerLost("worker %d never sent ready" % self.id)
        if frame is None or frame.get("type") != "ready":
            self.kill()
            raise WorkerLost("worker %d sent %r instead of ready"
                             % (self.id, frame))
        self.health.reset()
        self.state = "idle"
        return self

    async def _read_loop(self):
        while True:
            try:
                frame = await protocol.read_frame(self._proc.stdout)
            except (ProtocolError, ConnectionError, OSError):
                frame = None
            if frame is None:
                await self._frames.put(None)  # EOF sentinel: worker gone
                return
            if frame.get("type") == "beat":
                self.health.beat()
                continue
            await self._frames.put(frame)

    @property
    def alive(self):
        return (self._proc is not None
                and self._proc.returncode is None
                and self.state not in ("dead", "stopped"))

    def kill(self):
        """Hard-kill the subprocess (idempotent)."""
        if self._proc is not None and self._proc.returncode is None:
            try:
                self._proc.kill()
            except ProcessLookupError:
                pass
        self.state = "dead"

    async def reap(self):
        """Await subprocess exit and the reader task (after kill/EOF)."""
        import asyncio

        if self._proc is not None:
            try:
                await asyncio.wait_for(self._proc.wait(), 10.0)
            except asyncio.TimeoutError:
                pass
        if self._reader is not None:
            self._reader.cancel()
            try:
                await self._reader
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass

    async def send(self, message):
        """Write one frame to the worker; raises :class:`WorkerLost`."""
        try:
            self._proc.stdin.write(protocol.encode_frame(message))
            await self._proc.stdin.drain()
        except (ConnectionError, OSError, RuntimeError, ProtocolError):
            raise WorkerLost("worker %d pipe is gone" % self.id)

    async def request_shutdown(self):
        """Best-effort graceful shutdown frame (drain path)."""
        try:
            await self.send({"type": "shutdown"})
        except WorkerLost:
            pass

    # -- job execution -------------------------------------------------

    async def execute(self, job, attempt, policy_fields=None,
                      on_progress=None, poll_interval=0.05):
        """Run *job* on this worker; returns ``(outcome, detail)``.

        *policy_fields* is the effective :class:`FailurePolicy` as a
        plain dict (the supervisor resolves env defaults + per-job
        overrides once, so every attempt runs under the same policy).

        Outcomes:

        * ``("done", (payload, report))``  -- completed normally;
        * ``("error", info)``              -- the worker reported a
          structured failure (*info* is the job-error frame);
        * ``("cancelled", None)``          -- the job's cancel flag went
          up mid-run; the worker is killed (its loop cannot be
          interrupted) and the slot respawned by the supervisor;
        * ``("lost", reason)``             -- the worker died or went
          heartbeat-silent; the caller requeues the job.
        """
        import asyncio

        remaining = None
        if job.deadline is not None:
            remaining = max(0.0, job.deadline - time.monotonic())
        self.state = "busy"
        self.current_job = job.id
        self.health.reset()
        try:
            await self.send({"type": "job", "job": {
                "id": job.id, "key": job.key, "attempt": attempt,
                "deadline": remaining,
                "requests": [list(request) for request in job.requests],
                "policy": policy_fields or {},
            }})
        except WorkerLost:
            self.kill()
            return "lost", "send failed"
        try:
            while True:
                try:
                    frame = await asyncio.wait_for(self._frames.get(),
                                                   poll_interval)
                except asyncio.TimeoutError:
                    if job.cancel_requested:
                        # the child's batch loop cannot be interrupted
                        # remotely; completed tasks are checkpointed, so
                        # killing the worker loses nothing
                        self.kill()
                        return "cancelled", None
                    if self._proc.returncode is not None:
                        self.state = "dead"
                        return "lost", ("exit code %s"
                                        % self._proc.returncode)
                    if self.health.dead():
                        self.kill()
                        return "lost", ("no heartbeat for %d intervals"
                                        % self.health.max_missed)
                    continue
                if frame is None:
                    self.state = "dead"
                    return "lost", "pipe EOF"
                kind = frame.get("type")
                if kind == "progress" and frame.get("job_id") == job.id:
                    if on_progress is not None:
                        on_progress(job, frame.get("done", 0),
                                    frame.get("total", job.done_total))
                elif kind == "result" and frame.get("job_id") == job.id:
                    self.jobs_done += 1
                    return "done", (frame.get("payload"),
                                    frame.get("report") or {})
                elif kind == "job-error" and frame.get("job_id") == job.id:
                    return "error", frame
                # stale frames from a previous assignment are dropped
        finally:
            self.current_job = None
            if self.state == "busy":
                self.state = "idle"

    def snapshot(self):
        """One row of the ``fleet`` endpoint / ``repro jobs --workers``."""
        return {
            "worker": self.id,
            "pid": self.pid,
            "state": self.state,
            "job": self.current_job,
            "beats_missed": self.health.missed(),
            "respawns": self.respawns,
            "jobs_done": self.jobs_done,
        }


if __name__ == "__main__":
    sys.exit(worker_main())
