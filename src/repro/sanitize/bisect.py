"""Divergence sentinel and first-bad-cycle auto-bisect.

When a sanitizer check trips mid-run, the check cadence only brackets
the corruption: the invariant broke somewhere in the last
``sanitizer.interval`` cycles.  Determinism turns localisation into a
replay problem -- restore the nearest (pre-violation) checkpoint, rerun
the same cycles with per-cycle full checking, and the first failing
check names the first bad cycle exactly.

:func:`sentinel_run` packages the whole loop: run with checkpoints and
a sanitizer; on a :class:`~repro.sanitize.SanitizerError`, replay from
the last saved checkpoint and return a :class:`DivergenceReport` naming
the first divergent cycle.
"""

from repro.sanitize.checks import Sanitizer
from repro.sanitize.errors import SanitizerError


class DivergenceReport:
    """Outcome of an auto-bisect after a sanitizer violation.

    :param trigger: the original coarse-grained :class:`SanitizerError`.
    :param first_bad_cycle: first cycle at which a per-cycle full check
        fails during replay (None when the replay stayed clean --
        e.g. the corruption was not reproducible from the checkpoint).
    :param first_error: the :class:`SanitizerError` raised at
        ``first_bad_cycle`` during replay.
    :param replay_from: cycle of the checkpoint the replay started from
        (0 = clean start).
    """

    def __init__(self, trigger, first_bad_cycle, first_error, replay_from):
        self.trigger = trigger
        self.first_bad_cycle = first_bad_cycle
        self.first_error = first_error
        self.replay_from = replay_from

    def describe(self):
        lines = ["sanitizer violation: %s" % self.trigger]
        lines.append("replayed from cycle %d with per-cycle full checks"
                     % self.replay_from)
        if self.first_bad_cycle is None:
            lines.append("replay stayed clean -- violation did not "
                         "reproduce from the checkpoint")
        else:
            lines.append("first bad cycle: %d (%s)"
                         % (self.first_bad_cycle, self.first_error))
        return "\n".join(lines)

    def __repr__(self):
        return ("DivergenceReport(first_bad_cycle=%r, replay_from=%r)"
                % (self.first_bad_cycle, self.replay_from))


def bisect_first_bad_cycle(system_factory, instructions,
                           checkpoint_state=None, corrupt_at=None,
                           stop_cycle=None, step=1):
    """Replay with per-*step*-cycle full checks; find the first bad cycle.

    :param system_factory: zero-argument callable building a fresh
        :class:`~repro.sim.System` identical to the diverged one.
    :param instructions: the run's instruction budget.
    :param checkpoint_state: snapshot dict to restore before replaying
        (None replays from a clean start).
    :param corrupt_at: re-inject the deterministic ``corrupt-state``
        fault at this cycle, mirroring the original run.
    :param stop_cycle: give up beyond this cycle (None = run to
        completion).
    :returns: ``(cycle, SanitizerError)`` of the first failing check, or
        None when the replay stays clean.
    """
    system = system_factory()
    if checkpoint_state is not None:
        system.restore(checkpoint_state)
    sanitizer = Sanitizer("full", interval=step)
    core = system.core
    core.start(instructions)
    now = core.cycle
    corrupted = False
    while not core.done and (stop_cycle is None or now < stop_cycle):
        now = core.run_until(now, now + step)
        core.cycle = now
        if corrupt_at is not None and not corrupted and now >= corrupt_at:
            from repro.resilience.faults import apply_state_corruption
            apply_state_corruption(system)
            corrupted = True
        try:
            sanitizer.check_system(system, now)
        except SanitizerError as error:
            return now, error
    return None


def sentinel_run(system_factory, instructions, checkpointer=None,
                 sanitizer=None, corrupt_at=None):
    """Run with a divergence sentinel; auto-bisect on violation.

    Returns ``(result, None)`` on a clean run or ``(None, report)`` with
    a :class:`DivergenceReport` when the sanitizer tripped.  The
    checkpoint written before the violation (checks always precede the
    save, so on-disk state is pre-corruption) seeds the replay.
    """
    system = system_factory()
    try:
        result = system.run(instructions, checkpointer=checkpointer,
                            sanitizer=sanitizer, corrupt_at=corrupt_at)
        return result, None
    except SanitizerError as trigger:
        state = None
        replay_from = 0
        if checkpointer is not None:
            loaded = checkpointer.load()
            if loaded is not None:
                state, replay_from = loaded
        found = bisect_first_bad_cycle(
            system_factory, instructions, checkpoint_state=state,
            corrupt_at=corrupt_at,
            stop_cycle=(trigger.cycle + 1 if trigger.cycle is not None
                        else None),
        )
        if found is None:
            first_bad_cycle, first_error = None, None
        else:
            first_bad_cycle, first_error = found
        return None, DivergenceReport(trigger, first_bad_cycle,
                                      first_error, replay_from)
