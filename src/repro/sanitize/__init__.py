"""Runtime invariant sanitizer and divergence auto-bisect.

``REPRO_CHECK={off,cheap,full}`` selects the audit level (see
:mod:`repro.sanitize.checks`); violations raise the structured
:class:`SanitizerError`; :func:`sentinel_run` replays from the nearest
checkpoint with per-cycle full checks to name the first bad cycle.
"""

from repro.sanitize.bisect import (
    DivergenceReport,
    bisect_first_bad_cycle,
    sentinel_run,
)
from repro.sanitize.checks import (
    CHEAP_INTERVAL,
    ENV_CHECK,
    FULL_INTERVAL,
    MODES,
    Sanitizer,
    mode_from_env,
)
from repro.sanitize.errors import SanitizerError

__all__ = [
    "CHEAP_INTERVAL",
    "DivergenceReport",
    "ENV_CHECK",
    "FULL_INTERVAL",
    "MODES",
    "Sanitizer",
    "SanitizerError",
    "bisect_first_bad_cycle",
    "mode_from_env",
    "sentinel_run",
]
