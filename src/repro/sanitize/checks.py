"""Runtime invariant sanitizer (``REPRO_CHECK``).

The simulator's state lives in plain Python structures that nothing
verifies at runtime; a stray index or a bad restore silently corrupts a
run.  The sanitizer audits the microarchitectural invariants those
structures are supposed to obey, at a configurable cost:

* ``REPRO_CHECK=off``   -- never instantiated; the fast paths are
  untouched (the default);
* ``REPRO_CHECK=cheap`` -- counter-consistency and bound checks every
  :data:`CHEAP_INTERVAL` cycles (O(structures), not O(lines));
* ``REPRO_CHECK=full``  -- everything in *cheap* plus exhaustive walks:
  per-line cache tag/set/LRU consistency, ARF heap ordering and
  ARF-versus-functional register agreement, every
  :data:`FULL_INTERVAL` cycles.

Violations raise :class:`~repro.sanitize.SanitizerError` carrying the
component, invariant label and cycle; with a snapshot directory
configured the offending state is dumped first (enveloped, atomic) and
the error carries its path.
"""

import json
import os

from repro.sanitize.errors import SanitizerError

MODES = ("off", "cheap", "full")

ENV_CHECK = "REPRO_CHECK"

CHEAP_INTERVAL = 8192
FULL_INTERVAL = 1024


def mode_from_env(env=None):
    """Parse ``REPRO_CHECK`` into a mode name; ValueError on junk."""
    raw = (env if env is not None else os.environ).get(ENV_CHECK)
    if raw is None:
        return "off"
    mode = raw.strip().lower()
    if mode == "":
        return "off"
    if mode not in MODES:
        raise ValueError(
            "invalid %s value %r (choose from %s)"
            % (ENV_CHECK, raw, ", ".join(MODES))
        )
    return mode


class Sanitizer:
    """Invariant auditor for a :class:`~repro.sim.System`.

    :param mode: ``"cheap"`` or ``"full"`` (``"off"`` builds an inert
        instance with ``active == False``).
    :param interval: cycles between checks; mode-dependent default.
    :param snapshot_dir: when set, the offending system state is dumped
        there (atomic, integrity-enveloped) before the error is raised.
    """

    def __init__(self, mode="cheap", interval=None, snapshot_dir=None):
        if mode not in MODES:
            raise ValueError("invalid sanitizer mode %r (choose from %s)"
                             % (mode, ", ".join(MODES)))
        self.mode = mode
        if interval is None:
            interval = FULL_INTERVAL if mode == "full" else CHEAP_INTERVAL
        self.interval = max(1, int(interval))
        self.snapshot_dir = snapshot_dir
        self.checks_run = 0
        self.violations = 0

    @property
    def active(self):
        return self.mode != "off"

    @classmethod
    def from_env(cls, env=None, snapshot_dir=None):
        """Build from ``REPRO_CHECK``; None when checking is off."""
        mode = mode_from_env(env)
        if mode == "off":
            return None
        return cls(mode, snapshot_dir=snapshot_dir)

    # ------------------------------------------------------------------

    def _fail(self, system, cycle, component, invariant, detail):
        self.violations += 1
        path = None
        if self.snapshot_dir is not None and system is not None:
            path = self._dump(system, cycle)
        raise SanitizerError(component, invariant, detail, cycle, path)

    def _dump(self, system, cycle):
        """Persist the offending state for post-mortem inspection."""
        try:
            from repro.checkpoint.manager import CHECKPOINT_VERSION
            from repro.obs.io import atomic_write_text
            from repro.resilience.envelope import wrap_envelope
            os.makedirs(self.snapshot_dir, exist_ok=True)
            path = os.path.join(
                self.snapshot_dir,
                "sanitizer-cycle%s.json" % (cycle if cycle is not None
                                            else "unknown"),
            )
            payload = {"cycle": cycle, "state": system.snapshot()}
            atomic_write_text(
                path,
                json.dumps(wrap_envelope(payload, CHECKPOINT_VERSION),
                           sort_keys=True),
            )
            return path
        except Exception:
            # the dump is best-effort: never mask the invariant failure
            return None

    # ------------------------------------------------------------------
    # component invariants

    def check_system(self, system, cycle=None, include_shared=True):
        """Audit one system; raises :class:`SanitizerError` on violation.

        :param include_shared: audit the (possibly shared) LLC/DRAM too;
            CMP callers pass True for exactly one core to avoid walking
            the shared LLC once per core.
        """
        self.checks_run += 1
        full = self.mode == "full"
        self._check_machine(system, cycle)
        self._check_core(system, cycle)
        hierarchy = system.hierarchy
        levels = [("mem.l1i", hierarchy.l1i), ("mem.l1d", hierarchy.l1d),
                  ("mem.l2", hierarchy.l2)]
        if include_shared:
            levels.append(("mem.llc", hierarchy.llc))
        for name, cache in levels:
            self._check_cache(system, cycle, name, cache, full)
        self._check_mshr(system, cycle)
        if include_shared:
            self._check_dram(system, cycle)
        self._check_prefetcher(system, cycle, full)
        if hasattr(system.prefetcher, "arf"):
            self._check_arf(system, cycle, full)
        if full and getattr(system, "replay", None) is not None:
            self._check_replay(system, cycle)

    def _check_machine(self, system, cycle):
        machine = system.machine
        if len(machine.regs) != 32:
            self._fail(system, cycle, "machine", "regfile-shape",
                       "expected 32 registers, found %d"
                       % len(machine.regs))
        if not 0 <= machine.index <= len(machine.program):
            self._fail(system, cycle, "machine", "pc-range",
                       "instruction index %d outside program of %d"
                       % (machine.index, len(machine.program)))

    def _check_core(self, system, cycle):
        core = system.core
        rob_len = len(core.rob)
        head = core._rob_head
        if not 0 <= head <= rob_len:
            self._fail(system, cycle, "core", "rob-head-range",
                       "head %d outside ROB of %d" % (head, rob_len))
        in_flight = rob_len - head
        cap = core.config.rob_entries
        if in_flight > cap:
            self._fail(system, cycle, "core", "rob-size-bound",
                       "%d in flight exceeds %d ROB entries"
                       % (in_flight, cap))
        if core.budget and core.retired > core.budget + core.config.width:
            self._fail(system, cycle, "core", "retire-budget-bound",
                       "retired %d far beyond budget %d"
                       % (core.retired, core.budget))
        if core.cond_branches > core.branches:
            self._fail(system, cycle, "core", "branch-partition",
                       "%d conditional of %d total branches"
                       % (core.cond_branches, core.branches))
        if core.mispredicts > core.branches:
            self._fail(system, cycle, "core", "mispredict-bound",
                       "%d mispredicts of %d branches"
                       % (core.mispredicts, core.branches))
        for name in ("retired", "branches", "cond_branches", "mispredicts",
                     "fetch_cycles", "rob_full_stalls",
                     "flush_stall_cycles"):
            if getattr(core, name) < 0:
                self._fail(system, cycle, "core", "counter-sign",
                           "%s is negative" % name)

    def _check_cache(self, system, cycle, name, cache, full):
        stats = cache.stats
        if stats.hits + stats.misses != stats.accesses:
            self._fail(system, cycle, name, "hit-miss-partition",
                       "%d hits + %d misses != %d accesses"
                       % (stats.hits, stats.misses, stats.accesses))
        if stats.writebacks > stats.evictions:
            self._fail(system, cycle, name, "writeback-bound",
                       "%d writebacks of %d evictions"
                       % (stats.writebacks, stats.evictions))
        for field in stats.__slots__:
            if getattr(stats, field) < 0:
                self._fail(system, cycle, name, "counter-sign",
                           "%s is negative" % field)
        assoc = cache.assoc
        mask = cache._set_mask
        tick = cache._tick
        for index, cache_set in enumerate(cache.sets):
            if len(cache_set) > assoc:
                self._fail(system, cycle, name, "set-occupancy",
                           "set %d holds %d lines with associativity %d"
                           % (index, len(cache_set), assoc))
            if not full:
                continue
            for block, line in cache_set.items():
                if block & mask != index:
                    self._fail(system, cycle, name, "tag-set-consistency",
                               "block %#x filed in set %d, maps to set %d"
                               % (block, index, block & mask))
                if line.lru > tick:
                    self._fail(system, cycle, name, "lru-monotonic",
                               "line %#x lru %d ahead of tick %d"
                               % (block, line.lru, tick))

    def _check_mshr(self, system, cycle):
        hierarchy = system.hierarchy
        mshr = hierarchy._mshr
        if len(mshr) != hierarchy.config.mshr_entries:
            self._fail(system, cycle, "mem.mshr", "mshr-shape",
                       "%d slots, configured %d"
                       % (len(mshr), hierarchy.config.mshr_entries))
        for slot, busy_until in enumerate(mshr):
            if busy_until < 0:
                self._fail(system, cycle, "mem.mshr", "mshr-time-sign",
                           "slot %d busy until %r" % (slot, busy_until))
        imshr = hierarchy._imshr
        if len(imshr) != hierarchy.config.imshr_entries:
            self._fail(system, cycle, "mem.imshr", "imshr-shape",
                       "%d slots, configured %d"
                       % (len(imshr), hierarchy.config.imshr_entries))
        for slot, busy_until in enumerate(imshr):
            if busy_until < 0:
                self._fail(system, cycle, "mem.imshr", "imshr-time-sign",
                           "slot %d busy until %r" % (slot, busy_until))
        frontend = system.core.frontend
        if frontend is not None:
            ftq = frontend.ftq
            if len(ftq) > ftq.entries:
                self._fail(system, cycle, "core.ftq", "ftq-bound",
                           "%d queued with capacity %d"
                           % (len(ftq), ftq.entries))

    def _check_dram(self, system, cycle):
        dram = system.hierarchy.dram
        if dram.next_free_demand > dram.next_free:
            self._fail(system, cycle, "mem.dram", "channel-ordering",
                       "demand backlog %d ahead of channel backlog %d"
                       % (dram.next_free_demand, dram.next_free))
        if dram.prefetch_accesses > dram.accesses:
            self._fail(system, cycle, "mem.dram", "access-partition",
                       "%d prefetch of %d total accesses"
                       % (dram.prefetch_accesses, dram.accesses))

    def _check_prefetcher(self, system, cycle, full):
        prefetcher = system.prefetcher
        component = "pf.%s" % prefetcher.name
        queue = prefetcher.queue
        if len(queue) > queue.capacity:
            self._fail(system, cycle, component, "queue-bound",
                       "%d queued with capacity %d"
                       % (len(queue), queue.capacity))
        stats = prefetcher.stats
        for field in ("issued", "useful", "useless", "late", "dropped",
                      "duplicate"):
            if getattr(stats, field) < 0:
                self._fail(system, cycle, component, "counter-sign",
                           "%s is negative" % field)
        resolved = stats.useful + stats.late + stats.useless
        if resolved > stats.issued:
            self._fail(system, cycle, component, "outcome-partition",
                       "%d resolved outcomes of %d issued"
                       % (resolved, stats.issued))
        from repro.prefetchers.base import _RECENT_BLOCKS
        if len(prefetcher._recent) > _RECENT_BLOCKS:
            self._fail(system, cycle, component, "dedup-window-bound",
                       "%d blocks in a %d-entry window"
                       % (len(prefetcher._recent), _RECENT_BLOCKS))
        if full:
            for addr, _meta in queue._queue:
                if not isinstance(addr, int) or addr < 0:
                    self._fail(system, cycle, component,
                               "queue-entry-shape",
                               "queued address %r" % (addr,))

    def _check_replay(self, system, cycle):
        """Differential oracle: cross-validate a chunk of the replayed
        trace against a shadow lockstep machine (full mode only)."""
        from repro.trace.format import TraceError
        try:
            system.replay.verify_chunk()
        except TraceError as exc:
            self._fail(system, cycle, "trace.replay",
                       "replay-lockstep-divergence", str(exc))

    def _check_arf(self, system, cycle, full):
        """B-Fetch ARF: heap ordering, sequence bounds, and (full mode)
        agreement with the functional machine for fully-drained regs."""
        prefetcher = system.prefetcher
        arf = prefetcher.arf
        component = "pf.%s.arf" % prefetcher.name
        commit_seq = getattr(prefetcher, "_commit_seq", None)
        if commit_seq is not None:
            for reg, seq in enumerate(arf.seq):
                if seq > commit_seq:
                    self._fail(system, cycle, component, "arf-seq-bound",
                               "reg %d seq %d ahead of commit seq %d"
                               % (reg, seq, commit_seq))
        pending = arf._pending
        for index in range(1, len(pending)):
            parent = (index - 1) >> 1
            if pending[index] < pending[parent]:
                self._fail(system, cycle, component, "arf-heap-order",
                           "entry %d sorts before its parent" % index)
        if not full:
            return
        # agreement: every committed write to r (r31 excluded) enqueues
        # an ARF write, so once no write for r is pending the ARF holds
        # the youngest committed value -- which is exactly the
        # functional machine's current value of r
        pending_regs = {entry[2] for entry in pending}
        machine_regs = system.machine.regs
        for reg in range(min(len(arf.values), 31)):
            if reg in pending_regs or arf.seq[reg] < 0:
                continue
            if arf.values[reg] != machine_regs[reg]:
                self._fail(system, cycle, component,
                           "arf-functional-agreement",
                           "reg %d: ARF %d != machine %d"
                           % (reg, arf.values[reg], machine_regs[reg]))
