"""Structured sanitizer failures.

A :class:`SanitizerError` names the *component* whose invariant broke,
the *invariant* label, the simulated *cycle* of the failing check, and
(when a snapshot directory is configured) the path of the state snapshot
dumped at detection time -- everything the auto-bisect and a human need
to localise the corruption.
"""


class SanitizerError(RuntimeError):
    """A runtime microarchitectural invariant was violated.

    :param component: dotted component name (``"core"``, ``"mem.l1d"``,
        ``"pf.bfetch.arf"``...).
    :param invariant: short invariant label (``"hit-miss-partition"``).
    :param detail: human-readable specifics of the violation.
    :param cycle: simulated cycle of the failing check (None when the
        check ran outside a simulation, e.g. on a loaded snapshot).
    :param snapshot_path: file the offending state was dumped to, when a
        snapshot directory is configured.
    """

    def __init__(self, component, invariant, detail="", cycle=None,
                 snapshot_path=None):
        parts = ["invariant %r violated in %s" % (invariant, component)]
        if cycle is not None:
            parts.append("at cycle %d" % cycle)
        message = " ".join(parts)
        if detail:
            message += ": %s" % detail
        if snapshot_path is not None:
            message += " (state snapshot: %s)" % snapshot_path
        super().__init__(message)
        self.component = component
        self.invariant = invariant
        self.detail = detail
        self.cycle = cycle
        self.snapshot_path = snapshot_path
