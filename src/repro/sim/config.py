"""Top-level system configuration and the prefetcher factory.

:class:`SystemConfig` aggregates every knob of the simulated machine; the
defaults reproduce the paper's Table II baseline.  Each sensitivity sweep
in the evaluation overrides exactly one field (pipeline width for Fig. 14,
``bp_scale`` for Fig. 13, the B-Fetch confidence threshold for Fig. 12,
B-Fetch storage for Fig. 15).
"""

from repro.branch.perceptron import PerceptronPredictor
from repro.branch.tournament import TournamentConfig, TournamentPredictor
from repro.core.bfetch import BFetchPrefetcher
from repro.core.config import BFetchConfig
from repro.cpu.ooo import CoreConfig
from repro.frontend import (
    FRONTEND_MODES,
    FrontendConfig,
    IPREFETCHER_NAMES,
    make_iprefetcher,
)
from repro.memory.hierarchy import HierarchyConfig
from repro.prefetchers import (
    ISBPrefetcher,
    NextNPrefetcher,
    Prefetcher,
    PerfectPrefetcher,
    SMSConfig,
    SMSPrefetcher,
    STeMSPrefetcher,
    StridePrefetcher,
    TangoPrefetcher,
)

PREFETCHER_NAMES = (
    "none", "nextn", "stride", "sms", "perfect", "tango", "bfetch",
    "isb", "stems",
)

PREDICTOR_NAMES = ("tournament", "perceptron")


class SystemConfig:
    """Whole-system parameters (paper Table II defaults).

    :param width: pipeline width (fetch/issue/retire).
    :param bp_scale: tournament-predictor size multiplier (Fig. 13).
    :param prefetcher: one of :data:`PREFETCHER_NAMES`.
    """

    def __init__(
        self,
        width=4,
        rob_entries=192,
        bp_scale=1.0,
        prefetcher="none",
        core=None,
        hierarchy=None,
        bfetch=None,
        sms=None,
        stride_degree=8,
        nextn_degree=4,
        branch_predictor="tournament",
        frontend="off",
        iprefetcher="none",
        frontend_cfg=None,
    ):
        if branch_predictor not in PREDICTOR_NAMES:
            raise ValueError(
                "unknown branch predictor %r (choose from %s)"
                % (branch_predictor, ", ".join(PREDICTOR_NAMES))
            )
        if prefetcher not in PREFETCHER_NAMES:
            raise ValueError(
                "unknown prefetcher %r (choose from %s)"
                % (prefetcher, ", ".join(PREFETCHER_NAMES))
            )
        if frontend not in FRONTEND_MODES:
            raise ValueError(
                "unknown frontend mode %r (choose from %s)"
                % (frontend, ", ".join(FRONTEND_MODES))
            )
        if iprefetcher not in IPREFETCHER_NAMES:
            raise ValueError(
                "unknown iprefetcher %r (choose from %s)"
                % (iprefetcher, ", ".join(IPREFETCHER_NAMES))
            )
        if iprefetcher != "none" and frontend == "off":
            raise ValueError(
                "iprefetcher %r needs the decoupled front end; pass "
                "frontend=\"ftq\"" % (iprefetcher,)
            )
        # fail fast on nonsensical sizes instead of letting a zero-wide
        # pipeline or a negative degree corrupt a run far downstream
        for field, value in (("width", width),
                             ("rob_entries", rob_entries),
                             ("stride_degree", stride_degree),
                             ("nextn_degree", nextn_degree)):
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    "%s must be a positive integer, got %r" % (field, value)
                )
        if not bp_scale > 0:
            raise ValueError(
                "bp_scale must be positive, got %r" % (bp_scale,)
            )
        self.width = width
        self.rob_entries = rob_entries
        self.bp_scale = bp_scale
        self.prefetcher = prefetcher
        self.hierarchy = hierarchy or HierarchyConfig()
        # the core's fetch-block geometry follows the L1 line size unless
        # an explicit CoreConfig overrides it
        self.core = core or CoreConfig(
            width=width,
            rob_entries=rob_entries,
            block_bytes=self.hierarchy.block_bytes,
            frontend=frontend,
        )
        if self.core.frontend != frontend:
            raise ValueError(
                "explicit CoreConfig.frontend=%r disagrees with "
                "SystemConfig.frontend=%r" % (self.core.frontend, frontend)
            )
        self.frontend = frontend
        self.iprefetcher = iprefetcher
        self.frontend_cfg = frontend_cfg or FrontendConfig()
        self.bfetch = bfetch or BFetchConfig()
        self.sms = sms or SMSConfig()
        self.stride_degree = stride_degree
        self.nextn_degree = nextn_degree
        self.branch_predictor = branch_predictor

    def tournament_config(self):
        return TournamentConfig(scale=self.bp_scale)

    def make_predictor(self):
        """Build the configured direction predictor."""
        if self.branch_predictor == "perceptron":
            entries = max(16, int(512 * self.bp_scale))
            entries = 1 << (entries.bit_length() - 1)
            return PerceptronPredictor(entries=entries)
        return TournamentPredictor(self.tournament_config())

    def key(self):
        """Stable identity tuple for result caching.

        Front-end fields are appended only when the decoupled front end
        is enabled, so every pre-front-end cached digest keeps its key.
        """
        if self.frontend != "off":
            return self._base_key() + (
                self.frontend,
                self.iprefetcher,
                self.hierarchy.imshr_entries,
            ) + self.frontend_cfg.key()
        return self._base_key()

    def _base_key(self):
        bf = self.bfetch
        return (
            self.width,
            self.rob_entries,
            self.bp_scale,
            self.branch_predictor,
            self.prefetcher,
            self.hierarchy.llc_size_per_core,
            self.hierarchy.llc_policy,
            self.hierarchy.mshr_entries,
            self.stride_degree,
            self.nextn_degree,
            self.sms.region_bytes,
            bf.brtc_entries,
            bf.mht_entries,
            bf.path_confidence_threshold,
            bf.use_filter,
            bf.loop_prefetch,
            bf.pattern_prefetch,
            bf.arf_mode,
            bf.arf_delay,
            bf.filter_threshold,
            bf.instruction_prefetch,
        )

    def describe(self):
        """Table II-style description rows."""
        hier = self.hierarchy
        return [
            ("CPU", "%d-wide O3 processor, %d-entry ROB"
             % (self.width, self.rob_entries)),
            ("L1I & L1D cache", "%dKB %d-way, %d-cycle latency"
             % (hier.l1d_size // 1024, hier.l1d_assoc, hier.l1_latency)),
            ("L2 cache", "Unified %dKB %d-way, %d-cycle latency"
             % (hier.l2_size // 1024, hier.l2_assoc, hier.l2_latency)),
            ("Shared L3 cache", "%dMB/core %d-way, %d-cycle latency"
             % (hier.llc_size_per_core // (1024 * 1024), hier.llc_assoc,
                hier.llc_latency)),
            ("Off-chip DRAM", "%d-cycle latency" % hier.dram_latency),
            ("Branch predictor", "Tournament predictor (scale %.2fx)"
             % self.bp_scale),
            ("Branch path confidence threshold",
             "%.2f" % self.bfetch.path_confidence_threshold),
            ("Per-load filter threshold", str(self.bfetch.filter_threshold)),
        ]


def make_prefetcher(config):
    """Instantiate the prefetcher selected by *config*.

    Every prefetcher's block geometry (issue-side dedup, sequential
    stepping, delta learning) is derived from the hierarchy's L1 line
    size rather than an assumed 64 bytes, so non-default
    ``HierarchyConfig.block_bytes`` values stay consistent end to end.
    """
    name = config.prefetcher
    block_bytes = config.hierarchy.block_bytes
    if name == "none":
        return Prefetcher(block_bytes=block_bytes)
    if name == "nextn":
        return NextNPrefetcher(n=config.nextn_degree,
                               block_bytes=block_bytes)
    if name == "stride":
        return StridePrefetcher(degree=config.stride_degree,
                                block_bytes=block_bytes)
    if name == "sms":
        return SMSPrefetcher(config.sms)
    if name == "perfect":
        return PerfectPrefetcher(block_bytes=block_bytes)
    if name == "tango":
        return TangoPrefetcher(block_bytes=block_bytes)
    if name == "bfetch":
        return BFetchPrefetcher(config.bfetch, block_bytes=block_bytes)
    if name == "isb":
        return ISBPrefetcher(block_bytes=block_bytes)
    if name == "stems":
        return STeMSPrefetcher(config.sms)
    raise ValueError("unknown prefetcher %r" % name)


def make_iprefetcher_for(config):
    """Instantiate the I-side prefetcher selected by *config* (the
    front-end assembly path; geometry follows the L1 line size)."""
    return make_iprefetcher(
        config.iprefetcher,
        config.frontend_cfg,
        block_bytes=config.hierarchy.block_bytes,
        bfetch_config=config.bfetch,
    )
