"""Across-seed variability analysis.

Every workload's stochastic content (pointer-chain order, predicate
patterns, gather indices) can be re-drawn via the ``variant`` seed of
:func:`~repro.workloads.build_workload`.  Running an experiment across
several variants yields a dispersion estimate for the reported speedups
-- the reproduction's substitute for the run-to-run variation a real
testbed exhibits.
"""

import math


def mean_and_ci(values, z=1.96):
    """Sample mean and normal-approximation confidence half-width.

    :returns: ``(mean, half_width)``; half-width is 0 for n < 2.
    """
    values = list(values)
    if not values:
        raise ValueError("no samples")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, z * math.sqrt(variance / n)


def speedup_across_variants(runner, benchmark, prefetcher,
                            instructions=None, variants=3):
    """Speedup of *prefetcher* over baseline across workload variants.

    :returns: ``(mean, half_width, samples)``.
    """
    samples = []
    for variant in range(variants):
        base = runner.run_single(benchmark, "none", instructions,
                                 variant=variant)
        run = runner.run_single(benchmark, prefetcher, instructions,
                                variant=variant)
        samples.append(run.ipc / base.ipc)
    mean, half = mean_and_ci(samples)
    return mean, half, samples


def variability_report(runner, benchmarks, prefetcher, instructions=None,
                       variants=3):
    """Rows of ``(benchmark, {mean, ci, min, max})`` for rendering."""
    rows = []
    for benchmark in benchmarks:
        mean, half, samples = speedup_across_variants(
            runner, benchmark, prefetcher, instructions, variants
        )
        rows.append((benchmark, {
            "mean": mean,
            "ci95": half,
            "min": min(samples),
            "max": max(samples),
        }))
    return rows
