"""Machine-readable catalog of everything the simulator can run.

One shared registry of benchmarks, prefetchers and branch predictors,
consumed by three frontends so they can never drift apart:

* ``python -m repro list`` (text and ``--json`` modes);
* the job server's ``catalog`` endpoint (:mod:`repro.serve.server`),
  which also uses it to *validate* incoming submissions before any
  simulation state is built;
* the pure-stdlib client library (:mod:`repro.serve.client`), whose
  users discover what they may submit by asking the server.

The payload is plain JSON-serialisable data (schema
``repro-catalog-v1``): benchmark entries carry the workload class
(streaming / spatial / irregular / compute / server) and the paper's
prefetch-sensitivity flag, the I-side prefetcher family and front-end
modes are listed alongside the D-side prefetchers, and the top level
records the default instruction budgets and the result-cache version,
so a client can predict whether two submissions will share a cache
entry.
"""

from repro.frontend import FRONTEND_MODES, IPREFETCHER_NAMES
from repro.sim.config import PREDICTOR_NAMES, PREFETCHER_NAMES
from repro.sim.runner import (
    CACHE_VERSION,
    DEFAULT_MIX_BUDGET,
    DEFAULT_SINGLE_BUDGET,
)
from repro.workloads import BENCHMARKS
from repro.workloads.spec import PROFILES

#: schema tag stamped into every catalog payload
CATALOG_SCHEMA = "repro-catalog-v1"


def catalog():
    """The full catalog as a JSON-serialisable dict (fresh copy)."""
    return {
        "schema": CATALOG_SCHEMA,
        "benchmarks": [
            {
                "name": name,
                "klass": PROFILES[name].klass,
                "prefetch_sensitive": PROFILES[name].prefetch_sensitive,
            }
            for name in BENCHMARKS
        ],
        "prefetchers": list(PREFETCHER_NAMES),
        "iprefetchers": list(IPREFETCHER_NAMES),
        "frontend_modes": list(FRONTEND_MODES),
        "branch_predictors": list(PREDICTOR_NAMES),
        "defaults": {
            "single_instructions": DEFAULT_SINGLE_BUDGET,
            "mix_instructions": DEFAULT_MIX_BUDGET,
        },
        "cache_version": CACHE_VERSION,
    }


def benchmark_names():
    """Sorted tuple of known benchmark names."""
    return tuple(BENCHMARKS)


def prefetcher_names():
    """Tuple of known prefetcher names (``none`` first)."""
    return tuple(PREFETCHER_NAMES)


def is_benchmark(name):
    return name in PROFILES


def is_prefetcher(name):
    return name in PREFETCHER_NAMES


def render_catalog():
    """The human-readable ``repro list`` text rendering."""
    lines = ["benchmarks:"]
    for entry in catalog()["benchmarks"]:
        lines.append("  %-12s (%s)" % (entry["name"], entry["klass"]))
    lines.append("prefetchers:")
    for name in PREFETCHER_NAMES:
        lines.append("  %s" % name)
    lines.append("iprefetchers (frontend=ftq):")
    for name in IPREFETCHER_NAMES:
        lines.append("  %s" % name)
    return "\n".join(lines)
