"""Single-core system assembly and run-result records."""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.confidence import CompositeConfidenceEstimator
from repro.cpu.functional import Machine
from repro.cpu.ooo import OutOfOrderCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.config import SystemConfig, make_prefetcher


class RunResult:
    """Everything a run produced, JSON-serialisable for the result cache."""

    def __init__(self, data):
        self.data = data

    def __getattr__(self, name):
        try:
            return self.data[name]
        except KeyError:
            raise AttributeError(name)

    def as_dict(self):
        return dict(self.data)

    @classmethod
    def from_core(cls, core, workload_name, prefetcher_name):
        hierarchy = core.hierarchy
        prefetcher = core.prefetcher
        data = {
            "workload": workload_name,
            "prefetcher": prefetcher_name,
            "instructions": core.retired,
            "cycles": core.cycle,
            "ipc": core.ipc,
            "cond_branches": core.cond_branches,
            "branches": core.branches,
            "mispredicts": core.mispredicts,
            "mispredict_rate": core.mispredict_rate,
            "fetch_branch_hist": list(core.fetch_branch_hist),
            "fetch_cycles": core.fetch_cycles,
            "l1d": hierarchy.l1d.stats.as_dict(),
            "l2": hierarchy.l2.stats.as_dict(),
            "llc": hierarchy.llc.stats.as_dict(),
            "dram_accesses": hierarchy.dram.accesses,
            "prefetch": prefetcher.stats.as_dict(),
        }
        if hasattr(prefetcher, "mean_lookahead_depth"):
            data["mean_lookahead_depth"] = prefetcher.mean_lookahead_depth
            data["brtc_hit_rate"] = prefetcher.brtc.hit_rate
            data["mht_hit_rate"] = prefetcher.mht.hit_rate
            data["filter_blocked"] = prefetcher.filter.blocked
        return cls(data)

    def __repr__(self):
        return "RunResult(%s/%s: ipc=%.3f)" % (
            self.data.get("workload"),
            self.data.get("prefetcher"),
            self.data.get("ipc", 0.0),
        )


class System:
    """A single simulated core with its private L2 and (by default)
    private LLC slice, built from a :class:`~repro.sim.SystemConfig`.

    :param workload: a :class:`~repro.workloads.Workload` (program +
        initial memory image + name).
    :param config: system configuration; Table II defaults when None.
    :param llc: optional shared LLC (CMP mode).
    :param dram: optional shared DRAM (CMP mode).
    """

    def __init__(self, workload, config=None, llc=None, dram=None):
        self.config = config or SystemConfig()
        self.workload = workload
        self.machine = Machine(workload.program, dict(workload.memory))
        self.predictor = self.config.make_predictor()
        self.confidence = CompositeConfidenceEstimator()
        self.btb = BranchTargetBuffer()
        self.prefetcher = make_prefetcher(self.config)
        self.hierarchy = MemoryHierarchy(
            self.config.hierarchy,
            llc=llc,
            dram=dram,
            pf_feedback=self.prefetcher.feedback,
        )
        self.hierarchy.l1d.eviction_listeners.append(
            self.prefetcher.on_l1d_eviction
        )
        if hasattr(self.prefetcher, "attach"):
            self.prefetcher.attach(self.predictor, self.confidence)
        self.core = OutOfOrderCore(
            self.machine,
            self.hierarchy,
            self.predictor,
            self.confidence,
            self.btb,
            self.prefetcher,
            self.config.core,
        )

    def run(self, instructions):
        """Run to completion of *instructions* and return a
        :class:`RunResult`."""
        self.core.run(instructions)
        return RunResult.from_core(
            self.core, self.workload.name, self.config.prefetcher
        )
