"""Single-core system assembly, run-result records, and observability.

Every :class:`System` carries a :class:`~repro.obs.StatsRegistry` that
*adopts* the component counters under hierarchical dotted names
(``core.mispredicts``, ``mem.l1d.misses``, ``pf.bfetch.issued``) and
derives the standard prefetching ratios (accuracy / coverage /
timeliness) lazily.  The registry is a passive view: components keep
bumping plain ints, so building it costs nothing per simulated
instruction and :class:`RunResult` payloads stay byte-identical whether
or not anybody ever reads the registry.

Tracing (``REPRO_TRACE``, see :mod:`repro.obs.trace`) is wired the same
way: a :class:`~repro.obs.Tracer` -- explicit or from the environment --
is bound into the core, hierarchy and prefetcher at assembly time, and
``None`` channels keep the hot paths branch-cheap when tracing is off.
"""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.confidence import CompositeConfidenceEstimator
from repro.checkpoint import CheckpointError
from repro.cpu.functional import Machine
from repro.cpu.ooo import OutOfOrderCore
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs import StatsRegistry, Tracer
from repro.sim.config import (
    SystemConfig,
    make_iprefetcher_for,
    make_prefetcher,
)

# chunk length for interrupt polling when neither a checkpointer nor a
# sanitizer dictates a cadence
_DEFAULT_CHUNK_CYCLES = 65536


class RunResult:
    """Everything a run produced, JSON-serialisable for the result cache."""

    def __init__(self, data):
        self.data = data

    def __getattr__(self, name):
        # Dunder (and "data") lookups must fail fast with AttributeError:
        # pickle/copy/inspect probe names like __getstate__/__deepcopy__
        # through getattr, and before __init__ runs (unpickling) a probe
        # for "data" itself would recurse through this hook forever.
        if name.startswith("__") or name == "data":
            raise AttributeError(name)
        try:
            return self.data[name]
        except KeyError:
            raise AttributeError(name)

    def as_dict(self):
        return dict(self.data)

    @classmethod
    def from_core(cls, core, workload_name, prefetcher_name):
        hierarchy = core.hierarchy
        prefetcher = core.prefetcher
        data = {
            "workload": workload_name,
            "prefetcher": prefetcher_name,
            "instructions": core.retired,
            "cycles": core.cycle,
            "ipc": core.ipc,
            "cond_branches": core.cond_branches,
            "branches": core.branches,
            "mispredicts": core.mispredicts,
            "mispredict_rate": core.mispredict_rate,
            "fetch_branch_hist": list(core.fetch_branch_hist),
            "fetch_cycles": core.fetch_cycles,
            "l1d": hierarchy.l1d.stats.as_dict(),
            "l2": hierarchy.l2.stats.as_dict(),
            "llc": hierarchy.llc.stats.as_dict(),
            "dram_accesses": hierarchy.dram.accesses,
            "prefetch": prefetcher.stats.as_dict(),
        }
        if hasattr(prefetcher, "mean_lookahead_depth"):
            data["mean_lookahead_depth"] = prefetcher.mean_lookahead_depth
            data["brtc_hit_rate"] = prefetcher.brtc.hit_rate
            data["mht_hit_rate"] = prefetcher.mht.hit_rate
            data["filter_blocked"] = prefetcher.filter.blocked
        frontend = core.frontend
        if frontend is not None:
            # front-end payload blocks are gated so frontend="off" runs
            # stay byte-identical to pre-front-end results
            data["l1i"] = hierarchy.l1i.stats.as_dict()
            data["frontend"] = frontend.stats_dict()
            data["iprefetcher"] = frontend.iprefetcher.name
            data["iprefetch"] = frontend.iprefetcher.stats.as_dict()
        return cls(data)

    def __repr__(self):
        return "RunResult(%s/%s: ipc=%.3f)" % (
            self.data.get("workload"),
            self.data.get("prefetcher"),
            self.data.get("ipc", 0.0),
        )


def build_registry(core, hierarchy, prefetcher, registry=None, core_prefix=""):
    """Adopt a system's component counters into a stats registry.

    :param core_prefix: optional disambiguator for CMP systems (e.g.
        ``"core0."``) so several cores can share one registry.
    :returns: the (possibly freshly created) registry.
    """
    reg = registry if registry is not None else StatsRegistry()
    p = core_prefix

    reg.adopt(p + "core", core, fields=(
        "retired", "cycle", "branches", "cond_branches", "mispredicts",
        "fetch_cycles", "flush_stall_cycles",
    ), descs={
        "retired": "instructions retired",
        "cycle": "cycles simulated",
        "mispredicts": "mispredicted branches (cond + indirect)",
        "fetch_cycles": "cycles with at least one fetched instruction",
        "flush_stall_cycles": "idle steps spent in redirect bubbles",
    })
    reg.register(_adopted(p + "core.rob.full_stalls", core,
                          "rob_full_stalls",
                          "idle steps blocked by a full ROB"))
    reg.register(_adopted(p + "core.fetch.branches_per_cycle", core,
                          "fetch_branch_hist",
                          "Fig. 7 branches-per-fetch-cycle histogram"))
    reg.ratio(p + "core.ipc",
              lambda: core.retired, lambda: max(core.cycle, 1),
              "instructions per cycle")
    reg.ratio(p + "core.mispredict_rate",
              lambda: core.mispredicts,
              lambda: core.cond_branches,
              "mispredicts per conditional branch")

    for level_name, cache in (("l1i", hierarchy.l1i), ("l1d", hierarchy.l1d),
                              ("l2", hierarchy.l2), ("llc", hierarchy.llc)):
        stats = cache.stats
        reg.adopt(p + "mem." + level_name, stats)
        reg.ratio(p + "mem.%s.miss_rate" % level_name,
                  _attr(stats, "misses"), _attr(stats, "accesses"),
                  "demand misses per access")
    dram = hierarchy.dram
    reg.adopt(p + "mem.dram", dram,
              fields=("accesses", "prefetch_accesses", "busy_cycles"),
              descs={"busy_cycles": "channel occupancy in cycles"})

    pf = p + "pf.%s" % prefetcher.name
    stats = prefetcher.stats
    reg.adopt(pf, stats)
    reg.ratio(pf + ".accuracy",
              lambda: stats.useful + stats.late,
              lambda: stats.useful + stats.late + stats.useless,
              "demanded fraction of resolved prefetches")
    reg.ratio(pf + ".timeliness",
              lambda: stats.useful,
              lambda: stats.useful + stats.late,
              "in-time fraction of demanded prefetches")
    l1d_stats = hierarchy.l1d.stats
    reg.ratio(pf + ".coverage",
              lambda: stats.useful + stats.late,
              lambda: stats.useful + stats.late + l1d_stats.misses,
              "covered fraction of would-be demand misses")
    if hasattr(prefetcher, "brtc"):  # B-Fetch engine extras
        reg.adopt(pf, prefetcher,
                  fields=("walks", "total_depth", "candidates", "filtered"),
                  descs={
                      "walks": "lookahead walks started",
                      "total_depth": "basic blocks walked in total",
                      "candidates": "MHT slots considered for prefetch",
                      "filtered": "candidates suppressed by the filter",
                  })
        reg.register(_adopted(pf + ".lookahead_depth", prefetcher,
                              "depth_hist",
                              "basic blocks walked per lookahead"))
        reg.ratio(pf + ".mean_lookahead_depth",
                  lambda: prefetcher.total_depth,
                  lambda: prefetcher.walks,
                  "average lookahead depth (paper reports ~8)")
        brtc, mht = prefetcher.brtc, prefetcher.mht
        reg.ratio(pf + ".brtc.hit_rate",
                  _attr(brtc, "hits"), _attr(brtc, "lookups"),
                  "Branch Trace Cache hit rate")
        reg.ratio(pf + ".mht.hit_rate",
                  _attr(mht, "hits"), _attr(mht, "lookups"),
                  "Memory History Table hit rate")
        reg.derived(pf + ".filter.blocked",
                    lambda: prefetcher.filter.blocked,
                    "prefetches blocked by the per-load filter")

    frontend = core.frontend
    if frontend is not None:
        for attr, desc in (
            ("ftq_enqueued", "fetch blocks enqueued by the BPU walker"),
            ("ftq_hits", "demand fetches matching the FTQ head"),
            ("ftq_mismatches", "demand fetches diverging from the FTQ"),
            ("ftq_empty", "demand fetches finding the FTQ empty"),
            ("ftq_flushes", "mismatch-driven FTQ flushes"),
            ("redirects", "mispredict-resolution resteers"),
            ("bpu_stalls", "ticks with a stalled run-ahead walker"),
        ):
            name = attr[4:] if attr.startswith("ftq_") else attr
            reg.register(_adopted(p + "core.ftq." + name, frontend,
                                  attr, desc))
        reg.ratio(p + "core.ftq.mean_occupancy",
                  lambda: frontend.occupancy_sum,
                  lambda: max(frontend.occupancy_samples, 1),
                  "average FTQ occupancy in fetch blocks")
        predecoder = frontend.predecoder
        reg.adopt(p + "core.predecode", predecoder,
                  fields=("blocks", "shadow_fills", "shadow_hits"),
                  descs={
                      "blocks": "L1-I fills scanned by the predecoder",
                      "shadow_fills": "shadow-branch BTB entries installed",
                      "shadow_hits": "walker discoveries via a shadow fill",
                  })
        reg.ratio(p + "core.predecode.shadow_hit_rate",
                  _attr(predecoder, "shadow_hits"),
                  _attr(predecoder, "shadow_fills"),
                  "walker-used fraction of shadow fills")
        iprefetcher = frontend.iprefetcher
        ipf = p + "pf.ifetch.%s" % iprefetcher.name
        istats = iprefetcher.stats
        reg.adopt(ipf, istats)
        l1i_stats = hierarchy.l1i.stats
        reg.ratio(ipf + ".coverage",
                  lambda: l1i_stats.prefetch_useful,
                  lambda: l1i_stats.prefetch_useful + l1i_stats.misses,
                  "covered fraction of would-be L1-I demand misses")
        if hasattr(iprefetcher, "walks"):  # B-Fetch-I walk extras
            reg.adopt(ipf, iprefetcher, fields=("walks", "total_depth"),
                      descs={
                          "walks": "I-side lookahead walks started",
                          "total_depth": "basic blocks walked in total",
                      })
    return reg


def _adopted(name, obj, attr, desc):
    from repro.obs.registry import AdoptedStat
    return AdoptedStat(name, obj, attr, desc)


def _attr(obj, attr):
    """Late-bound attribute getter for Ratio stats."""
    return lambda: getattr(obj, attr)


class System:
    """A single simulated core with its private L2 and (by default)
    private LLC slice, built from a :class:`~repro.sim.SystemConfig`.

    :param workload: a :class:`~repro.workloads.Workload` (program +
        initial memory image + name).
    :param config: system configuration; Table II defaults when None.
    :param llc: optional shared LLC (CMP mode).
    :param dram: optional shared DRAM (CMP mode).
    :param tracer: optional :class:`~repro.obs.Tracer`; when None the
        ``REPRO_TRACE`` environment decides (unset = tracing off).
    :param registry: optional shared :class:`~repro.obs.StatsRegistry`
        (CMP mode); a private one is built when None.
    :param stats_prefix: name prefix for this system's stats when
        sharing a registry (e.g. ``"core0."``).
    :param replay: optional
        :class:`~repro.trace.replay.TraceReplaySource`; when given it
        replaces the functional machine and the run is timed off the
        recorded trace (byte-identical results, see DESIGN.md "Trace
        substrate").
    """

    def __init__(self, workload, config=None, llc=None, dram=None,
                 tracer=None, registry=None, stats_prefix="", replay=None):
        self.config = config or SystemConfig()
        self.workload = workload
        self.replay = replay
        if replay is not None:
            self.machine = replay
        else:
            self.machine = Machine(workload.program, dict(workload.memory))
        self.predictor = self.config.make_predictor()
        self.confidence = CompositeConfidenceEstimator()
        self.btb = BranchTargetBuffer()
        self.prefetcher = make_prefetcher(self.config)
        self.hierarchy = MemoryHierarchy(
            self.config.hierarchy,
            llc=llc,
            dram=dram,
            pf_feedback=self.prefetcher.feedback,
        )
        self.hierarchy.l1d.eviction_listeners.append(
            self.prefetcher.on_l1d_eviction
        )
        if hasattr(self.prefetcher, "attach"):
            self.prefetcher.attach(self.predictor, self.confidence)
        self.core = OutOfOrderCore(
            self.machine,
            self.hierarchy,
            self.predictor,
            self.confidence,
            self.btb,
            self.prefetcher,
            self.config.core,
        )
        # decoupled front end (FTQ + predecode + I-side prefetch); with
        # frontend="off" nothing here runs and the system is assembled
        # exactly as before
        if self.config.frontend != "off":
            from repro.frontend import DecoupledFrontEnd
            iprefetcher = make_iprefetcher_for(self.config)
            if hasattr(iprefetcher, "attach"):
                iprefetcher.attach(self.predictor, self.confidence)
            self.core.bind_frontend(DecoupledFrontEnd(
                self.config.frontend_cfg,
                self.hierarchy,
                self.predictor,
                self.btb,
                self.machine.program,
                iprefetcher,
                self.config.core,
            ))
        # observability: tracer channels bound once at assembly; the
        # registry passively adopts every component's counters
        self.tracer = tracer if tracer is not None else Tracer.from_env()
        self.core.bind_tracer(self.tracer)
        self.hierarchy.bind_tracer(self.tracer)
        self.prefetcher.bind_tracer(self.tracer)
        if self.core.frontend is not None:
            self.core.frontend.bind_tracer(self.tracer)
        self.stats = build_registry(
            self.core, self.hierarchy, self.prefetcher,
            registry=registry, core_prefix=stats_prefix,
        )

    def run(self, instructions, checkpointer=None, sanitizer=None,
            interrupt=None, corrupt_at=None):
        """Run to completion of *instructions* and return a
        :class:`RunResult`.

        When a tracer with an output path is active, the buffered trace
        is flushed (atomically) after the run completes.

        :param checkpointer: optional
            :class:`~repro.checkpoint.Checkpointer`; an existing valid
            checkpoint is resumed, the state is re-saved every
            ``checkpointer.every`` cycles, and the checkpoint is cleared
            on completion.
        :param sanitizer: optional :class:`~repro.sanitize.Sanitizer`
            whose invariant checks run at its configured cadence.
        :param interrupt: optional
            :class:`~repro.checkpoint.InterruptFlag`; when it trips, the
            latest state is checkpointed, the trace is flushed, and the
            deferred signal is re-raised.
        :param corrupt_at: cycle at which a deterministic state
            corruption is injected (``corrupt-state`` fault testing).

        With none of the optional collaborators active this takes the
        original tight ``core.run`` path -- checkpoint support costs
        nothing when it is off.
        """
        chunked = (
            checkpointer is not None
            or interrupt is not None
            or corrupt_at is not None
            or (sanitizer is not None and sanitizer.active)
        )
        if not chunked:
            if self.replay is not None and self._fusable(instructions):
                self._run_fused(instructions)
            else:
                self.core.run(instructions)
        else:
            self._run_chunked(instructions, checkpointer, sanitizer,
                              interrupt, corrupt_at)
        if self.tracer is not None:
            self.tracer.flush()
        return RunResult.from_core(
            self.core, self.workload.name, self.config.prefetcher
        )

    def _fusable(self, instructions):
        """Whether the fused replay engine can serve this run.

        It transcribes the core's hot loop from a fresh pipeline with
        branch tracing folded out, so it only applies to a pristine
        system whose budget fits the recorded window; anything else
        falls back to the drop-in replay-source path (still correct,
        still functional-execution-free inside the window).
        """
        source = self.machine
        return (
            source.pos == 0
            and self.core.retired == 0
            and self.core.cycle == 0
            and instructions <= len(source.trace.records)
            and self.core._trace_branch is None
            # the fused engine transcribes the frontend-free fetch loop
            and self.core.frontend is None
        )

    def _run_fused(self, instructions):
        """Dispatch to the fused trace-replay engine (byte-identical)."""
        from repro.trace.engine import run_replay
        from repro.trace.store import outcomes_for, view_for
        source = self.machine
        view = view_for(self.workload, source.trace)
        outcomes = None
        # the branch pre-pass is only valid when nothing observes live
        # predictor state -- the B-Fetch engine attaches to it
        if not hasattr(self.prefetcher, "attach"):
            outcomes = outcomes_for(source.trace, self.config, view)
        run_replay(self, instructions, view, outcomes)

    def _run_chunked(self, instructions, checkpointer, sanitizer,
                     interrupt, corrupt_at):
        """The checkpoint/sanitizer driver: the same ``step_cycle``
        sequence as :meth:`OutOfOrderCore.run`, handing control back at
        chunk boundaries.  Chunk boundaries only decide when snapshots,
        checks and interrupt polls happen -- every simulated outcome is
        byte-identical to the uninterrupted fast path."""
        core = self.core
        if checkpointer is not None:
            loaded = checkpointer.load()
            if loaded is not None:
                state, _cycle = loaded
                try:
                    self.restore(state)
                except CheckpointError:
                    # stale checkpoint from another configuration: drop
                    # it and start clean rather than resuming garbage
                    checkpointer.clear()
        core.start(instructions)
        chunk = _DEFAULT_CHUNK_CYCLES
        if checkpointer is not None:
            chunk = min(chunk, checkpointer.every)
        if sanitizer is not None and sanitizer.active:
            chunk = min(chunk, sanitizer.interval)
        if corrupt_at is not None:
            chunk = min(chunk, max(1, corrupt_at))
        now = core.cycle
        corrupted = False
        while not core.done:
            now = core.run_until(now, now + chunk)
            core.cycle = now
            if corrupt_at is not None and not corrupted and now >= corrupt_at:
                from repro.resilience.faults import apply_state_corruption
                apply_state_corruption(self)
                corrupted = True
            if sanitizer is not None and sanitizer.active:
                sanitizer.check_system(self, now)
            if checkpointer is not None and not core.done \
                    and checkpointer.due(now):
                checkpointer.save(self.snapshot(), now)
            if interrupt is not None and interrupt:
                if checkpointer is not None and not core.done:
                    checkpointer.save(self.snapshot(), now)
                if self.tracer is not None:
                    self.tracer.flush()
                interrupt.raise_pending()
        core.cycle = now
        if checkpointer is not None:
            checkpointer.clear()  # finished: a resume would be stale

    # ------------------------------------------------------------------
    # checkpoint/restore

    def fingerprint(self):
        """Identity of this assembly: workload name + config key.

        Stored inside every snapshot so a checkpoint can never be
        restored into a differently-configured system.  Replay-driven
        systems add an ``engine`` marker: their machine snapshots carry
        a replay cursor instead of a memory image, so cross-engine
        restores must be rejected (the chunked driver then drops the
        stale checkpoint and starts clean).
        """
        state = {
            "workload": self.workload.name,
            "config": list(self.config.key()),
        }
        if self.replay is not None:
            state["engine"] = "replay"
        return state

    def snapshot(self, include_shared=True):
        """Complete simulation state as a JSON-safe structure.

        :param include_shared: forwarded to
            :meth:`~repro.memory.MemoryHierarchy.snapshot`; CMP systems
            snapshot the shared LLC/DRAM once at the top level.
        """
        state = self.fingerprint()
        state.update({
            "machine": self.machine.snapshot(),
            "core": self.core.snapshot(),
            "predictor": self.predictor.snapshot(),
            "confidence": self.confidence.snapshot(),
            "btb": self.btb.snapshot(),
            "prefetcher": self.prefetcher.snapshot(),
            "hierarchy": self.hierarchy.snapshot(
                include_shared=include_shared),
        })
        if self.core.frontend is not None:
            state["frontend"] = self.core.frontend.snapshot()
        return state

    def restore(self, state):
        """Restore every component from :meth:`snapshot` output.

        Raises :class:`~repro.checkpoint.CheckpointError` when the
        snapshot's fingerprint (workload + config key) does not match
        this system.
        """
        expected = self.fingerprint()
        found = {"workload": state.get("workload"),
                 "config": state.get("config")}
        if "engine" in state:
            found["engine"] = state["engine"]
        if found != expected:
            raise CheckpointError(
                "checkpoint fingerprint mismatch: saved %r, system is %r"
                % (found, expected)
            )
        self.machine.restore(state["machine"])
        self.core.restore(state["core"])
        self.predictor.restore(state["predictor"])
        self.confidence.restore(state["confidence"])
        self.btb.restore(state["btb"])
        self.prefetcher.restore(state["prefetcher"])
        self.hierarchy.restore(state["hierarchy"])
        if self.core.frontend is not None:
            self.core.frontend.restore(state["frontend"])
