"""Experiment runner: JSON result cache + parallel batch execution.

Every table/figure reproduction is a composition of four primitives:

* :meth:`ExperimentRunner.run_single` -- one benchmark, one prefetcher;
* :meth:`ExperimentRunner.run_many` -- a *batch* of independent single
  runs, fanned out over a process pool with cache-aware scheduling;
* :meth:`ExperimentRunner.run_mix` -- one multiprogrammed mix on the CMP;
* :meth:`ExperimentRunner.foa_map` -- solo-run FOA values feeding the
  Chandra mix selection.

Results are memoised on disk keyed by (cache version, workload, budget,
full config identity) and in a per-process memory memo, so sweeps that
share a baseline -- every figure shares the no-prefetch runs -- never
recompute *or re-parse* it.  The disk layout shards entries into
``<cache_dir>/<kind>/<digest prefix>/`` directories and every write is
atomic (temp file + ``os.replace``), so concurrent workers and
interrupted runs can never publish a truncated entry; a corrupt entry is
discarded and recomputed instead of crashing the sweep.

Environment knobs:

* ``REPRO_SCALE`` scales all instruction budgets (e.g. ``0.25`` for quick
  smoke runs, ``4`` for higher-fidelity numbers);
* ``REPRO_JOBS`` sets the default worker count for :meth:`run_many`
  (defaults to ``os.cpu_count()``; ``1`` forces serial execution).
"""

import hashlib
import json
import os
import tempfile
from collections import namedtuple
from concurrent.futures import ProcessPoolExecutor

from repro.sim.cmp import CMPSystem
from repro.sim.config import SystemConfig
from repro.sim.metrics import weighted_speedup
from repro.sim.system import RunResult, System
from repro.workloads.mixes import foa_from_result
from repro.workloads.spec import build_workload

# v2: sharded cache layout (<kind>/<digest prefix>/ subdirectories)
CACHE_VERSION = 2

# default per-run instruction budgets (pre-REPRO_SCALE)
DEFAULT_SINGLE_BUDGET = 200_000
DEFAULT_MIX_BUDGET = 60_000

# digest characters used for the shard subdirectory fan-out
_SHARD_CHARS = 2

# (raw REPRO_SCALE string, parsed float) -- parsing the environment on
# every call showed up in sweep profiles; the raw-string comparison keeps
# monkeypatched environments working.
_scale_cache = (None, 1.0)


def scaled(budget):
    """Apply the REPRO_SCALE environment knob to an instruction budget.

    The parse is memoised on the raw string value; a non-numeric value
    raises a clear :class:`ValueError` instead of a bare float() error.
    """
    global _scale_cache
    raw = os.environ.get("REPRO_SCALE")
    cached_raw, scale = _scale_cache
    if raw != cached_raw:
        if raw is None:
            scale = 1.0
        else:
            try:
                scale = float(raw)
            except ValueError:
                raise ValueError(
                    "REPRO_SCALE must be a number (e.g. 0.25 or 4), "
                    "got %r" % (raw,)
                )
        _scale_cache = (raw, scale)
    return max(1000, int(budget * scale))


def default_jobs():
    """Worker count for parallel batches: ``REPRO_JOBS`` or cpu count."""
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                "REPRO_JOBS must be an integer, got %r" % (raw,)
            )
        return max(1, jobs)
    return os.cpu_count() or 1


class RunRequest(
    namedtuple(
        "RunRequest",
        ("benchmark", "prefetcher", "instructions", "config", "variant"),
    )
):
    """One independent single-core job for :meth:`ExperimentRunner.run_many`.

    Unspecified fields take the same defaults as
    :meth:`~ExperimentRunner.run_single`.
    """

    __slots__ = ()

    def __new__(cls, benchmark, prefetcher="none", instructions=None,
                config=None, variant=0):
        return super().__new__(
            cls, benchmark, prefetcher, instructions, config, variant
        )


def _execute_single(benchmark, prefetcher, instructions, config, variant):
    """Worker body: build and run one system; returns the result dict.

    Module-level so it pickles for the process pool; simulation is fully
    deterministic (seeded workload construction, no wall-clock inputs),
    which is what makes parallel output byte-identical to serial.
    """
    system = System(build_workload(benchmark, variant), config)
    return system.run(instructions).as_dict()


class ExperimentRunner:
    """Runs simulations with on-disk + in-memory memoisation.

    :param cache_dir: directory for cached results; None disables the disk
        cache (the in-memory memo stays active for the runner's lifetime).
    :param jobs: default worker count for :meth:`run_many`; None defers to
        ``REPRO_JOBS`` / cpu count at call time.
    """

    def __init__(self, cache_dir=None, jobs=None):
        self.cache_dir = cache_dir
        self.jobs = jobs
        self._memo = {}
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # cache plumbing

    def _digest(self, kind, payload):
        return hashlib.sha1(
            json.dumps([CACHE_VERSION, kind, payload], sort_keys=True).encode()
        ).hexdigest()

    def _cache_path(self, kind, payload):
        """Sharded cache location for a payload (None when caching is off).

        Layout: ``<cache_dir>/<kind>/<digest[:2]>/<kind>-<digest>.json``.
        Sharding bounds directory size during wide sweeps and gives
        concurrent writers (different shards) less directory contention.
        """
        if not self.cache_dir:
            return None
        digest = self._digest(kind, payload)
        return os.path.join(
            self.cache_dir,
            kind,
            digest[:_SHARD_CHARS],
            "%s-%s.json" % (kind, digest[:16]),
        )

    def _memo_key(self, kind, payload):
        """In-memory memo key; digest-based so it works without a
        cache_dir too."""
        return (kind, self._digest(kind, payload))

    def _cached(self, path, memo_key=None):
        """Return the cached payload for *path*, or None.

        Probes the in-memory memo first (repeated baseline lookups stop
        re-reading and re-parsing JSON).  A corrupt or unreadable disk
        entry is discarded -- the run is recomputed rather than crashing
        the sweep.
        """
        if memo_key is not None:
            hit = self._memo.get(memo_key)
            if hit is not None:
                return hit
        if not path:
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            # truncated/corrupt entry (e.g. a pre-v2 non-atomic write
            # interrupted mid-dump): drop it and recompute
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if memo_key is not None:
            self._memo[memo_key] = data
        return data

    def _save(self, path, data, memo_key=None):
        """Persist *data* atomically (temp file + ``os.replace``).

        Safe under concurrent writers: each writes its own temp file and
        the final rename is atomic on POSIX, so readers never observe a
        partial entry.
        """
        if memo_key is not None:
            self._memo[memo_key] = data
        if not path:
            return
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(data, handle)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # single-run primitives

    def _resolve_request(self, request):
        """Normalise a :class:`RunRequest`/tuple into concrete job args."""
        if not isinstance(request, RunRequest):
            request = RunRequest(*request)
        benchmark, prefetcher, instructions, config, variant = request
        if instructions is None:
            instructions = scaled(DEFAULT_SINGLE_BUDGET)
        config = config or SystemConfig(prefetcher=prefetcher)
        if config.prefetcher != prefetcher:
            raise ValueError("config.prefetcher disagrees with prefetcher arg")
        return benchmark, prefetcher, instructions, config, variant

    def _single_payload(self, benchmark, instructions, config, variant):
        payload = [benchmark, instructions, list(config.key())]
        if variant:
            payload.append(variant)
        return payload

    def run_single(self, benchmark, prefetcher="none", instructions=None,
                   config=None, variant=0):
        """Run one benchmark solo; returns a :class:`~repro.sim.RunResult`.

        *variant* selects a re-seeded instance of the workload (see
        :func:`~repro.workloads.build_workload`).
        """
        benchmark, prefetcher, instructions, config, variant = (
            self._resolve_request(
                RunRequest(benchmark, prefetcher, instructions, config,
                           variant)
            )
        )
        payload = self._single_payload(benchmark, instructions, config,
                                       variant)
        path = self._cache_path("single", payload)
        memo_key = self._memo_key("single", payload)
        cached = self._cached(path, memo_key)
        if cached is not None:
            return RunResult(dict(cached))
        data = _execute_single(benchmark, prefetcher, instructions, config,
                               variant)
        self._save(path, data, memo_key)
        return RunResult(dict(data))

    # ------------------------------------------------------------------
    # parallel batch API

    def run_many(self, requests, jobs=None):
        """Run a batch of independent single-core jobs, in parallel.

        :param requests: iterable of :class:`RunRequest` (or tuples with
            the same field order).
        :param jobs: worker processes; defaults to the runner's ``jobs``,
            then ``REPRO_JOBS``, then ``os.cpu_count()``.
        :returns: list of :class:`~repro.sim.RunResult` in *request
            order* -- scheduling is cache-aware (hits are served from the
            memo/disk without touching the pool; duplicate requests are
            simulated once) but the output ordering is deterministic and
            byte-identical to running each request serially.
        """
        resolved = [self._resolve_request(request) for request in requests]
        results = [None] * len(resolved)

        # cache probe pass: serve hits, group misses by identity
        miss_groups = {}  # memo_key -> (job args, path, [indices])
        for index, job in enumerate(resolved):
            benchmark, prefetcher, instructions, config, variant = job
            payload = self._single_payload(benchmark, instructions, config,
                                           variant)
            path = self._cache_path("single", payload)
            memo_key = self._memo_key("single", payload)
            cached = self._cached(path, memo_key)
            if cached is not None:
                results[index] = RunResult(dict(cached))
                continue
            group = miss_groups.get(memo_key)
            if group is None:
                miss_groups[memo_key] = (job, path, [index])
            else:
                group[2].append(index)

        if not miss_groups:
            return results

        if jobs is None:
            jobs = self.jobs
        if jobs is None:
            jobs = default_jobs()
        jobs = max(1, min(int(jobs), len(miss_groups)))

        ordered = list(miss_groups.items())
        if jobs == 1 or len(ordered) == 1:
            computed = [_execute_single(*job) for _, (job, _, _) in ordered]
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(_execute_single, *job)
                    for _, (job, _, _) in ordered
                ]
                computed = [future.result() for future in futures]

        for (memo_key, (job, path, indices)), data in zip(ordered, computed):
            self._save(path, data, memo_key)
            for index in indices:
                results[index] = RunResult(dict(data))
        return results

    def sweep(self, benchmarks, prefetchers, instructions=None, config_for=None,
              base_config=None, jobs=None):
        """Cross-product sweep with the shared no-prefetch baseline.

        Runs ``benchmarks x (prefetchers + baseline)`` through
        :meth:`run_many` and returns ``(baselines, table)`` where
        *baselines* maps benchmark -> baseline :class:`RunResult` and
        *table* maps benchmark -> {prefetcher: RunResult}.

        :param config_for: optional ``fn(prefetcher) -> SystemConfig``.
        :param base_config: optional baseline config (must keep
            ``prefetcher="none"``).
        """
        requests = []
        for bench in benchmarks:
            requests.append(
                RunRequest(bench, "none", instructions, base_config)
            )
            for prefetcher in prefetchers:
                config = config_for(prefetcher) if config_for else None
                requests.append(
                    RunRequest(bench, prefetcher, instructions, config)
                )
        results = iter(self.run_many(requests, jobs=jobs))
        baselines = {}
        table = {}
        for bench in benchmarks:
            baselines[bench] = next(results)
            table[bench] = {
                prefetcher: next(results) for prefetcher in prefetchers
            }
        return baselines, table

    # ------------------------------------------------------------------
    # mixes

    def run_mix(self, mix, prefetcher="none", instructions=None, config=None):
        """Run a multiprogrammed mix; returns per-core RunResults."""
        if instructions is None:
            instructions = scaled(DEFAULT_MIX_BUDGET)
        config = config or SystemConfig(prefetcher=prefetcher)
        payload = [list(mix), instructions, list(config.key())]
        path = self._cache_path("mix", payload)
        memo_key = self._memo_key("mix", payload)
        cached = self._cached(path, memo_key)
        if cached is not None:
            return [RunResult(dict(entry)) for entry in cached]
        cmp_system = CMPSystem([build_workload(name) for name in mix], config)
        results = cmp_system.run(instructions)
        self._save(path, [result.as_dict() for result in results], memo_key)
        return results

    # ------------------------------------------------------------------
    # derived metrics

    def speedup(self, benchmark, prefetcher, instructions=None, config=None,
                base_config=None):
        """IPC ratio of *prefetcher* over the no-prefetch baseline."""
        base = self.run_single(benchmark, "none", instructions, base_config)
        run = self.run_single(benchmark, prefetcher, instructions, config)
        return run.ipc / base.ipc

    def weighted_speedup_normalized(self, mix, prefetcher,
                                    instructions=None,
                                    single_instructions=None,
                                    config=None, base_config=None):
        """Paper Figs. 9/10 metric: weighted speedup of the mix under
        *prefetcher*, normalised to the same mix without prefetching."""
        singles = [
            result.ipc
            for result in self.run_many(
                [RunRequest(name, "none", single_instructions)
                 for name in mix]
            )
        ]
        base = self.run_mix(mix, "none", instructions, base_config)
        run = self.run_mix(mix, prefetcher, instructions, config)
        ws_base = weighted_speedup([r.ipc for r in base], singles)
        ws_run = weighted_speedup([r.ipc for r in run], singles)
        return ws_run / ws_base

    def foa_map(self, benchmarks, instructions=None):
        """Solo-run FOA (LLC accesses / cycle) for mix selection."""
        benchmarks = list(benchmarks)
        results = self.run_many(
            [RunRequest(name, "none", instructions) for name in benchmarks]
        )
        return {
            name: foa_from_result(result)
            for name, result in zip(benchmarks, results)
        }
