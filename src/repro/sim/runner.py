"""Experiment runner with a JSON result cache.

Every table/figure reproduction is a composition of three primitives:

* :meth:`ExperimentRunner.run_single` -- one benchmark, one prefetcher;
* :meth:`ExperimentRunner.run_mix` -- one multiprogrammed mix on the CMP;
* :meth:`ExperimentRunner.foa_map` -- solo-run FOA values feeding the
  Chandra mix selection.

Results are memoised on disk keyed by (cache version, workload, budget,
full config identity), so sweeps that share a baseline -- every figure
shares the no-prefetch runs -- never recompute it.  Set the environment
variable ``REPRO_SCALE`` to scale all instruction budgets (e.g. ``0.25``
for quick smoke runs, ``4`` for higher-fidelity numbers).
"""

import hashlib
import json
import os

from repro.sim.cmp import CMPSystem
from repro.sim.config import SystemConfig
from repro.sim.metrics import weighted_speedup
from repro.sim.system import RunResult, System
from repro.workloads.mixes import foa_from_result
from repro.workloads.spec import build_workload

CACHE_VERSION = 1

# default per-run instruction budgets (pre-REPRO_SCALE)
DEFAULT_SINGLE_BUDGET = 200_000
DEFAULT_MIX_BUDGET = 60_000


def scaled(budget):
    """Apply the REPRO_SCALE environment knob to an instruction budget."""
    scale = float(os.environ.get("REPRO_SCALE", "1"))
    return max(1000, int(budget * scale))


class ExperimentRunner:
    """Runs simulations with on-disk memoisation.

    :param cache_dir: directory for cached results; None disables caching.
    """

    def __init__(self, cache_dir=None):
        self.cache_dir = cache_dir
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------

    def _cache_path(self, kind, payload):
        if not self.cache_dir:
            return None
        digest = hashlib.sha1(
            json.dumps([CACHE_VERSION, kind, payload], sort_keys=True).encode()
        ).hexdigest()
        return os.path.join(self.cache_dir, "%s-%s.json" % (kind, digest[:16]))

    def _cached(self, path):
        if path and os.path.exists(path):
            with open(path) as handle:
                return json.load(handle)
        return None

    def _save(self, path, data):
        if path:
            with open(path, "w") as handle:
                json.dump(data, handle)

    # ------------------------------------------------------------------

    def run_single(self, benchmark, prefetcher="none", instructions=None,
                   config=None, variant=0):
        """Run one benchmark solo; returns a :class:`~repro.sim.RunResult`.

        *variant* selects a re-seeded instance of the workload (see
        :func:`~repro.workloads.build_workload`).
        """
        if instructions is None:
            instructions = scaled(DEFAULT_SINGLE_BUDGET)
        config = config or SystemConfig(prefetcher=prefetcher)
        if config.prefetcher != prefetcher:
            raise ValueError("config.prefetcher disagrees with prefetcher arg")
        payload = [benchmark, instructions, list(config.key())]
        if variant:
            payload.append(variant)
        path = self._cache_path("single", payload)
        cached = self._cached(path)
        if cached is not None:
            return RunResult(cached)
        system = System(build_workload(benchmark, variant), config)
        result = system.run(instructions)
        self._save(path, result.as_dict())
        return result

    def run_mix(self, mix, prefetcher="none", instructions=None, config=None):
        """Run a multiprogrammed mix; returns per-core RunResults."""
        if instructions is None:
            instructions = scaled(DEFAULT_MIX_BUDGET)
        config = config or SystemConfig(prefetcher=prefetcher)
        payload = [list(mix), instructions, list(config.key())]
        path = self._cache_path("mix", payload)
        cached = self._cached(path)
        if cached is not None:
            return [RunResult(entry) for entry in cached]
        cmp_system = CMPSystem([build_workload(name) for name in mix], config)
        results = cmp_system.run(instructions)
        self._save(path, [result.as_dict() for result in results])
        return results

    # ------------------------------------------------------------------
    # derived metrics

    def speedup(self, benchmark, prefetcher, instructions=None, config=None,
                base_config=None):
        """IPC ratio of *prefetcher* over the no-prefetch baseline."""
        base = self.run_single(benchmark, "none", instructions, base_config)
        run = self.run_single(benchmark, prefetcher, instructions, config)
        return run.ipc / base.ipc

    def weighted_speedup_normalized(self, mix, prefetcher,
                                    instructions=None,
                                    single_instructions=None,
                                    config=None, base_config=None):
        """Paper Figs. 9/10 metric: weighted speedup of the mix under
        *prefetcher*, normalised to the same mix without prefetching."""
        singles = [
            self.run_single(name, "none", single_instructions).ipc
            for name in mix
        ]
        base = self.run_mix(mix, "none", instructions, base_config)
        run = self.run_mix(mix, prefetcher, instructions, config)
        ws_base = weighted_speedup([r.ipc for r in base], singles)
        ws_run = weighted_speedup([r.ipc for r in run], singles)
        return ws_run / ws_base

    def foa_map(self, benchmarks, instructions=None):
        """Solo-run FOA (LLC accesses / cycle) for mix selection."""
        return {
            name: foa_from_result(self.run_single(name, "none", instructions))
            for name in benchmarks
        }
