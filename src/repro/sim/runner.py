"""Experiment runner: JSON result cache + fault-tolerant parallel batches.

Every table/figure reproduction is a composition of four primitives:

* :meth:`ExperimentRunner.run_single` -- one benchmark, one prefetcher;
* :meth:`ExperimentRunner.run_many` -- a *batch* of independent single
  runs, fanned out over a process pool with cache-aware scheduling;
* :meth:`ExperimentRunner.run_mix` -- one multiprogrammed mix on the CMP;
* :meth:`ExperimentRunner.foa_map` -- solo-run FOA values feeding the
  Chandra mix selection.

Results are memoised on disk keyed by (cache version, workload, budget,
full config identity) and in a per-process memory memo, so sweeps that
share a baseline -- every figure shares the no-prefetch runs -- never
recompute *or re-parse* it.  The disk layout shards entries into
``<cache_dir>/<kind>/<digest prefix>/`` directories; every write is
atomic (temp file + ``os.replace``) and wrapped in an integrity envelope
``{"v": CACHE_VERSION, "sha": <payload digest>, "data": ...}`` verified
on read, so a truncated, tampered or hash-collided entry is detected as
:class:`~repro.resilience.CacheCorruption` and recomputed instead of
being returned as a wrong result (bare pre-envelope entries are still
readable).

The batch engine is *fault tolerant* (see :mod:`repro.resilience` and
DESIGN.md section 5): each miss is persisted to the cache the moment it
finishes (the cache is a checkpoint -- a crashed or interrupted sweep
resumes where it stopped), failed/hung jobs are retried with
deterministic exponential backoff, a broken process pool is rebuilt, and
a pool that keeps dying degrades to in-process serial execution.  All of
it is governed by a :class:`~repro.resilience.FailurePolicy` and
accounted in a per-batch :class:`~repro.resilience.BatchReport`
(``runner.last_report``).

Environment knobs:

* ``REPRO_SCALE`` scales all instruction budgets (e.g. ``0.25`` for quick
  smoke runs, ``4`` for higher-fidelity numbers; must be positive);
* ``REPRO_JOBS`` sets the default worker count for :meth:`run_many`
  (defaults to ``os.cpu_count()``; ``1`` forces serial execution);
* ``REPRO_RETRIES`` / ``REPRO_TASK_TIMEOUT`` / ``REPRO_ON_ERROR`` set
  the default :class:`~repro.resilience.FailurePolicy`;
* ``REPRO_FAULTS`` activates the deterministic fault-injection harness
  (chaos testing; see :mod:`repro.resilience.faults`);
* ``REPRO_CKPT_DIR`` / ``REPRO_CKPT_EVERY`` enable periodic simulation
  checkpoints: an interrupted (SIGINT/SIGTERM/SIGKILL) run resumes from
  the last checkpoint with byte-identical results (see
  :mod:`repro.checkpoint`);
* ``REPRO_CHECK`` turns on the runtime invariant sanitizer
  (``cheap``/``full``; see :mod:`repro.sanitize`).

Observability: every batch attaches a :class:`~repro.obs.Profiler` to its
:class:`~repro.resilience.BatchReport` (``report.profile``) splitting the
wall clock into a cache-``probe`` phase and an ``execute`` phase with a
simulated-instructions-per-second rate, so ``[resilience]`` summaries show
where a sweep's time went.  Atomic cache writes go through
:func:`repro.obs.io.atomic_write_text` (shared with the trace writer).
"""

import hashlib
import heapq
import itertools
import json
import os
import time
import traceback
from collections import deque, namedtuple
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool

from repro.resilience import (
    BatchReport,
    CacheCorruption,
    FailurePolicy,
    SimulationError,
    TaskTimeout,
    WorkerCrash,
    call_with_retries,
    get_fault_plan,
)
from repro.obs import Profiler
from repro.obs.io import atomic_write_text, file_signature, remove_if_unchanged
from repro.checkpoint import (
    from_env as _checkpointer_from_env,
    gc_stale_tmp,
    signal_guard,
)
from repro.sanitize import Sanitizer
from repro.resilience.envelope import (
    payload_sha as _payload_sha,
    unwrap_envelope,
    wrap_envelope,
)
from repro.resilience.retry import backoff_delay
from repro.sim.cmp import CMPSystem
from repro.sim.config import SystemConfig
from repro.sim.metrics import weighted_speedup
from repro.sim.system import RunResult, System
from repro.trace.store import (
    replay_counters as _replay_counters,
    replay_mode as _replay_mode,
    replay_source_for as _replay_source_for,
)
from repro.workloads.mixes import foa_from_result
from repro.workloads.spec import build_workload

# v2: sharded cache layout (<kind>/<digest prefix>/ subdirectories) with
# integrity envelopes ({"v", "sha", "data"}) on every entry
# v3: disjoint prefetch outcome counters (useful no longer double-counts
# late, see DESIGN.md section 6) change cached payload values, so v2
# entries must not be served
CACHE_VERSION = 3

# default per-run instruction budgets (pre-REPRO_SCALE)
DEFAULT_SINGLE_BUDGET = 200_000
DEFAULT_MIX_BUDGET = 60_000

# digest characters used for the shard subdirectory fan-out
_SHARD_CHARS = 2

# (raw REPRO_SCALE string, parsed float) -- parsing the environment on
# every call showed up in sweep profiles; the raw-string comparison keeps
# monkeypatched environments working.
_scale_cache = (None, 1.0)


def scaled(budget):
    """Apply the REPRO_SCALE environment knob to an instruction budget.

    The parse is memoised on the raw string value; a non-numeric or
    non-positive value raises a clear :class:`ValueError` instead of a
    bare float() error or a silently-clamped budget.
    """
    global _scale_cache
    raw = os.environ.get("REPRO_SCALE")
    cached_raw, scale = _scale_cache
    if raw != cached_raw:
        if raw is None:
            scale = 1.0
        else:
            try:
                scale = float(raw)
            except ValueError:
                raise ValueError(
                    "REPRO_SCALE must be a number (e.g. 0.25 or 4), "
                    "got %r" % (raw,)
                )
            if scale <= 0:
                raise ValueError(
                    "REPRO_SCALE must be positive (e.g. 0.25 or 4), "
                    "got %r" % (raw,)
                )
        _scale_cache = (raw, scale)
    return max(1000, int(budget * scale))


def default_jobs():
    """Worker count for parallel batches: ``REPRO_JOBS`` or cpu count.

    ``REPRO_JOBS`` must be a positive integer; non-positive values are
    rejected rather than silently clamped (``REPRO_JOBS=1`` is the
    explicit way to force serial execution).
    """
    raw = os.environ.get("REPRO_JOBS")
    if raw:
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                "REPRO_JOBS must be an integer, got %r" % (raw,)
            )
        if jobs <= 0:
            raise ValueError(
                "REPRO_JOBS must be a positive integer "
                "(1 forces serial execution), got %r" % (raw,)
            )
        return jobs
    return os.cpu_count() or 1


class RunRequest(
    namedtuple(
        "RunRequest",
        ("benchmark", "prefetcher", "instructions", "config", "variant"),
    )
):
    """One independent single-core job for :meth:`ExperimentRunner.run_many`.

    Unspecified fields take the same defaults as
    :meth:`~ExperimentRunner.run_single`.
    """

    __slots__ = ()

    def __new__(cls, benchmark, prefetcher="none", instructions=None,
                config=None, variant=0):
        return super().__new__(
            cls, benchmark, prefetcher, instructions, config, variant
        )


def _execute_single(benchmark, prefetcher, instructions, config, variant,
                    attempt=0, fault_key=None, cache_dir=None):
    """Worker body: build and run one system; returns the result dict.

    Module-level so it pickles for the process pool; simulation is fully
    deterministic (seeded workload construction, no wall-clock inputs),
    which is what makes parallel output byte-identical to serial.

    *attempt*/*fault_key* feed the deterministic fault-injection harness
    (``REPRO_FAULTS``); they never influence the simulation itself.

    When ``REPRO_TRACE_REPLAY`` is ``auto``/``on`` the run is driven by
    a recorded functional trace from the content-addressed store under
    *cache_dir* (recorded on the first miss), producing byte-identical
    results at timing-only cost; lockstep execution remains the default
    and the differential oracle.

    When ``REPRO_CKPT_DIR`` and/or ``REPRO_CHECK`` are set the run goes
    through the chunked :meth:`~repro.sim.System.run` path with a
    per-job :class:`~repro.checkpoint.Checkpointer` (keyed on the job's
    cache digest so resumes find their own checkpoint), a
    :class:`~repro.sanitize.Sanitizer`, and a SIGINT/SIGTERM guard that
    saves a final checkpoint and flushes traces before exiting.  A
    ``corrupt-state`` fault deliberately damages the microarchitectural
    state mid-run to exercise the sanitizer.
    """
    if fault_key is None:
        fault_key = repr((benchmark, prefetcher, instructions, variant))
    plan = get_fault_plan()
    corrupt_at = None
    if plan.active:
        plan.inject_execution_faults(fault_key, attempt)
        corrupt_at = plan.corrupt_state_cycle(fault_key, attempt)
    workload = build_workload(benchmark, variant)
    replay = _replay_source_for(workload, instructions, variant,
                                cache_dir=cache_dir)
    _replay_counters["replayed" if replay is not None else "lockstep"] += 1
    system = System(workload, config, replay=replay)
    sanitizer = Sanitizer.from_env()
    checkpointer = _checkpointer_from_env(
        "single-%s" % hashlib.sha1(str(fault_key).encode()).hexdigest()[:16]
    )
    if checkpointer is None and sanitizer is None and corrupt_at is None:
        return system.run(instructions).as_dict()
    with signal_guard() as interrupt:
        return system.run(
            instructions, checkpointer=checkpointer, sanitizer=sanitizer,
            interrupt=interrupt, corrupt_at=corrupt_at,
        ).as_dict()


class _Task(object):
    """One unique cache miss moving through the batch engine."""

    __slots__ = ("memo_key", "job", "path", "indices", "key", "attempts")

    def __init__(self, memo_key, job, path, indices):
        self.memo_key = memo_key
        self.job = job                  # resolved RunRequest field tuple
        self.path = path                # cache destination (or None)
        self.indices = indices          # result slots this job fills
        self.key = memo_key[1]          # digest: fault/jitter identity
        self.attempts = 0

    @property
    def request(self):
        return RunRequest(*self.job)


class _ProgressTracker(object):
    """Counts filled result slots and forwards them to a callback.

    The callback signature is ``fn(done, total)`` where *done* is the
    cumulative number of result slots resolved so far (cache hits,
    completed computes, and skipped failures all count -- duplicates of
    one compute resolve together) and *total* is the batch size.  An
    exception raised by the callback deliberately aborts the batch:
    :mod:`repro.serve` uses this to cancel a running job at the next
    task boundary, losing nothing already persisted to the cache.
    """

    __slots__ = ("fn", "done", "total")

    def __init__(self, fn, total):
        self.fn = fn
        self.done = 0
        self.total = total

    def advance(self, slots):
        self.done += slots
        self.fn(self.done, self.total)


class ExperimentRunner:
    """Runs simulations with on-disk + in-memory memoisation.

    :param cache_dir: directory for cached results; None disables the disk
        cache (the in-memory memo stays active for the runner's lifetime).
    :param jobs: default worker count for :meth:`run_many`; None defers to
        ``REPRO_JOBS`` / cpu count at call time.
    :param policy: default :class:`~repro.resilience.FailurePolicy` for
        :meth:`run_single`/:meth:`run_many`; None defers to the
        ``REPRO_RETRIES``/``REPRO_TASK_TIMEOUT``/``REPRO_ON_ERROR``
        environment at call time.
    :param cache_peers: optional
        :class:`~repro.serve.cluster.PeerSet` federating this cache
        with remote replicas -- local misses read through to peers and
        local writes replicate out (see ``src/repro/serve/cluster``).

    After each :meth:`run_many` call, :attr:`last_report` holds the
    :class:`~repro.resilience.BatchReport` for the batch.
    """

    def __init__(self, cache_dir=None, jobs=None, policy=None,
                 cache_peers=None):
        self.cache_dir = cache_dir
        self.jobs = jobs
        self.policy = policy
        self.cache_peers = cache_peers
        self.last_report = None
        self._memo = {}
        # fail fast on a malformed REPRO_TRACE_REPLAY / REPRO_BATCH
        # instead of letting every task burn its retry budget on the
        # same config error
        _replay_mode()
        from repro.batch import batch_mode
        batch_mode()
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
            # a crashed writer can leave ".tmp-*" droppings behind from
            # interrupted atomic_write_text calls; sweep them on open
            gc_stale_tmp(cache_dir)

    # ------------------------------------------------------------------
    # cache plumbing

    def _digest(self, kind, payload):
        return hashlib.sha1(
            json.dumps([CACHE_VERSION, kind, payload], sort_keys=True).encode()
        ).hexdigest()

    def _cache_path(self, kind, payload):
        """Sharded cache location for a payload (None when caching is off).

        Layout: ``<cache_dir>/<kind>/<digest[:2]>/<kind>-<digest>.json``.
        Sharding bounds directory size during wide sweeps and gives
        concurrent writers (different shards) less directory contention.
        """
        if not self.cache_dir:
            return None
        digest = self._digest(kind, payload)
        return os.path.join(
            self.cache_dir,
            kind,
            digest[:_SHARD_CHARS],
            "%s-%s.json" % (kind, digest[:16]),
        )

    def _memo_key(self, kind, payload):
        """In-memory memo key; digest-based so it works without a
        cache_dir too."""
        return (kind, self._digest(kind, payload))

    def request_digest(self, request):
        """Stable cache digest identifying one single-run request.

        Two requests with the same digest are guaranteed to share a
        cache entry (and therefore to coalesce inside one batch); the
        job server uses this to deduplicate identical submissions
        across *different* batches too.
        """
        job = self._resolve_request(request)
        benchmark, prefetcher, instructions, config, variant = job
        payload = self._single_payload(benchmark, instructions, config,
                                       variant)
        return self._digest("single", payload)

    def _load_entry(self, path):
        """Read and verify one cache entry; returns the inner payload.

        :raises FileNotFoundError: no entry at *path*.
        :raises CacheCorruption: unparseable JSON, an envelope with the
            wrong version, or a payload that fails digest verification
            (e.g. a hash-prefix collision or manual tampering).

        Entries written before the integrity envelope (bare payloads
        without ``{"v", "sha", "data"}``) are returned as-is.
        """
        try:
            with open(path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise
        except (ValueError, OSError) as exc:
            raise CacheCorruption(
                "unreadable cache entry %s: %s" % (path, exc), path=path
            )
        # legacy bare entries (pre-envelope) are still trusted as-is
        return unwrap_envelope(data, CACHE_VERSION, path=path,
                               allow_bare=True)

    def _cached(self, path, memo_key=None, report=None):
        """Return the cached payload for *path*, or None.

        Probes the in-memory memo first (repeated baseline lookups stop
        re-reading and re-parsing JSON).  A corrupt, tampered or
        unreadable disk entry is discarded -- the run is recomputed
        rather than crashing the sweep -- and counted on *report* when
        one is supplied.  The discard is *guarded*: the entry's stat
        signature is captured before the read and the unlink only
        happens if the file is still that same file
        (:func:`~repro.obs.io.remove_if_unchanged`), so a concurrent
        writer that has just replaced the entry with a fresh valid one
        never loses its write to our stale corruption verdict.
        """
        if memo_key is not None:
            hit = self._memo.get(memo_key)
            if hit is not None:
                return hit
        if not path:
            return None
        try:
            signature = file_signature(os.stat(path))
        except OSError:
            signature = None
        try:
            data = self._load_entry(path)
        except FileNotFoundError:
            data = self._peer_fetch(path)
            if data is None:
                return None
        except CacheCorruption:
            if report is not None:
                report.cache_corruptions += 1
            remove_if_unchanged(path, signature)
            return None
        if memo_key is not None:
            self._memo[memo_key] = data
        return data

    def _save(self, path, data, memo_key=None):
        """Persist *data* in an integrity envelope, atomically.

        The envelope (``{"v", "sha", "data"}``) lets :meth:`_load_entry`
        verify the payload on read; the temp-file + ``os.replace`` dance
        (:func:`repro.obs.io.atomic_write_text`, shared with the trace
        writer) is safe under concurrent writers, so readers never
        observe a partial entry.  (The ``corrupt-cache`` fault of
        ``REPRO_FAULTS`` injects garbage here to exercise the
        verification path.)
        """
        if memo_key is not None:
            self._memo[memo_key] = data
        if not path:
            return
        text = json.dumps(wrap_envelope(data, CACHE_VERSION))
        plan = get_fault_plan()
        if plan.active:
            garbage = plan.corrupt_payload(path)
            if garbage is not None:
                text = garbage
        atomic_write_text(path, text)
        self._peer_store(path, text)

    # ------------------------------------------------------------------
    # cache-peer federation (cluster tier)

    def _cache_relpath(self, path):
        """Cache-relative entry path used as the peer-tier CAS key."""
        if not path or not self.cache_dir:
            return None
        rel = os.path.relpath(path, self.cache_dir)
        if rel.startswith(".."):
            return None
        return rel.replace(os.sep, "/")

    def _peer_fetch(self, path):
        """Read-through to cache peers after a local miss.

        A verified entry is persisted locally (so the next probe is a
        plain disk hit) and returned; anything else -- no peers, no
        replica, a corrupted reply -- is ``None``.  Integrity is
        enforced inside :meth:`PeerSet.fetch`: entries failing their
        envelope check never reach this far.
        """
        peers = self.cache_peers
        if peers is None:
            return None
        rel = self._cache_relpath(path)
        if rel is None:
            return None
        found = peers.fetch(rel)
        if found is None:
            return None
        text, payload = found
        atomic_write_text(path, text)
        return payload

    def _peer_store(self, path, text):
        """Replicate a fresh cache write to its rendezvous peers."""
        peers = self.cache_peers
        if peers is None:
            return
        rel = self._cache_relpath(path)
        if rel is None:
            return
        peers.store(rel, text)

    def store_single(self, request, data):
        """Persist one externally computed single-run payload.

        The cluster coordinator uses this to fold results computed by
        remote nodes into its own cache (cache-as-checkpoint: a
        requeued shard then resumes from these entries instead of
        recomputing).  First write wins -- an existing entry is left
        untouched, preserving byte-identity under double execution.
        Returns the entry's cache path (None when caching is off).
        """
        job = self._resolve_request(request)
        benchmark, prefetcher, instructions, config, variant = job
        payload = self._single_payload(benchmark, instructions, config,
                                       variant)
        path = self._cache_path("single", payload)
        memo_key = self._memo_key("single", payload)
        if path and os.path.exists(path):
            self._memo.setdefault(memo_key, dict(data))
            return path
        self._save(path, dict(data), memo_key)
        return path

    # ------------------------------------------------------------------
    # cache maintenance

    def cache_stats(self, kind=None):
        """Per-kind entry counts and byte totals of the on-disk cache.

        Returns ``{kind: {"entries": n, "bytes": b}}`` over every kind
        directory under ``cache_dir`` (``single``, ``mix``, ``ftrace``,
        ...), skipping in-flight ``.tmp-`` files.  Empty when caching is
        off.  *kind* restricts the report to one kind directory.
        """
        stats = {}
        if not self.cache_dir or not os.path.isdir(self.cache_dir):
            return stats
        for entry in sorted(os.listdir(self.cache_dir)):
            if kind is not None and entry != kind:
                continue
            root = os.path.join(self.cache_dir, entry)
            if not os.path.isdir(root):
                continue
            entries = 0
            total = 0
            for dirpath, _dirnames, filenames in os.walk(root):
                for name in filenames:
                    if name.startswith(".tmp-"):
                        continue
                    try:
                        total += os.path.getsize(
                            os.path.join(dirpath, name))
                        entries += 1
                    except OSError:
                        continue
            stats[entry] = {"entries": entries, "bytes": total}
        return stats

    def cache_gc(self, older_than_seconds, kind=None):
        """Evict cache entries not modified in *older_than_seconds*.

        Safe against concurrent writers: each candidate's identity
        (inode, size, mtime) is captured before the age test and the
        unlink goes through
        :func:`repro.obs.io.remove_if_unchanged`, so an entry refreshed
        between the stat and the unlink is left alone.  Empty shard
        directories are pruned opportunistically.  *kind* restricts the
        sweep to one kind directory (e.g. evict ``ftrace`` blobs while
        keeping ``single`` results).  Returns ``{"removed": n,
        "bytes": b}``.
        """
        removed = 0
        freed = 0
        if not self.cache_dir or not os.path.isdir(self.cache_dir):
            return {"removed": removed, "bytes": freed}
        root = self.cache_dir if kind is None \
            else os.path.join(self.cache_dir, kind)
        if not os.path.isdir(root):
            return {"removed": removed, "bytes": freed}
        cutoff = time.time() - max(0, older_than_seconds)
        for dirpath, dirnames, filenames in os.walk(root, topdown=False):
            for name in filenames:
                if name.startswith(".tmp-"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                if stat.st_mtime >= cutoff:
                    continue
                if remove_if_unchanged(path, file_signature(stat)):
                    removed += 1
                    freed += stat.st_size
            if dirpath not in (self.cache_dir, root) and not dirnames:
                try:
                    os.rmdir(dirpath)
                except OSError:
                    pass
        return {"removed": removed, "bytes": freed}

    # ------------------------------------------------------------------
    # single-run primitives

    def _resolve_policy(self, policy=None):
        if policy is not None:
            return policy
        if self.policy is not None:
            return self.policy
        return FailurePolicy.from_env()

    def _resolve_request(self, request):
        """Normalise a :class:`RunRequest`/tuple into concrete job args."""
        if not isinstance(request, RunRequest):
            request = RunRequest(*request)
        benchmark, prefetcher, instructions, config, variant = request
        if instructions is None:
            instructions = scaled(DEFAULT_SINGLE_BUDGET)
        config = config or SystemConfig(prefetcher=prefetcher)
        if config.prefetcher != prefetcher:
            raise ValueError("config.prefetcher disagrees with prefetcher arg")
        return benchmark, prefetcher, instructions, config, variant

    def _single_payload(self, benchmark, instructions, config, variant):
        payload = [benchmark, instructions, list(config.key())]
        if variant:
            payload.append(variant)
        return payload

    def run_single(self, benchmark, prefetcher="none", instructions=None,
                   config=None, variant=0, policy=None):
        """Run one benchmark solo; returns a :class:`~repro.sim.RunResult`.

        *variant* selects a re-seeded instance of the workload (see
        :func:`~repro.workloads.build_workload`).  A failing run is
        retried per the :class:`~repro.resilience.FailurePolicy` (no
        per-task timeout -- a single in-process run cannot be
        interrupted) and raises a structured
        :class:`~repro.resilience.SimulationError` once the retry budget
        is exhausted.
        """
        job = self._resolve_request(
            RunRequest(benchmark, prefetcher, instructions, config, variant)
        )
        benchmark, prefetcher, instructions, config, variant = job
        payload = self._single_payload(benchmark, instructions, config,
                                       variant)
        path = self._cache_path("single", payload)
        memo_key = self._memo_key("single", payload)
        cached = self._cached(path, memo_key)
        if cached is not None:
            return RunResult(dict(cached))
        policy = self._resolve_policy(policy)
        fault_key = memo_key[1]
        try:
            data, _attempts = call_with_retries(
                lambda attempt: _execute_single(
                    *job, attempt=attempt, fault_key=fault_key,
                    cache_dir=self.cache_dir,
                ),
                fault_key, policy,
            )
        except SimulationError as error:
            error.request = RunRequest(*job)
            raise
        self._save(path, data, memo_key)
        return RunResult(dict(data))

    # ------------------------------------------------------------------
    # parallel batch API

    def run_many(self, requests, jobs=None, policy=None, progress=None):
        """Run a batch of independent single-core jobs, in parallel.

        Thin wrapper over :meth:`run_batch` that keeps the historical
        interface: returns only the result list and stores the batch's
        :class:`~repro.resilience.BatchReport` on :attr:`last_report`.
        Callers running batches concurrently from several threads (the
        job server's worker tier) should use :meth:`run_batch` directly
        -- ``last_report`` is a single attribute and concurrent batches
        overwrite it.
        """
        results, _ = self.run_batch(
            requests, jobs=jobs, policy=policy, progress=progress,
            report_sink=lambda report: setattr(self, "last_report", report),
        )
        return results

    def run_batch(self, requests, jobs=None, policy=None, progress=None,
                  report_sink=None):
        """Run a batch of independent single-core jobs, in parallel.

        :param requests: iterable of :class:`RunRequest` (or tuples with
            the same field order).
        :param jobs: worker processes; defaults to the runner's ``jobs``,
            then ``REPRO_JOBS``, then ``os.cpu_count()``.
        :param policy: :class:`~repro.resilience.FailurePolicy` override
            for this batch.
        :param progress: optional ``fn(done, total)`` callback invoked
            (from the calling thread) whenever result slots resolve --
            once after the cache-probe pass with the hit count, then
            after every completed or skipped compute.  An exception
            raised by the callback aborts the batch at that task
            boundary (everything already completed stays cached); the
            job server uses this for cooperative cancellation.
        :param report_sink: optional callable receiving the batch's
            :class:`~repro.resilience.BatchReport` as soon as it is
            created (before any work runs).  The report is mutated in
            place, so the caller keeps a view of the partial counters --
            including the recorded failure -- even when the batch raises
            (:meth:`run_many` uses this to keep ``last_report`` accurate
            on error paths).
        :returns: ``(results, report)`` where *results* is a list of
            :class:`~repro.sim.RunResult` in *request order* --
            scheduling is cache-aware (hits are served from the
            memo/disk without touching the pool; duplicate requests are
            simulated once) but the output ordering is deterministic and
            byte-identical to running each request serially.  Under
            ``on_error="skip"``, a slot whose job ultimately failed holds
            ``None``.  *report* is the batch's
            :class:`~repro.resilience.BatchReport`.

        Fault tolerance: every miss is persisted to the cache the moment
        it finishes, so a later failure or an interrupt loses at most the
        in-flight jobs and re-running the batch resumes from the cache.
        Failed or hung jobs are retried with deterministic backoff; a
        broken pool is rebuilt up to ``policy.max_pool_rebuilds`` times
        and then the batch degrades to in-process serial execution.
        ``KeyboardInterrupt`` shuts the pool down (cancelling queued
        futures) and re-raises.

        This method is safe to call concurrently from multiple threads
        of one process: each call owns its report, profiler, pool and
        scheduling state, and the shared memo/disk cache is written
        atomically (last identical write wins).
        """
        resolved = [self._resolve_request(request) for request in requests]
        policy = self._resolve_policy(policy)
        report = BatchReport(total=len(resolved))
        report.profile = profiler = Profiler()
        if report_sink is not None:
            report_sink(report)
        tracker = (_ProgressTracker(progress, len(resolved))
                   if progress is not None else None)
        results = [None] * len(resolved)

        # cache probe pass: serve hits, group misses by identity
        miss_groups = {}  # memo_key -> _Task
        with profiler.section("probe", items=len(resolved)):
            for index, job in enumerate(resolved):
                benchmark, prefetcher, instructions, config, variant = job
                payload = self._single_payload(benchmark, instructions,
                                               config, variant)
                path = self._cache_path("single", payload)
                memo_key = self._memo_key("single", payload)
                cached = self._cached(path, memo_key, report=report)
                if cached is not None:
                    results[index] = RunResult(dict(cached))
                    report.hits += 1
                    continue
                task = miss_groups.get(memo_key)
                if task is None:
                    miss_groups[memo_key] = _Task(memo_key, job, path,
                                                  [index])
                else:
                    task.indices.append(index)

        report.misses = len(miss_groups)
        if tracker is not None:
            tracker.advance(report.hits)
        if not miss_groups:
            return results, report

        if jobs is None:
            jobs = self.jobs
        if jobs is None:
            jobs = default_jobs()
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(
                "jobs must be a positive integer (1 forces serial "
                "execution), got %r" % (jobs,)
            )
        jobs = min(jobs, len(miss_groups))

        tasks = list(miss_groups.values())
        # execute phase: rate = simulated instructions per wall-clock
        # second across all misses (each duplicate group simulates once)
        simulated = sum(task.job[2] for task in tasks)
        with profiler.section("execute", items=simulated):
            from repro.batch import batch_mode
            mode = batch_mode()
            if tasks and mode != "off" and (jobs == 1 or mode == "on"):
                tasks = self._run_batch_kernel(tasks, results, report,
                                               tracker, mode)
            if tasks:
                if jobs == 1:
                    self._run_serial(tasks, results, report, policy,
                                     tracker)
                else:
                    self._run_pool(tasks, results, report, policy, jobs,
                                   tracker)
        return results, report

    def _batch_replay_source(self, workload, instructions, variant):
        """Trace source for a batch lane.

        The batch kernel *requires* a recorded trace, so ``REPRO_BATCH``
        implies recording even when ``REPRO_TRACE_REPLAY`` is off
        (replay-vs-lockstep identity is already enforced by the trace
        test suite, so the answer cannot change).  With replay enabled
        the ordinary source builder runs, honouring its own mode.
        """
        if _replay_mode() != "off":
            return _replay_source_for(workload, instructions, variant,
                                      cache_dir=self.cache_dir)
        from repro.trace.replay import TraceReplaySource
        from repro.trace.store import TraceStore
        trace = TraceStore(self.cache_dir).get_or_record(
            workload, instructions, variant)
        return TraceReplaySource(workload, trace)

    def _run_batch_kernel(self, tasks, results, report, tracker, mode):
        """Route eligible miss tasks through the SoA batch kernel.

        Returns the tasks the kernel did not serve; in ``auto`` mode
        that is the ineligible ones (plus everything, counted as
        fallbacks, when the kernel attempt fails), while in ``on`` mode
        any gate, ineligible lane or kernel failure raises so CI runs
        cannot silently measure the scalar path.
        """
        from repro.batch import batch_counters, record_fallback
        from repro.batch.kernel import BatchIneligible, BatchKernel
        gate = None
        if get_fault_plan().active:
            gate = "fault injection is active"
        elif Sanitizer.from_env() is not None:
            gate = "the sanitizer is active"
        elif os.environ.get("REPRO_CKPT_DIR"):
            gate = "checkpointing is active"
        if gate is not None:
            if mode == "on":
                raise BatchIneligible(gate)
            return tasks
        try:
            kernel = BatchKernel()
            served = []
            leftover = []
            for task in tasks:
                benchmark, _prefetcher, instructions, config, variant = (
                    task.job
                )
                workload = build_workload(benchmark, variant)
                replay = self._batch_replay_source(workload, instructions,
                                                   variant)
                system = System(workload, config, replay=replay)
                try:
                    kernel.add_lane(system, instructions)
                except BatchIneligible as exc:
                    if mode == "on":
                        raise
                    record_fallback(str(exc))
                    leftover.append(task)
                    continue
                served.append(task)
            if not served:
                return tasks
            kernel.run()
            lane_results = kernel.results()
        except BatchIneligible:
            raise
        except Exception:
            if mode == "on":
                raise
            for _ in tasks:
                record_fallback("batch kernel failure")
            return tasks
        batch_counters["lanes"] += len(served)
        _replay_counters["replayed"] += len(served)
        for task, result in zip(served, lane_results):
            self._complete(task, result.as_dict(), results, report,
                           tracker)
        return leftover

    # -- batch internals ------------------------------------------------

    def _complete(self, task, data, results, report, tracker=None):
        """Persist one finished miss immediately (save-as-completed)."""
        self._save(task.path, data, task.memo_key)
        for index in task.indices:
            results[index] = RunResult(dict(data))
        if tracker is not None:
            tracker.advance(len(task.indices))

    def _finalize_failure(self, task, error, results, report, policy,
                          allow_serial=True, tracker=None):
        """A task exhausted its retry budget: apply ``policy.on_error``."""
        error.request = task.request
        error.attempts = task.attempts
        if policy.on_error == "serial" and allow_serial:
            # last resort: run the job in-process, bypassing the pool
            report.degradations += 1
            try:
                data = _execute_single(*task.job, attempt=task.attempts,
                                       fault_key=task.key,
                                       cache_dir=self.cache_dir)
            except Exception as exc:
                final = SimulationError(
                    "task %s failed in-process after pool failures: %s"
                    % (task.key[:12], exc),
                    request=task.request,
                    attempts=task.attempts + 1,
                    cause_traceback=traceback.format_exc(),
                )
                report.record_failure(final)
                raise final from exc
            self._complete(task, data, results, report, tracker)
            return
        if policy.on_error == "skip":
            report.skipped += 1
            report.record_failure(error)
            if tracker is not None:
                tracker.advance(len(task.indices))
            return
        report.record_failure(error)
        raise error

    def _run_serial(self, tasks, results, report, policy, tracker=None):
        """In-process execution path (``jobs=1`` and pool degradation).

        Still retries per the policy (an injected or transient fault is
        recovered in place), but cannot enforce ``task_timeout`` -- an
        in-process job is uninterruptible.  Saves each result as it
        completes, so an interrupt loses at most the current job.
        """
        for task in tasks:
            def attempt_fn(attempt, _job=task.job, _key=task.key):
                return _execute_single(*_job, attempt=attempt,
                                       fault_key=_key,
                                       cache_dir=self.cache_dir)

            def on_retry(exc, attempt):
                report.errors += 1
                report.retries += 1

            try:
                data, made = call_with_retries(
                    attempt_fn, task.key, policy, on_retry=on_retry,
                    start_attempt=task.attempts,
                )
            except SimulationError as error:
                report.errors += 1
                task.attempts += policy.retries + 1
                self._finalize_failure(task, error, results, report,
                                       policy, allow_serial=False,
                                       tracker=tracker)
                continue
            task.attempts += made
            self._complete(task, data, results, report, tracker)

    def _run_pool(self, tasks, results, report, policy, jobs, tracker=None):
        """Process-pool execution with retries, timeouts and rebuilds.

        Structure: a ready ``queue``, a ``retry_heap`` of
        ``(not_before, seq, task)`` backoff entries, and a ``pending``
        map of in-flight futures.  Each loop tick tops the pool up to
        its effective capacity, waits briefly for completions, persists
        every finished job immediately, scans for per-task timeouts, and
        rebuilds the pool when it breaks (worker crash) or when every
        worker slot is blocked by an abandoned hung job.  Exceeding
        ``policy.max_pool_rebuilds`` degrades the rest of the batch to
        :meth:`_run_serial`.
        """
        queue = deque(tasks)
        retry_heap = []               # (ready_time, seq, task)
        seq = itertools.count()
        pending = {}                  # future -> (task, start_time)
        abandoned = 0                 # hung workers we walked away from
        rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=jobs)

        def fail(task, error, now):
            """Retry with backoff, or finalise per the failure policy."""
            task.attempts += 1
            if task.attempts <= policy.retries:
                report.retries += 1
                delay = backoff_delay(policy, task.key, task.attempts - 1)
                heapq.heappush(retry_heap, (now + delay, next(seq), task))
            else:
                self._finalize_failure(task, error, results, report, policy,
                                       tracker=tracker)

        try:
            while queue or retry_heap or pending:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    queue.append(heapq.heappop(retry_heap)[2])

                broken = False
                capacity = max(1, jobs - abandoned)
                while queue and len(pending) < capacity:
                    task = queue.popleft()
                    try:
                        future = pool.submit(
                            _execute_single, *task.job,
                            attempt=task.attempts, fault_key=task.key,
                            cache_dir=self.cache_dir,
                        )
                    except (BrokenProcessPool, RuntimeError):
                        queue.appendleft(task)
                        broken = True
                        break
                    pending[future] = (task, time.monotonic())

                if pending and not broken:
                    done, _ = _futures_wait(
                        pending, timeout=policy.poll_interval,
                        return_when=FIRST_COMPLETED,
                    )
                    now = time.monotonic()
                    for future in done:
                        task, _started = pending.pop(future)
                        try:
                            data = future.result()
                        except BrokenProcessPool as exc:
                            broken = True
                            report.crashes += 1
                            fail(task, WorkerCrash(
                                "worker died while running %r: %s"
                                % (task.request, exc),
                                request=task.request,
                                attempts=task.attempts + 1,
                            ), now)
                        except Exception as exc:
                            report.errors += 1
                            fail(task, SimulationError(
                                "task %r raised %s: %s"
                                % (task.request, type(exc).__name__, exc),
                                request=task.request,
                                attempts=task.attempts + 1,
                                cause_traceback="".join(
                                    traceback.format_exception(
                                        type(exc), exc, exc.__traceback__
                                    )
                                ),
                            ), now)
                        else:
                            self._complete(task, data, results, report,
                                           tracker)
                    if policy.task_timeout is not None:
                        overdue = [
                            future
                            for future, (_task, started) in pending.items()
                            if now - started > policy.task_timeout
                        ]
                        for future in overdue:
                            task, _started = pending.pop(future)
                            if not future.cancel():
                                # already running: the worker is hung and
                                # cannot be interrupted; abandon it
                                abandoned += 1
                            report.timeouts += 1
                            fail(task, TaskTimeout(
                                "task %r exceeded the %.3gs task timeout"
                                % (task.request, policy.task_timeout),
                                request=task.request,
                                attempts=task.attempts + 1,
                            ), now)
                elif not pending and retry_heap and not broken:
                    # nothing in flight: sleep until the next retry is due
                    time.sleep(min(policy.poll_interval,
                                   max(0.0, retry_heap[0][0] - now)))

                if broken or (abandoned and abandoned >= jobs):
                    # tear the pool down; requeue surviving in-flight
                    # tasks without charging them an attempt
                    pool.shutdown(wait=False, cancel_futures=True)
                    for _future, (task, _started) in pending.items():
                        queue.append(task)
                    pending.clear()
                    abandoned = 0
                    rebuilds += 1
                    report.pool_rebuilds += 1
                    if rebuilds > policy.max_pool_rebuilds:
                        remaining = list(queue)
                        queue.clear()
                        while retry_heap:
                            remaining.append(heapq.heappop(retry_heap)[2])
                        report.degradations += len(remaining)
                        self._run_serial(remaining, results, report, policy,
                                         tracker)
                        return
                    pool = ProcessPoolExecutor(max_workers=jobs)
        finally:
            # normal exit, a raised failure, or KeyboardInterrupt: always
            # cancel queued futures and release the pool without waiting
            # on abandoned hung workers, then let the exception re-raise
            pool.shutdown(wait=False, cancel_futures=True)

    def sweep(self, benchmarks, prefetchers, instructions=None, config_for=None,
              base_config=None, jobs=None, policy=None):
        """Cross-product sweep with the shared no-prefetch baseline.

        Runs ``benchmarks x (prefetchers + baseline)`` through
        :meth:`run_many` and returns ``(baselines, table)`` where
        *baselines* maps benchmark -> baseline :class:`RunResult` and
        *table* maps benchmark -> {prefetcher: RunResult}.

        :param config_for: optional ``fn(prefetcher) -> SystemConfig``.
        :param base_config: optional baseline config (must keep
            ``prefetcher="none"``).
        :param policy: :class:`~repro.resilience.FailurePolicy` override.
        """
        requests = []
        for bench in benchmarks:
            requests.append(
                RunRequest(bench, "none", instructions, base_config)
            )
            for prefetcher in prefetchers:
                config = config_for(prefetcher) if config_for else None
                requests.append(
                    RunRequest(bench, prefetcher, instructions, config)
                )
        results = iter(self.run_many(requests, jobs=jobs, policy=policy))
        baselines = {}
        table = {}
        for bench in benchmarks:
            baselines[bench] = next(results)
            table[bench] = {
                prefetcher: next(results) for prefetcher in prefetchers
            }
        return baselines, table

    # ------------------------------------------------------------------
    # mixes

    def run_mix(self, mix, prefetcher="none", instructions=None, config=None):
        """Run a multiprogrammed mix; returns per-core RunResults."""
        if instructions is None:
            instructions = scaled(DEFAULT_MIX_BUDGET)
        config = config or SystemConfig(prefetcher=prefetcher)
        payload = [list(mix), instructions, list(config.key())]
        path = self._cache_path("mix", payload)
        memo_key = self._memo_key("mix", payload)
        cached = self._cached(path, memo_key)
        if cached is not None:
            return [RunResult(dict(entry)) for entry in cached]
        workloads = [build_workload(name) for name in mix]
        replays = None
        if _replay_mode() != "off":
            replays = [
                _replay_source_for(workload, instructions,
                                   cache_dir=self.cache_dir)
                for workload in workloads
            ]
            if any(replay is None for replay in replays):
                replays = None  # all-or-nothing: keep the mix uniform
        _replay_counters[
            "replayed" if replays is not None else "lockstep"] += 1
        sanitizer = Sanitizer.from_env()
        checkpointer = _checkpointer_from_env("mix-%s" % memo_key[1][:16])
        corrupt_at = get_fault_plan().corrupt_state_cycle(memo_key[1])
        plain = (checkpointer is None and sanitizer is None
                 and corrupt_at is None)
        results = (
            self._try_mix_batch(workloads, config, instructions)
            if plain else None
        )
        if results is None:
            cmp_system = CMPSystem(workloads, config, replays=replays)
            if plain:
                results = cmp_system.run(instructions)
            else:
                with signal_guard() as interrupt:
                    results = cmp_system.run(
                        instructions, checkpointer=checkpointer,
                        sanitizer=sanitizer, interrupt=interrupt,
                        corrupt_at=corrupt_at,
                    )
        self._save(path, [result.as_dict() for result in results], memo_key)
        return results

    def _try_mix_batch(self, workloads, config, instructions):
        """Attempt the batch-tier CMP runner; returns results or None.

        None means "use the scalar path": batch mode is off, or (in
        ``auto`` mode) the mix is ineligible or the attempt failed.  The
        attempt always runs on freshly built systems and replay sources,
        so a failure cannot leak partially-advanced state into the
        scalar rerun; ``on`` mode propagates instead of falling back.
        """
        from repro.batch import batch_counters, batch_mode, record_fallback
        mode = batch_mode()
        if mode == "off":
            return None
        from repro.batch.cmp import run_mix_batch
        from repro.batch.kernel import BatchIneligible
        try:
            replays = [
                self._batch_replay_source(workload, instructions, 0)
                for workload in workloads
            ]
            cmp_system = CMPSystem(workloads, config, replays=replays)
            results = run_mix_batch(cmp_system, instructions)
        except BatchIneligible as exc:
            if mode == "on":
                raise
            record_fallback(str(exc))
            return None
        except Exception:
            if mode == "on":
                raise
            record_fallback("batch kernel failure")
            return None
        batch_counters["cmp"] += 1
        return results

    # ------------------------------------------------------------------
    # derived metrics

    def speedup(self, benchmark, prefetcher, instructions=None, config=None,
                base_config=None):
        """IPC ratio of *prefetcher* over the no-prefetch baseline."""
        base = self.run_single(benchmark, "none", instructions, base_config)
        run = self.run_single(benchmark, prefetcher, instructions, config)
        return run.ipc / base.ipc

    def weighted_speedup_normalized(self, mix, prefetcher,
                                    instructions=None,
                                    single_instructions=None,
                                    config=None, base_config=None):
        """Paper Figs. 9/10 metric: weighted speedup of the mix under
        *prefetcher*, normalised to the same mix without prefetching."""
        singles = [
            result.ipc
            for result in self.run_many(
                [RunRequest(name, "none", single_instructions)
                 for name in mix]
            )
        ]
        base = self.run_mix(mix, "none", instructions, base_config)
        run = self.run_mix(mix, prefetcher, instructions, config)
        ws_base = weighted_speedup([r.ipc for r in base], singles,
                                   benchmarks=mix)
        ws_run = weighted_speedup([r.ipc for r in run], singles,
                                  benchmarks=mix)
        return ws_run / ws_base

    def foa_map(self, benchmarks, instructions=None):
        """Solo-run FOA (LLC accesses / cycle) for mix selection."""
        benchmarks = list(benchmarks)
        results = self.run_many(
            [RunRequest(name, "none", instructions) for name in benchmarks]
        )
        return {
            name: foa_from_result(result)
            for name, result in zip(benchmarks, results)
        }
