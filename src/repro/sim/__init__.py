"""System assembly, experiment running and metrics."""

from repro.sim.config import SystemConfig, make_prefetcher
from repro.sim.system import RunResult, System
from repro.sim.cmp import CMPSystem
from repro.sim.metrics import geomean, normalize, weighted_speedup
from repro.sim.runner import ExperimentRunner, RunRequest, default_jobs, scaled
from repro.sim.catalog import catalog

__all__ = [
    "catalog",
    "SystemConfig",
    "make_prefetcher",
    "System",
    "RunResult",
    "CMPSystem",
    "ExperimentRunner",
    "RunRequest",
    "default_jobs",
    "scaled",
    "geomean",
    "normalize",
    "weighted_speedup",
]
