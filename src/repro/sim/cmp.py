"""Chip-multiprocessor simulation: N cores sharing an LLC and DRAM.

Cores advance on a shared clock via an event heap; each core is stepped at
the times it asked for, so memory-bound cores skip idle cycles without
desynchronising the shared LLC state.  Following the paper's methodology,
when an application finishes its instruction budget it *keeps executing*
(so contention pressure stays realistic) and only its first ``budget``
instructions count toward its IPC; the simulation stops once every
application has reached the budget.

Checkpoint support mirrors the single-core :class:`~repro.sim.System`:
the snapshot captures every per-core system (minus the shared LLC/DRAM,
stored once at the top level) *plus* the scheduler's own state -- the
event heap, per-core finish cycles and the instruction target -- so a
resumed CMP run replays the exact interleaving of the original.
"""

import heapq

from repro.checkpoint import CheckpointError
from repro.sim.config import SystemConfig
from repro.sim.system import _DEFAULT_CHUNK_CYCLES, RunResult, System

_KEEP_RUNNING_FACTOR = 1000  # effectively "until the driver stops us"


class CMPSystem:
    """N-core CMP with a shared last-level cache.

    :param workloads: list of :class:`~repro.workloads.Workload`, one per
        core.
    :param config: shared :class:`~repro.sim.SystemConfig`; the LLC is
        sized at ``llc_size_per_core * len(workloads)`` per Table II.
    :param replays: optional per-core list of
        :class:`~repro.trace.replay.TraceReplaySource` (or None entries)
        driving cores off recorded traces; cores stepped past their
        recorded window live-continue on a real machine, so the
        keep-running overshoot stays exact.
    """

    def __init__(self, workloads, config=None, replays=None):
        if not workloads:
            raise ValueError("need at least one workload")
        if replays is not None and len(replays) != len(workloads):
            raise ValueError(
                "replays must align with workloads (%d vs %d)"
                % (len(replays), len(workloads))
            )
        self.config = config or SystemConfig()
        self.num_cores = len(workloads)
        self.llc = self.config.hierarchy.make_llc(self.num_cores)
        self.dram = self.config.hierarchy.make_dram()
        self.systems = [
            System(workload, self.config, llc=self.llc, dram=self.dram,
                   replay=replays[index] if replays is not None else None)
            for index, workload in enumerate(workloads)
        ]

    def run(self, instructions_per_app, checkpointer=None, sanitizer=None,
            interrupt=None, corrupt_at=None):
        """Run until every core retires *instructions_per_app*.

        Returns a list of per-core :class:`~repro.sim.RunResult` whose
        ``cycles`` is the cycle at which that core reached the budget.

        The optional collaborators behave as in
        :meth:`repro.sim.System.run`: an existing checkpoint is resumed,
        state is re-saved every ``checkpointer.every`` cycles of shared
        clock, sanitizer checks run at their cadence, and a tripped
        *interrupt* saves + flushes before re-raising.  With none active
        the original tight loop runs unchanged.
        """
        target = instructions_per_app
        chunked = (
            checkpointer is not None
            or interrupt is not None
            or corrupt_at is not None
            or (sanitizer is not None and sanitizer.active)
        )
        finish_cycle = [None] * self.num_cores
        remaining = self.num_cores
        heap = []
        resumed = False
        if checkpointer is not None:
            loaded = checkpointer.load()
            if loaded is not None:
                state, _cycle = loaded
                try:
                    run_state = self.restore(state)
                except CheckpointError:
                    checkpointer.clear()
                else:
                    if run_state is not None \
                            and run_state["target"] == target:
                        heap = [tuple(entry)
                                for entry in run_state["heap"]]
                        finish_cycle = [
                            None if cycle is None else int(cycle)
                            for cycle in run_state["finish_cycle"]
                        ]
                        remaining = sum(1 for cycle in finish_cycle
                                        if cycle is None)
                        resumed = True
                    else:
                        checkpointer.clear()
        if not resumed:
            for index, system in enumerate(self.systems):
                system.core.start(target * _KEEP_RUNNING_FACTOR)
                heapq.heappush(heap, (0, index))
        else:
            for system in self.systems:
                system.core.start(target * _KEEP_RUNNING_FACTOR)

        chunk = _DEFAULT_CHUNK_CYCLES
        if checkpointer is not None:
            chunk = min(chunk, checkpointer.every)
        if sanitizer is not None and sanitizer.active:
            chunk = min(chunk, sanitizer.interval)
        if corrupt_at is not None:
            chunk = min(chunk, max(1, corrupt_at))
        next_stop = (heap[0][0] + chunk) if (chunked and heap) else None
        corrupted = False
        while remaining:
            if chunked and heap[0][0] >= next_stop:
                now = heap[0][0]
                if corrupt_at is not None and not corrupted \
                        and now >= corrupt_at:
                    from repro.resilience.faults import (
                        apply_state_corruption,
                    )
                    apply_state_corruption(self.systems[0])
                    corrupted = True
                if sanitizer is not None and sanitizer.active:
                    for index, system in enumerate(self.systems):
                        sanitizer.check_system(
                            system, now, include_shared=(index == 0))
                if checkpointer is not None and checkpointer.due(now):
                    checkpointer.save(
                        self._snapshot_run(target, heap, finish_cycle),
                        now)
                if interrupt is not None and interrupt:
                    if checkpointer is not None:
                        checkpointer.save(
                            self._snapshot_run(target, heap, finish_cycle),
                            now)
                    for system in self.systems:
                        if system.tracer is not None:
                            system.tracer.flush()
                    interrupt.raise_pending()
                next_stop = now + chunk
            now, index = heapq.heappop(heap)
            core = self.systems[index].core
            next_time = core.step_cycle(now)
            if finish_cycle[index] is None and core.retired >= target:
                finish_cycle[index] = max(now, 1)
                remaining -= 1
                if remaining == 0:
                    break
            heapq.heappush(heap, (next_time, index))
        if checkpointer is not None:
            checkpointer.clear()

        results = []
        for index, system in enumerate(self.systems):
            core = system.core
            saved_cycle, saved_retired = core.cycle, core.retired
            core.cycle = finish_cycle[index]
            core.retired = min(core.retired, target)
            result = RunResult.from_core(
                core, system.workload.name, self.config.prefetcher
            )
            result.data["total_retired"] = saved_retired
            core.cycle, core.retired = saved_cycle, saved_retired
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # checkpoint/restore

    def fingerprint(self):
        """Identity of this CMP assembly: per-core workloads + config."""
        return {
            "workloads": [system.workload.name for system in self.systems],
            "config": list(self.config.key()),
        }

    def snapshot(self):
        """Complete CMP state: every core (without the shared levels)
        plus the shared LLC and DRAM exactly once."""
        state = self.fingerprint()
        state.update({
            "cores": [system.snapshot(include_shared=False)
                      for system in self.systems],
            "llc": self.llc.snapshot(),
            "dram": self.dram.snapshot(),
        })
        return state

    def _snapshot_run(self, target, heap, finish_cycle):
        """Snapshot plus the scheduler state needed to resume mid-run."""
        state = self.snapshot()
        state["run"] = {
            "target": target,
            "heap": [list(entry) for entry in heap],
            "finish_cycle": list(finish_cycle),
        }
        return state

    def restore(self, state):
        """Restore CMP state from :meth:`snapshot` output.

        Returns the embedded scheduler state (``state["run"]``) when the
        snapshot was taken mid-run, else None.  Raises
        :class:`~repro.checkpoint.CheckpointError` on a fingerprint
        mismatch.
        """
        expected = self.fingerprint()
        found = {"workloads": state.get("workloads"),
                 "config": state.get("config")}
        if found != expected:
            raise CheckpointError(
                "checkpoint fingerprint mismatch: saved %r, system is %r"
                % (found, expected)
            )
        for system, core_state in zip(self.systems, state["cores"]):
            system.restore(core_state)
        self.llc.restore(state["llc"])
        self.dram.restore(state["dram"])
        return state.get("run")
