"""Chip-multiprocessor simulation: N cores sharing an LLC and DRAM.

Cores advance on a shared clock via an event heap; each core is stepped at
the times it asked for, so memory-bound cores skip idle cycles without
desynchronising the shared LLC state.  Following the paper's methodology,
when an application finishes its instruction budget it *keeps executing*
(so contention pressure stays realistic) and only its first ``budget``
instructions count toward its IPC; the simulation stops once every
application has reached the budget.
"""

import heapq

from repro.sim.config import SystemConfig
from repro.sim.system import RunResult, System

_KEEP_RUNNING_FACTOR = 1000  # effectively "until the driver stops us"


class CMPSystem:
    """N-core CMP with a shared last-level cache.

    :param workloads: list of :class:`~repro.workloads.Workload`, one per
        core.
    :param config: shared :class:`~repro.sim.SystemConfig`; the LLC is
        sized at ``llc_size_per_core * len(workloads)`` per Table II.
    """

    def __init__(self, workloads, config=None):
        if not workloads:
            raise ValueError("need at least one workload")
        self.config = config or SystemConfig()
        self.num_cores = len(workloads)
        self.llc = self.config.hierarchy.make_llc(self.num_cores)
        self.dram = self.config.hierarchy.make_dram()
        self.systems = [
            System(workload, self.config, llc=self.llc, dram=self.dram)
            for workload in workloads
        ]

    def run(self, instructions_per_app):
        """Run until every core retires *instructions_per_app*.

        Returns a list of per-core :class:`~repro.sim.RunResult` whose
        ``cycles`` is the cycle at which that core reached the budget.
        """
        target = instructions_per_app
        finish_cycle = [None] * self.num_cores
        remaining = self.num_cores
        heap = []
        for index, system in enumerate(self.systems):
            system.core.start(target * _KEEP_RUNNING_FACTOR)
            heapq.heappush(heap, (0, index))
        while remaining:
            now, index = heapq.heappop(heap)
            core = self.systems[index].core
            next_time = core.step_cycle(now)
            if finish_cycle[index] is None and core.retired >= target:
                finish_cycle[index] = max(now, 1)
                remaining -= 1
                if remaining == 0:
                    break
            heapq.heappush(heap, (next_time, index))

        results = []
        for index, system in enumerate(self.systems):
            core = system.core
            saved_cycle, saved_retired = core.cycle, core.retired
            core.cycle = finish_cycle[index]
            core.retired = min(core.retired, target)
            result = RunResult.from_core(
                core, system.workload.name, self.config.prefetcher
            )
            result.data["total_retired"] = saved_retired
            core.cycle, core.retired = saved_cycle, saved_retired
            results.append(result)
        return results
