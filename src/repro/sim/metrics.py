"""Evaluation metrics: geometric means and weighted speedups.

The paper reports single-threaded results as ``IPC_pf / IPC_baseline``
speedups (geometric mean across benchmarks) and multiprogrammed results
as the *normalized weighted speedup*:
``sum_i(IPC_multi,i / IPC_single,i)`` normalized to the no-prefetching
CMP run (Section V-A).
"""

import math


def geomean(values):
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_speedup(multi_ipcs, single_ipcs):
    """Chandra-style weighted speedup: sum of per-app IPC ratios."""
    if len(multi_ipcs) != len(single_ipcs):
        raise ValueError("mismatched IPC vectors")
    return sum(m / s for m, s in zip(multi_ipcs, single_ipcs))


def normalize(value, baseline):
    """Ratio with a guard against degenerate baselines."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return value / baseline


def speedup_table(rows, columns):
    """Format a text table: rows = [(label, {col: value})]."""
    header = ["benchmark"] + list(columns)
    widths = [max(len(header[0]), max(len(r[0]) for r in rows))]
    widths += [max(len(c), 7) for c in columns]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for label, values in rows:
        cells = [label.ljust(widths[0])]
        for column, width in zip(columns, widths[1:]):
            value = values.get(column)
            cell = "%.3f" % value if value is not None else "-"
            cells.append(cell.ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)
