"""Evaluation metrics: geometric means and weighted speedups.

The paper reports single-threaded results as ``IPC_pf / IPC_baseline``
speedups (geometric mean across benchmarks) and multiprogrammed results
as the *normalized weighted speedup*:
``sum_i(IPC_multi,i / IPC_single,i)`` normalized to the no-prefetching
CMP run (Section V-A).
"""

import math


def geomean(values):
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def weighted_speedup(multi_ipcs, single_ipcs, benchmarks=None):
    """Chandra-style weighted speedup: sum of per-app IPC ratios.

    :param benchmarks: optional sequence of benchmark names used to make
        degenerate-input errors self-describing (which app's single-core
        IPC is zero, not just "division by zero somewhere").
    """
    multi_ipcs = list(multi_ipcs)
    single_ipcs = list(single_ipcs)
    if len(multi_ipcs) != len(single_ipcs):
        raise ValueError(
            "mismatched IPC vectors: %d multiprogrammed vs %d single-core"
            % (len(multi_ipcs), len(single_ipcs))
        )
    if benchmarks is not None:
        benchmarks = list(benchmarks)
        if len(benchmarks) != len(single_ipcs):
            raise ValueError(
                "benchmark names (%d) do not match IPC vectors (%d)"
                % (len(benchmarks), len(single_ipcs))
            )
    total = 0.0
    for index, (m, s) in enumerate(zip(multi_ipcs, single_ipcs)):
        if s <= 0:
            name = (
                benchmarks[index] if benchmarks is not None
                else "app #%d" % index
            )
            raise ValueError(
                "weighted_speedup: single-core IPC for %s is %r; the run "
                "probably retired zero instructions (check the workload "
                "and instruction budget)" % (name, s)
            )
        total += m / s
    return total


def normalize(value, baseline, label=None):
    """Ratio with a guard against degenerate baselines.

    :param label: optional name of the quantity being normalized, used
        in the error message.
    """
    if baseline <= 0:
        what = label if label else "value"
        raise ValueError(
            "normalize: baseline for %s must be positive, got %r "
            "(a zero baseline usually means the baseline run retired "
            "no instructions)" % (what, baseline)
        )
    return value / baseline


def speedup_table(rows, columns):
    """Format a text table: rows = [(label, {col: value})]."""
    header = ["benchmark"] + list(columns)
    widths = [max(len(header[0]), max(len(r[0]) for r in rows))]
    widths += [max(len(c), 7) for c in columns]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for label, values in rows:
        cells = [label.ljust(widths[0])]
        for column, width in zip(columns, widths[1:]):
            value = values.get(column)
            cell = "%.3f" % value if value is not None else "-"
            cells.append(cell.ljust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)
