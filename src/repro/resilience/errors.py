"""Structured error taxonomy + per-batch accounting for the sweep engine.

Every failure the engine can observe is represented by a subclass of
:class:`SimulationError` carrying the originating
:class:`~repro.sim.runner.RunRequest` (when known), the number of
attempts made, and the traceback text of the underlying cause, so a
failed sweep reports *which* job died and *why* instead of a bare
``BrokenProcessPool``.

:class:`BatchReport` aggregates what happened during one
:meth:`~repro.sim.ExperimentRunner.run_many` call -- cache hits, misses,
retries, timeouts, worker crashes, pool rebuilds, serial degradations,
cache-corruption repairs and terminal failures -- and renders a compact
one-line summary for the CLI.
"""


class SimulationError(RuntimeError):
    """A simulation job failed (after any configured retries).

    :param message: human-readable description.
    :param request: the originating job (a
        :class:`~repro.sim.runner.RunRequest` or the resolved job tuple).
    :param attempts: how many times the job was attempted.
    :param cause_traceback: formatted traceback text of the underlying
        exception, when one exists.
    """

    def __init__(self, message, request=None, attempts=0,
                 cause_traceback=None):
        super().__init__(message)
        self.request = request
        self.attempts = attempts
        self.cause_traceback = cause_traceback

    def describe(self):
        """Multi-line description including the captured traceback."""
        lines = ["%s: %s" % (type(self).__name__, self)]
        if self.request is not None:
            lines.append("  request: %r" % (self.request,))
        if self.attempts:
            lines.append("  attempts: %d" % self.attempts)
        if self.cause_traceback:
            lines.append("  cause:")
            lines.extend("    " + line
                         for line in self.cause_traceback.splitlines())
        return "\n".join(lines)


class WorkerCrash(SimulationError):
    """A pool worker died (e.g. OOM-killed, ``os._exit``) mid-job.

    The surrounding :class:`~concurrent.futures.ProcessPoolExecutor`
    becomes unusable when this happens; the engine rebuilds it and
    retries the in-flight jobs.
    """


class TaskTimeout(SimulationError):
    """A job exceeded the per-task timeout (``FailurePolicy.task_timeout``).

    The hung worker cannot be interrupted from the parent; the engine
    abandons the future, retries the job, and rebuilds the pool once
    every worker slot is blocked by an abandoned job.
    """


class CacheCorruption(SimulationError):
    """A cache entry failed integrity verification on read.

    Raised (internally) when an entry's envelope version or payload
    digest does not match, or the JSON cannot be parsed at all.  The
    engine treats it as a miss: the entry is discarded and recomputed.

    :param path: the offending cache file.
    """

    def __init__(self, message, path=None, **kwargs):
        super().__init__(message, **kwargs)
        self.path = path


class BatchReport(object):
    """What happened during one ``run_many`` batch.

    Counter semantics:

    * ``total``            requests in the batch (after resolution);
    * ``hits``             served from the memo/disk cache;
    * ``misses``           unique jobs that had to be simulated;
    * ``retries``          re-executions scheduled after a failure;
    * ``timeouts``         :class:`TaskTimeout` observations;
    * ``crashes``          :class:`WorkerCrash` observations;
    * ``errors``           in-task exceptions (bad code paths, injected
      faults raised in-process);
    * ``pool_rebuilds``    times the process pool was torn down and
      rebuilt;
    * ``degradations``     jobs that fell back to in-process serial
      execution (per-task ``on_error="serial"`` fallbacks and whole-batch
      degradation after ``max_pool_rebuilds`` is exceeded);
    * ``cache_corruptions`` corrupt entries detected and discarded;
    * ``skipped``          jobs abandoned under ``on_error="skip"``;
    * ``failures``         terminal :class:`SimulationError` instances
      (one per skipped/raised job).
    """

    __slots__ = ("total", "hits", "misses", "retries", "timeouts",
                 "crashes", "errors", "pool_rebuilds", "degradations",
                 "cache_corruptions", "skipped", "failures", "profile")

    def __init__(self, total=0):
        self.total = total
        self.hits = 0
        self.misses = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.errors = 0
        self.pool_rebuilds = 0
        self.degradations = 0
        self.cache_corruptions = 0
        self.skipped = 0
        self.failures = []
        # optional repro.obs.Profiler attached by the sweep engine: wall
        # clock per batch phase (cache probe vs. execution)
        self.profile = None

    @property
    def eventful(self):
        """True when anything beyond plain hits/misses happened."""
        return bool(self.retries or self.timeouts or self.crashes
                    or self.errors or self.pool_rebuilds
                    or self.degradations or self.cache_corruptions
                    or self.skipped or self.failures)

    def record_failure(self, error):
        self.failures.append(error)

    def as_dict(self):
        return {
            "total": self.total,
            "hits": self.hits,
            "misses": self.misses,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "pool_rebuilds": self.pool_rebuilds,
            "degradations": self.degradations,
            "cache_corruptions": self.cache_corruptions,
            "skipped": self.skipped,
            "failures": [str(failure) for failure in self.failures],
            "profile": (self.profile.as_dict()
                        if self.profile is not None else None),
        }

    def summary(self):
        """One-line account, e.g. for the CLI's stderr."""
        parts = ["%d requests" % self.total,
                 "%d hits" % self.hits,
                 "%d misses" % self.misses]
        for label, value in (("retries", self.retries),
                             ("timeouts", self.timeouts),
                             ("crashes", self.crashes),
                             ("errors", self.errors),
                             ("pool rebuilds", self.pool_rebuilds),
                             ("serial degradations", self.degradations),
                             ("corrupt cache entries",
                              self.cache_corruptions),
                             ("skipped", self.skipped)):
            if value:
                parts.append("%d %s" % (value, label))
        if self.profile is not None and self.profile.phases:
            parts.append(self.profile.summary())
        return "batch: " + ", ".join(parts)

    def __repr__(self):
        return "BatchReport(%s)" % ", ".join(
            "%s=%r" % (name, getattr(self, name))
            for name in self.__slots__
        )
