"""Failure policy: how the sweep engine reacts when jobs misbehave.

A :class:`FailurePolicy` is a frozen bundle of knobs consumed by
:meth:`~repro.sim.ExperimentRunner.run_many`:

* how many times to retry a failed/timed-out/crashed job and how long to
  back off between attempts (exponential with deterministic jitter, see
  :mod:`repro.resilience.retry`);
* the per-task wall-clock timeout after which a job is declared hung;
* how many times the process pool may be rebuilt (after worker crashes
  or a fully-hung pool) before the whole batch degrades to in-process
  serial execution;
* what to do with a job that exhausts its retries (``on_error``):
  ``raise`` a structured :class:`~repro.resilience.SimulationError`,
  ``skip`` it (the batch returns ``None`` in its slot), or run it
  ``serial`` in-process as a last resort.

Environment knobs (overridden by explicit arguments):

* ``REPRO_RETRIES``       -- retry budget per job (default 2);
* ``REPRO_TASK_TIMEOUT``  -- per-task timeout in seconds (default: none);
* ``REPRO_ON_ERROR``      -- ``raise`` | ``skip`` | ``serial``.
"""

import os
from dataclasses import dataclass, replace

ON_ERROR_MODES = ("raise", "skip", "serial")

_ENV_RETRIES = "REPRO_RETRIES"
_ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"
_ENV_ON_ERROR = "REPRO_ON_ERROR"


def _env_int(name):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError("%s must be an integer, got %r" % (name, raw))


def _env_float(name):
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError("%s must be a number (seconds), got %r"
                         % (name, raw))


@dataclass(frozen=True)
class FailurePolicy:
    """Knobs governing retries, timeouts and degradation.

    :param retries: additional attempts after the first failure
        (``0`` disables retrying).
    :param task_timeout: per-task wall-clock seconds before a running job
        is declared hung and retried; ``None`` disables the timeout.
        Only enforced on the process-pool path -- an in-process job
        cannot be interrupted.
    :param backoff_base: first retry delay, seconds.
    :param backoff_factor: multiplier applied per subsequent retry.
    :param backoff_max: cap on any single delay.
    :param jitter: maximum extra delay as a fraction of the base delay
        (``0.5`` means up to +50%); drawn deterministically from
        ``(seed, task key, attempt)``.
    :param seed: jitter seed -- fixed seed, fixed schedule.
    :param on_error: terminal behaviour once retries are exhausted.
    :param max_pool_rebuilds: pool rebuilds tolerated before the batch
        degrades to in-process serial execution.
    :param poll_interval: scheduler tick, seconds (timeout detection
        granularity).
    """

    retries: int = 2
    task_timeout: float = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    on_error: str = "raise"
    max_pool_rebuilds: int = 2
    poll_interval: float = 0.05

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError("retries must be >= 0, got %r" % (self.retries,))
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive or None, got %r"
                             % (self.task_timeout,))
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError("backoff_base must be >= 0 and backoff_factor "
                             ">= 1")
        if not 0 <= self.jitter:
            raise ValueError("jitter must be >= 0, got %r" % (self.jitter,))
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError("on_error must be one of %s, got %r"
                             % ("/".join(ON_ERROR_MODES), self.on_error))
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0, got %r"
                             % (self.max_pool_rebuilds,))
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive, got %r"
                             % (self.poll_interval,))

    @classmethod
    def from_env(cls, retries=None, task_timeout=None, on_error=None,
                 **overrides):
        """Build a policy from the environment plus explicit overrides.

        Explicit (non-``None``) arguments win over the environment,
        which wins over the dataclass defaults.  Extra keyword arguments
        override the remaining fields directly.
        """
        policy = cls(**overrides) if overrides else cls()
        env_retries = _env_int(_ENV_RETRIES)
        env_timeout = _env_float(_ENV_TASK_TIMEOUT)
        env_on_error = os.environ.get(_ENV_ON_ERROR) or None
        if env_on_error is not None and env_on_error not in ON_ERROR_MODES:
            raise ValueError(
                "%s must be one of %s, got %r"
                % (_ENV_ON_ERROR, "/".join(ON_ERROR_MODES), env_on_error)
            )
        updates = {}
        chosen_retries = retries if retries is not None else env_retries
        if chosen_retries is not None:
            updates["retries"] = chosen_retries
        chosen_timeout = (task_timeout if task_timeout is not None
                          else env_timeout)
        if chosen_timeout is not None:
            updates["task_timeout"] = chosen_timeout
        chosen_on_error = on_error if on_error is not None else env_on_error
        if chosen_on_error is not None:
            updates["on_error"] = chosen_on_error
        return replace(policy, **updates) if updates else policy
