"""Deterministic retry schedules: exponential backoff + seeded jitter.

The jitter is *deterministic*: it is derived from
``(policy.seed, task key, attempt)`` through SHA-1, so a given policy
always produces the same backoff schedule for the same task -- the
chaos tests assert this, and it keeps faulty sweeps reproducible while
still de-synchronising retries across different tasks (two tasks that
fail at the same instant back off by different amounts).
"""

import hashlib
import time

from repro.resilience.errors import SimulationError


def jitter_fraction(seed, key, attempt):
    """Deterministic uniform-ish fraction in ``[0, 1)``."""
    digest = hashlib.sha1(
        ("%s|%s|%d" % (seed, key, attempt)).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def backoff_delay(policy, key, attempt):
    """Delay (seconds) before retry number *attempt* (0-based) of *key*.

    ``base * factor**attempt`` capped at ``backoff_max``, plus a
    deterministic jitter of up to ``policy.jitter`` times the capped
    delay.
    """
    base = min(policy.backoff_base * (policy.backoff_factor ** attempt),
               policy.backoff_max)
    return base * (1.0 + policy.jitter
                   * jitter_fraction(policy.seed, key, attempt))


def backoff_schedule(policy, key, retries=None):
    """The full delay schedule a task would follow under *policy*."""
    if retries is None:
        retries = policy.retries
    return [backoff_delay(policy, key, attempt)
            for attempt in range(retries)]


def call_with_retries(fn, key, policy, on_retry=None, sleep=time.sleep,
                      start_attempt=0):
    """Call ``fn(attempt)`` with the policy's retry budget.

    Retries on any :class:`Exception` (``KeyboardInterrupt`` and other
    ``BaseException`` subclasses propagate immediately).  Between
    attempts, sleeps the deterministic backoff delay.

    :param fn: callable taking the 0-based attempt number.
    :param on_retry: optional callback ``on_retry(exc, attempt)`` invoked
        before each retry (used for :class:`BatchReport` accounting).
    :param start_attempt: first attempt number (continues the schedule
        of a task that already failed elsewhere, e.g. in the pool).
    :returns: ``(result, attempts_made)``.
    :raises SimulationError: wrapping the final exception once the
        budget is exhausted.
    """
    attempt = start_attempt
    while True:
        try:
            return fn(attempt), attempt - start_attempt + 1
        except Exception as exc:
            if attempt >= start_attempt + policy.retries:
                if isinstance(exc, SimulationError):
                    raise
                raise SimulationError(
                    "task %r failed after %d attempt(s): %s"
                    % (key, attempt + 1, exc),
                    attempts=attempt + 1,
                ) from exc
            if on_retry is not None:
                on_retry(exc, attempt)
            delay = backoff_delay(policy, key, attempt)
            if delay > 0:
                sleep(delay)
            attempt += 1
