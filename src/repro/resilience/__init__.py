"""Fault tolerance for the experiment engine.

The sweep engine (:meth:`repro.sim.ExperimentRunner.run_many`) must
survive worker failure the way a branch-predictor-directed frontend
survives misprediction: recover and keep streaming.  This package holds
the pieces:

* :mod:`~repro.resilience.policy`  -- :class:`FailurePolicy` knobs
  (retries, timeouts, degradation);
* :mod:`~repro.resilience.retry`   -- deterministic exponential backoff;
* :mod:`~repro.resilience.errors`  -- structured error taxonomy and the
  per-batch :class:`BatchReport`;
* :mod:`~repro.resilience.faults`  -- the ``REPRO_FAULTS`` deterministic
  fault-injection harness used by the chaos tests.
"""

from repro.resilience.envelope import (
    payload_sha,
    read_envelope_text,
    unwrap_envelope,
    wrap_envelope,
)
from repro.resilience.errors import (
    BatchReport,
    CacheCorruption,
    SimulationError,
    TaskTimeout,
    WorkerCrash,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    get_fault_plan,
    parse_faults,
)
from repro.resilience.policy import ON_ERROR_MODES, FailurePolicy
from repro.resilience.retry import (
    backoff_delay,
    backoff_schedule,
    call_with_retries,
    jitter_fraction,
)

__all__ = [
    "payload_sha",
    "read_envelope_text",
    "unwrap_envelope",
    "wrap_envelope",
    "BatchReport",
    "CacheCorruption",
    "SimulationError",
    "TaskTimeout",
    "WorkerCrash",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "get_fault_plan",
    "parse_faults",
    "ON_ERROR_MODES",
    "FailurePolicy",
    "backoff_delay",
    "backoff_schedule",
    "call_with_retries",
    "jitter_fraction",
]
