"""Deterministic fault injection for the sweep engine (chaos harness).

Activated by the ``REPRO_FAULTS`` environment variable, a comma-
separated list of fault specs::

    REPRO_FAULTS="crash:0.1:seed=7,hang:0.05:dur=1.5,corrupt-cache:0.1"

Each spec is ``kind:probability[:opt=value...]``.  Supported kinds:

* ``crash``          -- the worker process exits abruptly
  (``os._exit``) mid-job, breaking the process pool; injected
  in-process (serial paths) it raises :class:`InjectedCrash` instead,
  since killing the caller would defeat the point;
* ``hang``           -- the job sleeps ``dur`` seconds (default 5.0)
  before completing normally, tripping the per-task timeout;
* ``corrupt-cache``  -- the cache write for an entry is replaced by
  truncated garbage, exercising the integrity-envelope read path;
* ``corrupt-state``  -- a deterministic in-memory corruption is applied
  to the running simulation's microarchitectural state at a configured
  cycle (``cycle=N``, default :data:`DEFAULT_CORRUPT_CYCLE`),
  exercising the ``REPRO_CHECK`` invariant sanitizer and the
  checkpoint-replay auto-bisect.

Fleet verbs (consulted only by the serve tier's worker subprocesses,
see :mod:`repro.serve.supervisor`):

* ``worker-kill``    -- the worker process hard-exits (``os._exit``) at
  a deterministic job/task boundary, exercising worker-loss detection,
  respawn and in-flight-job requeue;
* ``worker-hang``    -- the worker freezes: its heartbeat thread is
  suspended and the main loop sleeps, so the supervisor's missed-beat
  liveness check must declare it dead and requeue its job;
* ``worker-slow``    -- the worker sleeps ``ms`` milliseconds (default
  :data:`DEFAULT_SLOW_MS`) at each boundary, simulating a straggler
  host without killing anything.

Cluster verbs (consulted only by remote node processes and the
cache-peer tier, see :mod:`repro.serve.cluster`):

* ``host-kill``      -- a remote node process hard-exits (``os._exit``)
  at a deterministic shard/task boundary, exercising node-loss
  detection and shard requeue on the coordinator;
* ``host-partition`` -- a remote node deliberately drops its
  coordinator connection at a task boundary but *keeps computing* its
  in-flight shard into the local cache, then reconnects and replays
  the completed digests -- the partition-tolerance drill;
* ``cache-peer-corrupt`` -- a cache peer serves a corrupted entry over
  the wire, exercising the never-trust-the-wire envelope check on the
  fetching side (detected entries count as misses and are recomputed).

Options: ``seed=N`` (per-spec decision seed, default 0), ``dur=F``
(hang duration, seconds), ``cycle=N`` (corrupt-state trigger cycle)
and ``ms=F`` (worker-slow delay, milliseconds).

Determinism contract -- what makes the chaos tests assert byte-identical
recovery:

* whether a fault fires for a given job is a pure function of
  ``(seed, kind, task key)`` (SHA-1 threshold test), so the same sweep
  under the same ``REPRO_FAULTS`` always injects the same faults;
* ``crash``/``hang``/``worker-kill``/``worker-hang``/``host-kill``/
  ``host-partition`` fire only on a job's *first* attempt, so a retried
  (or requeued) job always converges;
* ``corrupt-cache`` and ``cache-peer-corrupt`` fire at most once per
  cache path per process, so a detected-and-recomputed entry is
  rewritten (or re-served) clean.
"""

import hashlib
import os
import time

FAULT_KINDS = ("crash", "hang", "corrupt-cache", "corrupt-state",
               "worker-kill", "worker-hang", "worker-slow",
               "host-kill", "host-partition", "cache-peer-corrupt")

ENV_FAULTS = "REPRO_FAULTS"

# exit status used by injected worker crashes (visible in pool logs)
CRASH_EXIT_CODE = 87

_DEFAULT_HANG_SECONDS = 5.0

# cycle at which a ``corrupt-state`` fault fires when no ``cycle=N``
# option overrides it
DEFAULT_CORRUPT_CYCLE = 1000

# worker-slow straggler delay when no ``ms=F`` option overrides it
DEFAULT_SLOW_MS = 50.0

# garbage written in place of a real entry by ``corrupt-cache``
CORRUPT_PAYLOAD = '{"v": 2, "sha": "deadbeef", "data": {"trunca'


class InjectedCrash(RuntimeError):
    """Raised by an in-process ``crash`` fault (serial execution paths)."""


class FaultSpec(object):
    """One parsed fault: kind, probability, seed, optional duration,
    trigger cycle or straggler delay."""

    __slots__ = ("kind", "prob", "seed", "dur", "cycle", "ms")

    def __init__(self, kind, prob, seed=0, dur=None, cycle=None, ms=None):
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r (choose from %s)"
                             % (kind, ", ".join(FAULT_KINDS)))
        if not 0.0 <= prob <= 1.0:
            raise ValueError("fault probability must be in [0, 1], got %r"
                             % (prob,))
        if cycle is not None and cycle < 1:
            raise ValueError("fault cycle must be >= 1, got %r" % (cycle,))
        if ms is not None and ms < 0:
            raise ValueError("fault ms must be >= 0, got %r" % (ms,))
        self.kind = kind
        self.prob = prob
        self.seed = seed
        self.dur = dur
        self.cycle = cycle
        self.ms = ms

    def __repr__(self):
        return ("FaultSpec(kind=%r, prob=%r, seed=%r, dur=%r, cycle=%r, "
                "ms=%r)"
                % (self.kind, self.prob, self.seed, self.dur, self.cycle,
                   self.ms))


def parse_faults(text):
    """Parse a ``REPRO_FAULTS`` string into ``{kind: FaultSpec}``.

    Raises :class:`ValueError` on malformed specs, unknown kinds,
    out-of-range probabilities or duplicate kinds.
    """
    specs = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise ValueError(
                "malformed fault spec %r (expected kind:prob[:opt=val...])"
                % (chunk,)
            )
        kind = parts[0].strip()
        try:
            prob = float(parts[1])
        except ValueError:
            raise ValueError("fault probability in %r must be a number"
                             % (chunk,))
        options = {}
        for option in parts[2:]:
            if "=" not in option:
                raise ValueError("malformed fault option %r in %r "
                                 "(expected name=value)" % (option, chunk))
            name, _, value = option.partition("=")
            name = name.strip()
            if name == "seed":
                options["seed"] = int(value)
            elif name == "dur":
                options["dur"] = float(value)
            elif name == "cycle":
                options["cycle"] = int(value)
            elif name == "ms":
                options["ms"] = float(value)
            else:
                raise ValueError("unknown fault option %r in %r "
                                 "(supported: seed, dur, cycle, ms)"
                                 % (name, chunk))
        if kind in specs:
            raise ValueError("duplicate fault kind %r" % (kind,))
        specs[kind] = FaultSpec(kind, prob, **options)
    return specs


class FaultPlan(object):
    """Deterministic decisions for one parsed ``REPRO_FAULTS`` value.

    Holds the once-per-key memory for ``corrupt-cache``; reuse the
    process-level singleton from :func:`get_fault_plan` so the memory
    survives across runner instances.
    """

    def __init__(self, specs=None):
        self.specs = dict(specs or {})
        self._corrupted = set()
        self._state_corrupted = set()
        self._peer_corrupted = set()

    @property
    def active(self):
        return bool(self.specs)

    def _fires(self, kind, key):
        spec = self.specs.get(kind)
        if spec is None or spec.prob <= 0.0:
            return False
        if spec.prob >= 1.0:
            return True
        digest = hashlib.sha1(
            ("%s|%s|%s" % (spec.seed, kind, key)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") < spec.prob * (1 << 64)

    # -- decision points -------------------------------------------------

    def should_crash(self, key, attempt=0):
        """Crash faults fire only on a job's first attempt."""
        return attempt == 0 and self._fires("crash", key)

    def should_hang(self, key, attempt=0):
        return attempt == 0 and self._fires("hang", key)

    def hang_seconds(self):
        spec = self.specs.get("hang")
        if spec is None:
            return 0.0
        return spec.dur if spec.dur is not None else _DEFAULT_HANG_SECONDS

    def corrupt_payload(self, key):
        """Garbage to write instead of the real entry, or ``None``.

        Fires at most once per *key* per plan (i.e. per process), so the
        recomputed entry is persisted intact.
        """
        if key in self._corrupted or not self._fires("corrupt-cache", key):
            return None
        self._corrupted.add(key)
        return CORRUPT_PAYLOAD

    def should_worker_kill(self, key, attempt=0):
        """Worker-kill faults fire only on a job's first assignment."""
        return attempt == 0 and self._fires("worker-kill", key)

    def should_worker_hang(self, key, attempt=0):
        """Worker-hang faults fire only on a job's first assignment."""
        return attempt == 0 and self._fires("worker-hang", key)

    def should_host_kill(self, key, attempt=0):
        """Host-kill faults fire only on a shard's first assignment."""
        return attempt == 0 and self._fires("host-kill", key)

    def should_host_partition(self, key, attempt=0):
        """Host-partition faults fire only on a shard's first
        assignment, so a requeued shard (and the partitioned node's own
        replay) always converges."""
        return attempt == 0 and self._fires("host-partition", key)

    def peer_corrupt_payload(self, key):
        """Garbage for a cache peer to serve instead of the real entry,
        or ``None``.

        Fires at most once per *key* per plan (per process), so a
        re-fetch after the detected corruption sees the clean entry.
        """
        if key in self._peer_corrupted \
                or not self._fires("cache-peer-corrupt", key):
            return None
        self._peer_corrupted.add(key)
        return CORRUPT_PAYLOAD

    def worker_slow_seconds(self, key):
        """Straggler delay (seconds) for this boundary, or 0.0.

        Unlike the lethal verbs, ``worker-slow`` fires on every attempt
        -- a slow host stays slow -- so requeued jobs see it too.
        """
        spec = self.specs.get("worker-slow")
        if spec is None or not self._fires("worker-slow", key):
            return 0.0
        ms = spec.ms if spec.ms is not None else DEFAULT_SLOW_MS
        return ms / 1000.0

    def corrupt_state_cycle(self, key, attempt=0):
        """Cycle at which ``corrupt-state`` fires for this run, or None.

        Fires only on a job's *first* attempt and at most once per *key*
        per plan, so a retried/resumed job converges after detection
        even when the retry lands in a different worker process.
        """
        if attempt != 0:
            return None
        spec = self.specs.get("corrupt-state")
        if spec is None or key in self._state_corrupted \
                or not self._fires("corrupt-state", key):
            return None
        self._state_corrupted.add(key)
        return spec.cycle if spec.cycle is not None \
            else DEFAULT_CORRUPT_CYCLE

    # -- injection actions ----------------------------------------------

    def inject_execution_faults(self, key, attempt=0):
        """Run crash/hang injections for a job about to execute.

        In a pool worker a ``crash`` is a hard ``os._exit`` (the parent
        observes ``BrokenProcessPool``); in the parent process it raises
        :class:`InjectedCrash` so serial paths see a normal exception.
        """
        if self.should_hang(key, attempt):
            time.sleep(self.hang_seconds())
        if self.should_crash(key, attempt):
            if _in_worker_process():
                os._exit(CRASH_EXIT_CODE)
            raise InjectedCrash(
                "injected crash fault for task %r (attempt %d)"
                % (key, attempt)
            )


def apply_state_corruption(system):
    """Deterministically damage one system's microarchitectural state.

    The damage is chosen to trip both sanitizer tiers:

    * the L1D hit counter is bumped without an access, breaking the
      ``hit-miss-partition`` invariant (caught by ``REPRO_CHECK=cheap``
      and ``full``);
    * a bogus line is planted in L1D set 0 under a block number that
      maps to set 1, breaking ``tag-set-consistency`` (caught by the
      exhaustive walk in ``REPRO_CHECK=full``).

    Pure and deterministic: applying it to the same state always
    produces the same corrupted state, so a checkpoint replay that
    re-injects it reproduces the divergence cycle exactly.
    """
    from repro.memory.cache import Line

    cache = system.hierarchy.l1d
    cache.stats.hits += 1
    bogus_block = (cache._set_mask + 1) | 1  # maps to set 1, planted in 0
    cache.sets[0][bogus_block] = Line(cache._tick)


def _in_worker_process():
    import multiprocessing

    return multiprocessing.parent_process() is not None


# (raw REPRO_FAULTS string, FaultPlan) -- module-level so the
# corrupt-cache once-per-key memory survives across ExperimentRunner
# instances; re-parsed whenever the raw value changes (monkeypatched
# environments keep working).
_plan_cache = (None, FaultPlan())


def get_fault_plan():
    """The process-level :class:`FaultPlan` for the current environment."""
    global _plan_cache
    raw = os.environ.get(ENV_FAULTS)
    cached_raw, plan = _plan_cache
    if raw != cached_raw:
        plan = FaultPlan(parse_faults(raw) if raw else {})
        _plan_cache = (raw, plan)
    return plan
