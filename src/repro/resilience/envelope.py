"""Versioned integrity envelopes for on-disk simulation artefacts.

The result cache (:mod:`repro.sim.runner`) and the checkpoint store
(:mod:`repro.checkpoint`) persist JSON payloads that must survive
crashes, partial writes and bit rot without ever being *silently* wrong.
Both wrap their payloads in the same envelope::

    {"v": <format version>, "sha": <payload digest>, "data": <payload>}

where ``sha`` is the first 16 hex characters of the SHA-1 of the
``sort_keys`` JSON serialisation of ``data``.  :func:`unwrap_envelope`
verifies both fields on read and raises
:class:`~repro.resilience.CacheCorruption` (the shared "this file cannot
be trusted" signal) on any mismatch, so callers recompute instead of
consuming garbage.
"""

import hashlib
import json

from repro.resilience.errors import CacheCorruption


def payload_sha(data):
    """Content digest stored in (and verified against) envelopes."""
    return hashlib.sha1(
        json.dumps(data, sort_keys=True).encode()
    ).hexdigest()[:16]


def wrap_envelope(data, version):
    """Wrap *data* in a ``{"v", "sha", "data"}`` integrity envelope."""
    return {"v": version, "sha": payload_sha(data), "data": data}


def is_envelope(obj):
    """True when *obj* looks like an integrity envelope."""
    return isinstance(obj, dict) and {"v", "sha", "data"} <= obj.keys()


def unwrap_envelope(obj, version, path=None, allow_bare=False):
    """Verify an envelope and return its inner payload.

    :param obj: the parsed JSON object read from disk.
    :param version: the expected format version.
    :param path: originating file, attached to errors for diagnostics.
    :param allow_bare: when True, a non-envelope *obj* (a legacy bare
        payload written before envelopes existed) is returned as-is
        instead of being rejected.
    :raises CacheCorruption: wrong envelope version, payload digest
        mismatch, or (unless *allow_bare*) a missing envelope.
    """
    if not is_envelope(obj):
        if allow_bare:
            return obj
        raise CacheCorruption(
            "entry %s is not an integrity envelope" % (path,), path=path
        )
    if obj["v"] != version:
        raise CacheCorruption(
            "entry %s has envelope version %r (expected %r)"
            % (path, obj["v"], version),
            path=path,
        )
    payload = obj["data"]
    if payload_sha(payload) != obj["sha"]:
        raise CacheCorruption(
            "entry %s failed payload digest verification" % (path,),
            path=path,
        )
    return payload


def read_envelope_text(text, version, path=None, allow_bare=False):
    """Parse *text* as JSON and unwrap its envelope.

    :raises CacheCorruption: unparseable JSON (truncated write) or any
        :func:`unwrap_envelope` failure.
    """
    try:
        obj = json.loads(text)
    except ValueError as exc:
        raise CacheCorruption(
            "unreadable entry %s: %s" % (path, exc), path=path
        )
    return unwrap_envelope(obj, version, path=path, allow_bare=allow_bare)
