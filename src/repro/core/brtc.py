"""Branch Trace Cache (BrTC).

"The BrTC captures the dynamic control flow sequence of a program and
constructs future lookahead paths across multiple BBs" (Section IV-B1).
Indexed by the :func:`~repro.core.hashing.bb_hash` of (branch PC,
direction, target) -- i.e. by the basic block being *entered* -- each
entry names the branch that *ends* that block and that branch's taken
target, which is everything the lookahead needs to take the next step.
Entries are installed at commit time only.
"""


class BranchTraceCache:
    """Direct-mapped BrTC with 32-bit branch-PC tags."""

    def __init__(self, entries=256):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self.tags = [None] * entries
        self.end_branch_pc = [0] * entries
        self.end_taken_target = [None] * entries
        self.lookups = 0
        self.hits = 0

    def lookup(self, index_hash, tag):
        """Return ``(end_branch_pc, taken_target)`` for the block keyed by
        *index_hash*, or None on miss/tag mismatch."""
        self.lookups += 1
        slot = index_hash & self._mask
        if self.tags[slot] != tag:
            return None
        self.hits += 1
        return self.end_branch_pc[slot], self.end_taken_target[slot]

    def update(self, index_hash, tag, end_branch_pc, taken_target):
        """Commit-time install: the block keyed by *index_hash* ends at
        *end_branch_pc* whose taken target is *taken_target* (None when it
        has not been observed, e.g. an indirect branch never seen taken)."""
        slot = index_hash & self._mask
        if (
            self.tags[slot] == tag
            and self.end_branch_pc[slot] == end_branch_pc
            and taken_target is None
        ):
            return  # keep a known target rather than clearing it
        self.tags[slot] = tag
        self.end_branch_pc[slot] = end_branch_pc
        self.end_taken_target[slot] = taken_target

    @property
    def hit_rate(self):
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self):
        """BrTC contents and counters as a JSON-safe structure."""
        return {
            "tags": list(self.tags),
            "end_branch_pc": list(self.end_branch_pc),
            "end_taken_target": list(self.end_taken_target),
            "lookups": self.lookups,
            "hits": self.hits,
        }

    def restore(self, state):
        """Restore BrTC state from :meth:`snapshot` output."""
        self.tags = list(state["tags"])
        self.end_branch_pc = list(state["end_branch_pc"])
        self.end_taken_target = list(state["end_taken_target"])
        self.lookups = state["lookups"]
        self.hits = state["hits"]

    def storage_bits(self):
        # tag(32) + end branch PC(32) + target(32) + valid  (Table I: 2.06KB
        # at 256 entries assumes the paper's 32-bit-folded fields; ours adds
        # an explicit target per the indirect-branch extension)
        return self.entries * (32 + 32 + 1)
