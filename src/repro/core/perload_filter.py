"""Per-load prefetch filter (Section IV-B3).

A skewed-sampling confidence filter inspired by the dead-block predictor
of Khan et al. [13]: three tables of 3-bit up/down saturating counters,
each indexed by a *different* hash of the load PC.  The per-load
confidence is the *sum* of the three counters; prefetching for a load PC
stops while the sum is below the threshold (3, per Table II), regardless
of how high the path confidence is.

Feedback comes from the cache: the prefetched line carries a 10-bit load
PC hash, and its first demand use (increment) or untouched eviction
(decrement) trains all three tables.

A blocked load issues no prefetches and therefore receives no feedback,
so a burst of useless prefetches (e.g. across a phase change) could turn
a load off forever.  Like other confidence-gated prefetch filters, a
blocked load is allowed through periodically (one in
``probe_interval``) so it can re-earn its confidence.
"""


class PerLoadFilter:
    """Skewed three-table per-load confidence filter."""

    def __init__(self, tables=3, entries=2048, counter_bits=3, threshold=3,
                 initial=2, probe_interval=256, useless_penalty=2):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.num_tables = tables
        self.entries = entries
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self.threshold = threshold
        self.initial = min(initial, self.max_count)
        self.probe_interval = probe_interval
        # a useless prefetch costs bandwidth and cache space; a useful one
        # saves part of a miss -- the asymmetric penalty makes the filter
        # reject coin-flip loads instead of hovering at its threshold
        self.useless_penalty = useless_penalty
        self.tables = [[self.initial] * entries for _ in range(tables)]
        self._mask = entries - 1
        self.blocked = 0
        self.passed = 0
        self.probes = 0
        self._since_probe = 0

    def _indices(self, load_hash):
        mask = self._mask
        h1 = load_hash & mask
        h2 = ((load_hash * 0x9E3779B1) >> 6) & mask
        h3 = ((load_hash * 0x85EBCA6B) >> 3) & mask
        return (h1, h2, h3)[: self.num_tables]

    def confidence(self, load_hash):
        """Sum of the skewed counters for this load PC hash."""
        tables = self.tables
        if len(tables) == 3:
            # fast path for the paper's three-table shape: no tuple
            # construction / slicing / zip per probe
            mask = self._mask
            return (
                tables[0][load_hash & mask]
                + tables[1][((load_hash * 0x9E3779B1) >> 6) & mask]
                + tables[2][((load_hash * 0x85EBCA6B) >> 3) & mask]
            )
        total = 0
        for table, index in zip(tables, self._indices(load_hash)):
            total += table[index]
        return total

    def allow(self, load_hash):
        """True when prefetches from this load PC should be issued.

        Low-confidence loads pass once per ``probe_interval`` blocked
        requests, giving them a path back to usefulness.
        """
        if self.confidence(load_hash) >= self.threshold:
            self.passed += 1
            return True
        self._since_probe += 1
        if self._since_probe >= self.probe_interval:
            self._since_probe = 0
            self.probes += 1
            return True
        self.blocked += 1
        return False

    def update(self, load_hash, useful):
        """Train all tables with a resolved prefetch outcome."""
        for table, index in zip(self.tables, self._indices(load_hash)):
            count = table[index]
            if useful:
                if count < self.max_count:
                    table[index] = count + 1
            else:
                count -= self.useless_penalty
                table[index] = count if count > 0 else 0

    def snapshot(self):
        """Filter tables and counters as a JSON-safe structure."""
        return {
            "tables": [list(table) for table in self.tables],
            "blocked": self.blocked,
            "passed": self.passed,
            "probes": self.probes,
            "since_probe": self._since_probe,
        }

    def restore(self, state):
        """Restore filter state from :meth:`snapshot` output."""
        self.tables = [list(table) for table in state["tables"]]
        self.blocked = state["blocked"]
        self.passed = state["passed"]
        self.probes = state["probes"]
        self._since_probe = state["since_probe"]

    def storage_bits(self):
        return self.num_tables * self.entries * self.counter_bits
