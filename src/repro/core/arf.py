"""Alternate Register File (ARF).

A pseudo-architectural copy of the register file, updated by sampling
latches off the execution units (Section IV-B2).  In the trace-driven
model a register write becomes visible in the ARF at the writing
instruction's execute-completion time, so a lookahead walk launched while
the producer is still in flight reads the stale (pre-update) value --
exactly the timeliness error the real hardware has.

Consistency rule from the paper: "only allowing a register to be updated
by an instruction younger than the previous instruction that modified it",
tracked with a per-register sequence number.
"""

import heapq


class AlternateRegisterFile:
    """32-entry delayed register-file copy.

    Pending writes drain by *completion time*, not program order -- the
    execution units complete out of order, and a long-latency load must
    not hide the younger single-cycle adds behind it.  The per-register
    sequence check enforces the paper's youngest-writer consistency rule.

    :param num_regs: register count (32).
    :param delay: extra cycles between a write's completion and its
        visibility in the ARF (sampling-latch depth).
    """

    def __init__(self, num_regs=32, delay=0):
        self.num_regs = num_regs
        self.delay = delay
        self.values = [0] * num_regs
        self.seq = [-1] * num_regs
        self._pending = []

    def write(self, reg, value, seq, ready_time):
        """Enqueue a register write that becomes visible at *ready_time*."""
        heapq.heappush(self._pending, (ready_time + self.delay, seq, reg, value))

    def sync(self, now):
        """Apply all pending writes whose visibility time has arrived."""
        pending = self._pending
        while pending and pending[0][0] <= now:
            _, seq, reg, value = heapq.heappop(pending)
            if seq > self.seq[reg]:
                self.seq[reg] = seq
                self.values[reg] = value

    def read(self, reg):
        """Current ARF value of *reg* (call :meth:`sync` first)."""
        return self.values[reg]

    def pending_count(self):
        return len(self._pending)

    def snapshot(self):
        """ARF state as a JSON-safe structure.

        The pending heap is stored verbatim (a valid heap restores as a
        valid heap -- ``heapq`` only relies on the array invariant).
        """
        return {
            "values": list(self.values),
            "seq": list(self.seq),
            "pending": [list(entry) for entry in self._pending],
        }

    def restore(self, state):
        """Restore ARF state from :meth:`snapshot` output."""
        self.values = [int(value) for value in state["values"]]
        self.seq = [int(value) for value in state["seq"]]
        self._pending = [tuple(entry) for entry in state["pending"]]

    def storage_bits(self):
        # 32-bit value + 8-bit sequence field per register (Table I: 0.156KB)
        return self.num_regs * (32 + 8)
