"""Memory History Table (MHT).

The largest B-Fetch structure (Section IV-B2, Fig. 6).  One entry per
basic block (indexed by the same (branch PC, direction, target) hash as
the BrTC); each entry holds up to three *register history* slots -- one
per unique source register used for effective-address generation in that
block -- recording:

* ``regidx`` -- the source register,
* ``regval`` -- the register's value when the leading branch executed,
* ``offset`` -- learned ``EA - regval`` (static displacement *plus* the
  register's in-block variation, Equation 1),
* ``pospatt``/``negpatt`` -- 5-bit block-granular bit vectors for further
  loads off the same register in the block (Listing 2),
* ``loopdelta`` -- EA delta across consecutive executions, used with the
  lookahead's revisit count for loop prefetching (Equation 3).

We additionally keep the 10-bit load-PC hash with each slot so the
per-load filter can be consulted at prefetch-issue time (the hardware
recovers it from the same commit path that trains the slot; Table I's
bit budget absorbs it in the hash fields -- see EXPERIMENTS.md).
"""


class RegisterHistory:
    """One register-history slot of an MHT entry."""

    __slots__ = (
        "regidx",
        "regval",
        "offset",
        "pospatt",
        "negpatt",
        "valid",
        "loopdelta",
        "load_hash",
        "last_ea",
        "stable",
    )

    def __init__(self, regidx):
        self.regidx = regidx
        self.regval = 0
        self.offset = 0
        self.pospatt = 0
        self.negpatt = 0
        self.valid = False
        self.loopdelta = 0
        self.load_hash = 0
        self.last_ea = None
        # 2-bit offset-stability hysteresis: a slot only issues once its
        # learned offset has re-confirmed, so loads whose address bears no
        # stable relation to the register (e.g. hash-computed) never leave
        # the table as prefetch candidates
        self.stable = 0


class MHTEntry:
    """One basic block's worth of register history."""

    __slots__ = ("tag", "slots", "next_victim", "max_slots")

    def __init__(self, tag, max_slots):
        self.tag = tag
        self.slots = []
        self.next_victim = 0
        self.max_slots = max_slots

    def slot_for(self, regidx, allocate):
        """Find (or allocate) the slot tracking *regidx*."""
        for slot in self.slots:
            if slot.regidx == regidx:
                return slot
        if not allocate:
            return None
        slot = RegisterHistory(regidx)
        if len(self.slots) < self.max_slots:
            self.slots.append(slot)
        else:
            # round-robin replacement among the fixed slots
            self.slots[self.next_victim] = slot
            self.next_victim = (self.next_victim + 1) % self.max_slots
        return slot


class MemoryHistoryTable:
    """Direct-mapped MHT."""

    def __init__(self, entries=128, reg_slots=3):
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.reg_slots = reg_slots
        self._mask = entries - 1
        self.table = [None] * entries
        self.lookups = 0
        self.hits = 0

    def lookup(self, index_hash, tag):
        """Read-only probe; returns the :class:`MHTEntry` or None."""
        self.lookups += 1
        entry = self.table[index_hash & self._mask]
        if entry is None or entry.tag != tag:
            return None
        self.hits += 1
        return entry

    def get_or_allocate(self, index_hash, tag):
        """Training-path access: existing entry or a fresh replacement."""
        slot = index_hash & self._mask
        entry = self.table[slot]
        if entry is None or entry.tag != tag:
            entry = MHTEntry(tag, self.reg_slots)
            self.table[slot] = entry
        return entry

    @property
    def hit_rate(self):
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self):
        """MHT contents and counters as a JSON-safe structure."""
        table = []
        for entry in self.table:
            if entry is None:
                table.append(None)
                continue
            table.append({
                "tag": entry.tag,
                "next_victim": entry.next_victim,
                "slots": [
                    {
                        "regidx": slot.regidx,
                        "regval": slot.regval,
                        "offset": slot.offset,
                        "pospatt": slot.pospatt,
                        "negpatt": slot.negpatt,
                        "valid": slot.valid,
                        "loopdelta": slot.loopdelta,
                        "load_hash": slot.load_hash,
                        "last_ea": slot.last_ea,
                        "stable": slot.stable,
                    }
                    for slot in entry.slots
                ],
            })
        return {"table": table, "lookups": self.lookups, "hits": self.hits}

    def restore(self, state):
        """Restore MHT state from :meth:`snapshot` output."""
        table = [None] * self.entries
        for index, encoded in enumerate(state["table"]):
            if encoded is None:
                continue
            entry = MHTEntry(encoded["tag"], self.reg_slots)
            entry.next_victim = encoded["next_victim"]
            for item in encoded["slots"]:
                slot = RegisterHistory(item["regidx"])
                slot.regval = item["regval"]
                slot.offset = item["offset"]
                slot.pospatt = item["pospatt"]
                slot.negpatt = item["negpatt"]
                slot.valid = item["valid"]
                slot.loopdelta = item["loopdelta"]
                slot.load_hash = item["load_hash"]
                slot.last_ea = item["last_ea"]
                slot.stable = item["stable"]
                entry.slots.append(slot)
            table[index] = entry
        self.table = table
        self.lookups = state["lookups"]
        self.hits = state["hits"]

    def storage_bits(self):
        # Fig. 6: Branch tag (32) + 3 x (regIdx 5 + RegVal 32 + Offset 16 +
        # negPatt 5 + posPatt 5 + Valid 1 + LoopCnt 5 + LoopDelta 16) = 287
        # bits per entry => 4.5KB at 128 entries, matching Table I.
        per_slot = 5 + 32 + 16 + 5 + 5 + 1 + 5 + 16
        return self.entries * (32 + self.reg_slots * per_slot)
