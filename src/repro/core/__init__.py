"""B-Fetch: the paper's contribution.

A 3-stage prefetch pipeline hanging off the main core:

1. **Branch Lookahead** -- from each decoded branch, walk the predicted
   future path one basic block per step using the Branch Trace Cache
   (:mod:`~repro.core.brtc`) and the main branch predictor, throttled by a
   composite path-confidence estimate.
2. **Register Lookup** -- for each predicted basic block, pull the learned
   per-block register transformations from the Memory History Table
   (:mod:`~repro.core.mht`) and current register values from the Alternate
   Register File (:mod:`~repro.core.arf`).
3. **Prefetch Calculate** -- form ``ARF[reg] + Offset (+ LoopCnt *
   LoopDelta)`` per Equation 3, expand same-register block patterns
   (negPatt/posPatt), filter through the per-load confidence filter
   (:mod:`~repro.core.perload_filter`), and queue the prefetches.
"""

from repro.core.config import BFetchConfig
from repro.core.arf import AlternateRegisterFile
from repro.core.brtc import BranchTraceCache
from repro.core.mht import MemoryHistoryTable, MHTEntry, RegisterHistory
from repro.core.perload_filter import PerLoadFilter
from repro.core.bfetch import BFetchPrefetcher
from repro.core.hashing import bb_hash, load_pc_hash

__all__ = [
    "BFetchConfig",
    "BFetchPrefetcher",
    "AlternateRegisterFile",
    "BranchTraceCache",
    "MemoryHistoryTable",
    "MHTEntry",
    "RegisterHistory",
    "PerLoadFilter",
    "bb_hash",
    "load_pc_hash",
]
