"""The B-Fetch prefetch engine (Section IV).

Event wiring (raised by the timing core):

* ``on_branch_decode`` -- a branch entered the Decoded Branch Register;
  run one lookahead walk down the predicted path.
* ``on_commit`` -- architectural training: BrTC linking, MHT offset /
  loop-delta / pattern learning, ARF write scheduling, and the
  register-file snapshot taken at each branch.
* ``feedback`` -- per-load filter training from cache-line outcomes.

The engine needs read access to the main pipeline's branch predictor and
confidence estimator (Section IV-C argues the predictor has the spare
ports); call :meth:`BFetchPrefetcher.attach` during system assembly.
"""

from repro.branch.path_confidence import PathConfidence  # noqa: F401 (API)
from repro.core.arf import AlternateRegisterFile
from repro.isa.opcodes import IS_BRANCH as _IS_BRANCH, Op

_OP_LOAD = int(Op.LOAD)
from repro.core.brtc import BranchTraceCache
from repro.core.config import BFetchConfig
from repro.core.hashing import bb_hash, load_pc_hash
from repro.core.mht import MemoryHistoryTable
from repro.core.perload_filter import PerLoadFilter
from repro.prefetchers.base import Prefetcher

_MASK64 = (1 << 64) - 1


class BFetchPrefetcher(Prefetcher):
    """Branch-prediction-directed data prefetcher."""

    name = "bfetch"

    def __init__(self, config=None, block_bytes=None):
        self.config = config or BFetchConfig()
        cfg = self.config
        # geometry: the engine must agree with the L1 it feeds -- the
        # factory passes the hierarchy's line size, which overrides the
        # BFetchConfig default so non-64B systems keep dedup and delta
        # learning block-aligned
        super().__init__(cfg.queue_capacity,
                         block_bytes if block_bytes else cfg.block_bytes)
        self.brtc = BranchTraceCache(cfg.brtc_entries)
        self.mht = MemoryHistoryTable(cfg.mht_entries, cfg.mht_reg_slots)
        self.arf = AlternateRegisterFile(delay=cfg.arf_delay)
        self.filter = PerLoadFilter(
            cfg.filter_tables,
            cfg.filter_entries,
            cfg.filter_counter_bits,
            cfg.filter_threshold,
            cfg.filter_initial,
        )
        self.predictor = None
        self.confidence = None
        # trainer state
        self._prev_hash = None  # keys the BB we are currently committing
        self._prev_tag = None
        self._branch_snapshot = None  # register values at the leading branch
        self._bb_primary_ea = {}  # regidx -> primary load EA this BB execution
        self._commit_seq = 0
        # lookahead statistics
        self.walks = 0
        self.total_depth = 0
        self.candidates = 0
        self.filtered = 0
        # per-walk depth distribution (bucket = basic blocks walked;
        # index 0 collects walks rejected before the first step)
        self.depth_hist = [0] * (cfg.max_lookahead + 1)
        # tracing (None = "bfetch" category disabled)
        self._trace_bfetch = None

    def bind_tracer(self, tracer):
        super().bind_tracer(tracer)
        self._trace_bfetch = (
            tracer.channel("bfetch") if tracer is not None else None
        )

    # ------------------------------------------------------------------

    def attach(self, predictor, confidence):
        """Connect the main pipeline's predictor and confidence estimator."""
        self.predictor = predictor
        self.confidence = confidence

    @property
    def mean_lookahead_depth(self):
        """Average basic blocks walked per lookahead (paper reports ~8)."""
        return self.total_depth / self.walks if self.walks else 0.0

    # ------------------------------------------------------------------
    # training (commit-time)

    def on_commit(self, instr, ea, taken, next_pc, regs, now):
        seq = self._commit_seq + 1
        self._commit_seq = seq
        rd = instr.rd
        if rd is not None and rd != 31:
            # value becomes ARF-visible when the writer completes execution;
            # `now` is the core-supplied completion estimate
            self.arf.write(rd, regs[rd], seq, now)
        op = instr.op
        if _IS_BRANCH[op]:
            self._train_branch(instr, taken, next_pc, now)
        elif op == _OP_LOAD:
            self._train_load(instr, ea)

    def _train_branch(self, instr, taken, next_pc, now):
        pc = instr.pc
        # taken target: direct branches expose it at decode; indirect ones
        # only when actually taken
        if instr.target is not None:
            taken_target = instr.pc + 4 * (instr.target - instr.index)
        elif taken:
            taken_target = next_pc
        else:
            taken_target = None
        if self._prev_hash is not None:
            self.brtc.update(self._prev_hash, self._prev_tag, pc, taken_target)
        self._prev_hash = bb_hash(pc, taken, next_pc)
        self._prev_tag = pc & 0xFFFFFFFF
        # RegVal is read into the MHT *from the ARF* (Section IV-B2), not
        # from precise architectural state: training and lookahead must
        # observe the same sampling lag, so the learned Offset absorbs it
        # and the in-flight distance cancels at prefetch time.
        self.arf.sync(now)
        self._branch_snapshot = list(self.arf.values)
        self._bb_primary_ea.clear()

    def _train_load(self, instr, ea):
        if self._prev_hash is None:
            return
        cfg = self.config
        regidx = instr.ra
        primary_ea = self._bb_primary_ea.get(regidx)
        entry = self.mht.get_or_allocate(self._prev_hash, self._prev_tag)
        if primary_ea is not None:
            if not cfg.pattern_prefetch:
                return
            # secondary load off the same register: learn the block pattern
            slot = entry.slot_for(regidx, allocate=False)
            if slot is None or not slot.valid:
                return
            shift = self.block_shift  # configured L1 line geometry
            delta_blocks = (ea >> shift) - (primary_ea >> shift)
            if 1 <= delta_blocks <= cfg.pattern_bits:
                slot.pospatt |= 1 << (delta_blocks - 1)
            elif -cfg.pattern_bits <= delta_blocks <= -1:
                slot.negpatt |= 1 << (-delta_blocks - 1)
            return
        self._bb_primary_ea[regidx] = ea
        slot = entry.slot_for(regidx, allocate=True)
        offset = ea - self._branch_snapshot[regidx]
        if abs(offset) > cfg.offset_limit:
            # not representable in the 16-bit field: the slot cannot cover
            # this load (the per-load filter will suppress stale issues)
            slot.valid = False
            slot.stable = 0
            slot.last_ea = ea
            return
        if slot.valid and offset == slot.offset:
            if slot.stable < 3:
                slot.stable += 1
        elif slot.stable > 0:
            slot.stable -= 1
        if slot.last_ea is not None:
            loopdelta = ea - slot.last_ea
            if abs(loopdelta) <= cfg.loopdelta_limit:
                slot.loopdelta = loopdelta
            else:
                slot.loopdelta = 0
        slot.offset = offset
        slot.regval = self._branch_snapshot[regidx] & 0xFFFFFFFF
        slot.last_ea = ea
        slot.load_hash = load_pc_hash(instr.pc)
        slot.valid = True

    # ------------------------------------------------------------------
    # lookahead (decode-time)

    def on_branch_decode(self, pc, pred_taken, target, now):
        """Run one lookahead walk starting at the decoded branch."""
        predictor = self.predictor
        if predictor is None:
            raise RuntimeError("BFetchPrefetcher.attach() was never called")
        cfg = self.config
        self.arf.sync(now)
        self.walks += 1

        # The walk maintains the multiplicative PaCo path confidence
        # inline (see branch.path_confidence for the object form): one
        # float product instead of an object allocation plus two method
        # calls per walked branch.
        threshold = cfg.path_confidence_threshold
        probability = self.confidence.probability
        spec_history = predictor.history
        trace = self._trace_bfetch
        path_value = probability(pc, spec_history)
        if path_value < threshold:
            self.depth_hist[0] += 1
            if trace is not None:
                trace.emit("walk", now, pc=pc, depth=0,
                           end="low_confidence")
            return
        if pred_taken:
            if target is None:
                self.depth_hist[0] += 1
                if trace is not None:
                    trace.emit("walk", now, pc=pc, depth=0,
                               end="indirect_unknown")
                return  # indirect branch without a known target
            next_pc = target
        else:
            next_pc = pc + 4
        _bb_hash = bb_hash
        brtc_lookup = self.brtc.lookup
        predict = predictor.predict
        prefetch_block = self._prefetch_block
        instruction_prefetch = cfg.instruction_prefetch
        max_lookahead = cfg.max_lookahead
        state_hash = _bb_hash(pc, pred_taken, next_pc)
        state_tag = pc & 0xFFFFFFFF
        spec_history = (spec_history << 1) | (1 if pred_taken else 0)

        visits = {}
        depth = 0
        entry_pc = next_pc
        while depth < max_lookahead:
            depth += 1
            revisit = visits.get(state_hash, 0)
            visits[state_hash] = revisit + 1
            prefetch_block(state_hash, state_tag, revisit)
            step = brtc_lookup(state_hash, state_tag)
            if step is None:
                break
            end_pc, end_taken_target = step
            if instruction_prefetch and end_pc >= entry_pc:
                self._prefetch_instr_range(entry_pc, end_pc)
            direction = predict(end_pc, spec_history)
            path_value *= probability(end_pc, spec_history)
            if path_value < threshold:
                break
            if direction:
                if end_taken_target is None:
                    break
                next_pc = end_taken_target
            else:
                next_pc = end_pc + 4
            state_hash = _bb_hash(end_pc, direction, next_pc)
            state_tag = end_pc & 0xFFFFFFFF
            spec_history = (spec_history << 1) | (1 if direction else 0)
            entry_pc = next_pc
        self.total_depth += depth
        self.depth_hist[depth] += 1
        if trace is not None:
            trace.emit("walk", now, pc=pc, depth=depth,
                       end_pc=next_pc, path_conf=round(path_value, 6))

    def _prefetch_instr_range(self, start_pc, end_pc):
        """B-Fetch-I: queue the instruction blocks of one predicted basic
        block (entry PC through its terminating branch)."""
        block_bytes = self.block_bytes
        first = start_pc & ~(block_bytes - 1)
        last = end_pc & ~(block_bytes - 1)
        limit = self.config.max_instr_blocks
        block = first
        while block <= last and limit > 0:
            self.push_instr(block)
            block += block_bytes
            limit -= 1

    def _prefetch_block(self, state_hash, state_tag, revisit):
        """Stage 2+3: register lookup and prefetch-address calculation."""
        entry = self.mht.lookup(state_hash, state_tag)
        if entry is None:
            return
        cfg = self.config
        block_bytes = self.block_bytes
        arf_values = self.arf.values
        push = self.push
        use_filter = cfg.use_filter
        filter_allow = self.filter.allow
        loop_prefetch = cfg.loop_prefetch
        pattern_prefetch = cfg.pattern_prefetch
        for slot in entry.slots:
            if not slot.valid or not slot.stable:
                continue
            self.candidates += 1
            load_hash = slot.load_hash
            if use_filter and not filter_allow(load_hash):
                self.filtered += 1
                continue
            ea = arf_values[slot.regidx] + slot.offset
            if loop_prefetch and revisit:
                ea += revisit * slot.loopdelta
            ea &= _MASK64
            push(ea, load_hash)
            if not pattern_prefetch:
                continue
            block = ea & ~(block_bytes - 1)
            pattern = slot.pospatt
            step = 1
            while pattern:
                if pattern & 1:
                    push(block + step * block_bytes, load_hash)
                pattern >>= 1
                step += 1
            pattern = slot.negpatt
            step = 1
            while pattern:
                if pattern & 1:
                    push((block - step * block_bytes) & _MASK64, load_hash)
                pattern >>= 1
                step += 1

    # ------------------------------------------------------------------

    def feedback(self, meta, outcome):
        """Cache-line outcome: update stats and train the per-load filter."""
        super().feedback(meta, outcome)
        if meta is not None:
            self.filter.update(meta, outcome != "useless")

    # ------------------------------------------------------------------
    # checkpoint/restore

    def snapshot(self):
        """Full engine state: base queue/stats plus BrTC/MHT/ARF/filter
        tables and the commit-path trainer registers."""
        state = super().snapshot()
        state.update({
            "brtc": self.brtc.snapshot(),
            "mht": self.mht.snapshot(),
            "arf": self.arf.snapshot(),
            "filter": self.filter.snapshot(),
            "prev_hash": self._prev_hash,
            "prev_tag": self._prev_tag,
            "branch_snapshot": (
                list(self._branch_snapshot)
                if self._branch_snapshot is not None else None
            ),
            "bb_primary_ea": [[regidx, ea] for regidx, ea
                              in self._bb_primary_ea.items()],
            "commit_seq": self._commit_seq,
            "walks": self.walks,
            "total_depth": self.total_depth,
            "candidates": self.candidates,
            "filtered": self.filtered,
            "depth_hist": list(self.depth_hist),
        })
        return state

    def restore(self, state):
        """Restore engine state from :meth:`snapshot` output."""
        super().restore(state)
        self.brtc.restore(state["brtc"])
        self.mht.restore(state["mht"])
        self.arf.restore(state["arf"])
        self.filter.restore(state["filter"])
        self._prev_hash = state["prev_hash"]
        self._prev_tag = state["prev_tag"]
        snapshot = state["branch_snapshot"]
        self._branch_snapshot = (list(snapshot) if snapshot is not None
                                 else None)
        self._bb_primary_ea = {int(regidx): ea for regidx, ea
                               in state["bb_primary_ea"]}
        self._commit_seq = state["commit_seq"]
        self.walks = state["walks"]
        self.total_depth = state["total_depth"]
        self.candidates = state["candidates"]
        self.filtered = state["filtered"]
        self.depth_hist = list(state["depth_hist"])

    def storage_bits(self):
        """Sum of Table I components (cache bits are counted by the
        overhead analysis since they live in the L1D, not the engine)."""
        return (
            self.brtc.storage_bits()
            + self.mht.storage_bits()
            + self.arf.storage_bits()
            + self.filter.storage_bits()
            + self.config.queue_capacity * 42  # prefetch queue (42-bit reqs)
        )
