"""Index hashing for the B-Fetch tables.

Both the BrTC and the MHT are "indexed using a hash of the current branch
PC, predicted branch direction, and the target address" (Section IV-B1);
including the target disambiguates indirect branches.  ``load_pc_hash`` is
the 10-bit load-PC digest stored in L1D lines and used to index the
per-load filter.
"""

_GOLDEN = 0x9E3779B1
_MIX = 0x85EBCA6B
_MASK32 = 0xFFFFFFFF


def bb_hash(branch_pc, taken, target_pc):
    """Hash identifying the basic block entered after a branch outcome.

    Both PC terms are multiplied before combining and the high bits are
    folded down -- regularly spaced branch PCs (straight-line code with
    fixed block sizes) must not collapse onto a few table slots.
    """
    value = ((branch_pc >> 2) * _GOLDEN) & _MASK32
    value ^= ((target_pc >> 2) * _MIX) & _MASK32
    value ^= value >> 15
    if taken:
        value ^= 0x5A5A5A5A
    return value & _MASK32


def load_pc_hash(pc):
    """10-bit digest of a load PC (stored per cache block, Table I)."""
    folded = (pc >> 2) ^ (pc >> 12) ^ (pc >> 22)
    return folded & 0x3FF
