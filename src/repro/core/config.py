"""B-Fetch configuration (defaults = the paper's 12.84KB design point)."""


class BFetchConfig:
    """All sizing and threshold knobs for the B-Fetch engine.

    Defaults follow Table I / Table II of the paper:

    * 256-entry Branch Trace Cache,
    * 128-entry Memory History Table with 3 register-history slots,
    * 32-entry Alternate Register File,
    * 3 x 2048-entry, 3-bit per-load filter with threshold 3,
    * path-confidence threshold 0.75,
    * 100-entry prefetch queue.

    The Fig. 15 storage sweep scales ``brtc_entries``/``mht_entries``
    together (64/128/256/512).
    """

    def __init__(
        self,
        brtc_entries=256,
        mht_entries=128,
        mht_reg_slots=3,
        offset_bits=16,
        loopdelta_bits=16,
        pattern_bits=5,
        path_confidence_threshold=0.75,
        max_lookahead=16,
        filter_tables=3,
        filter_entries=2048,
        filter_counter_bits=3,
        filter_threshold=3,
        filter_initial=2,
        queue_capacity=100,
        arf_delay=6,
        arf_mode="execute",
        loop_prefetch=True,
        pattern_prefetch=True,
        use_filter=True,
        instruction_prefetch=False,
        max_instr_blocks=8,
        block_bytes=64,
    ):
        if arf_mode not in ("execute", "retire"):
            raise ValueError(
                "arf_mode must be 'execute' or 'retire', got %r"
                % (arf_mode,)
            )
        # fail fast on non-positive sizing knobs: a zero-entry table or
        # a non-positive lookahead depth silently degenerates the engine
        for field, value in (
            ("brtc_entries", brtc_entries),
            ("mht_entries", mht_entries),
            ("mht_reg_slots", mht_reg_slots),
            ("max_lookahead", max_lookahead),
            ("filter_tables", filter_tables),
            ("filter_entries", filter_entries),
            ("filter_counter_bits", filter_counter_bits),
            ("queue_capacity", queue_capacity),
            ("max_instr_blocks", max_instr_blocks),
            ("block_bytes", block_bytes),
        ):
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    "%s must be a positive integer, got %r" % (field, value)
                )
        if not 0.0 <= path_confidence_threshold <= 1.0:
            raise ValueError(
                "path_confidence_threshold must be in [0, 1], got %r"
                % (path_confidence_threshold,)
            )
        if arf_delay < 0:
            raise ValueError(
                "arf_delay must be >= 0 cycles, got %r" % (arf_delay,)
            )
        self.brtc_entries = brtc_entries
        self.mht_entries = mht_entries
        self.mht_reg_slots = mht_reg_slots
        self.offset_bits = offset_bits
        self.loopdelta_bits = loopdelta_bits
        self.pattern_bits = pattern_bits
        self.path_confidence_threshold = path_confidence_threshold
        self.max_lookahead = max_lookahead
        self.filter_tables = filter_tables
        self.filter_entries = filter_entries
        self.filter_counter_bits = filter_counter_bits
        self.filter_threshold = filter_threshold
        self.filter_initial = filter_initial
        self.queue_capacity = queue_capacity
        self.arf_delay = arf_delay
        self.arf_mode = arf_mode
        self.loop_prefetch = loop_prefetch
        self.pattern_prefetch = pattern_prefetch
        self.use_filter = use_filter
        # B-Fetch-I (paper future work): also prefetch the instruction
        # blocks of predicted basic blocks into the L1I
        self.instruction_prefetch = instruction_prefetch
        self.max_instr_blocks = max_instr_blocks
        self.block_bytes = block_bytes

    @property
    def offset_limit(self):
        """Largest representable |offset| (signed field)."""
        return (1 << (self.offset_bits - 1)) - 1

    @property
    def loopdelta_limit(self):
        return (1 << (self.loopdelta_bits - 1)) - 1

    @classmethod
    def sized(cls, entries, **kwargs):
        """The Fig. 15 storage points: BrTC and MHT scaled together.

        ``entries`` is the BrTC entry count (64/128/256/512); the MHT gets
        half of it, matching the paper's 2:1 default ratio.
        """
        return cls(brtc_entries=entries, mht_entries=entries // 2, **kwargs)
